"""CLI-level resilience: flags, exit 130, and byte-identical --resume."""

import pytest

import repro.cli as cli
from repro.cli import build_parser, main


def _interrupt_after(monkeypatch, module, name, calls_before_interrupt):
    """Replace ``module.name`` with a bomb that interrupts after N calls."""
    real = getattr(module, name)
    state = {"calls": 0}

    def bomb(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] > calls_before_interrupt:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    monkeypatch.setattr(module, name, bomb)
    return real


class TestFlagParsing:
    def test_resilience_flags_parse(self):
        args = build_parser().parse_args(
            ["dse", "--on-error", "skip", "--timeout", "1.5", "--resume"]
        )
        assert args.on_error == "skip"
        assert args.timeout == 1.5
        assert args.resume is True

    @pytest.mark.parametrize("command", ["dse", "costs", "faults"])
    def test_defaults_keep_the_historical_behaviour(self, command):
        args = build_parser().parse_args([command])
        assert args.on_error == "raise"
        assert args.timeout is None
        assert args.resume is False

    def test_bad_on_error_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--on-error", "explode"])


class TestKeyboardInterrupt:
    def test_ctrl_c_exits_130_with_one_clean_line(self, capsys, monkeypatch):
        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", boom)
        code = main(["table1"])
        captured = capsys.readouterr()
        assert code == 130
        assert captured.out == ""
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestResumeByteIdentical:
    def test_dse_resume_reproduces_the_uninterrupted_stdout(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.analysis import pareto

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        argv = ["dse", "--min-flexibility", "2", "--n", "8"]
        assert main(argv) == 0
        clean = capsys.readouterr().out

        real = _interrupt_after(monkeypatch, pareto, "_design_point", 6)
        assert main(argv + ["--resume"]) == 130
        interrupted = capsys.readouterr()
        assert "interrupted" in interrupted.err

        monkeypatch.setattr(pareto, "_design_point", real)
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == clean

    def test_faults_resume_writes_byte_identical_csv(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.analysis import resilience

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "journals"))
        clean_csv = tmp_path / "clean.csv"
        resumed_csv = tmp_path / "resumed.csv"
        base = ["faults", "--n", "4"]
        assert main(base + ["--out", str(clean_csv)]) == 0
        capsys.readouterr()

        real = _interrupt_after(monkeypatch, resilience, "_resilience_point", 9)
        assert main(base + ["--out", str(resumed_csv), "--resume"]) == 130
        capsys.readouterr()
        assert not resumed_csv.exists()  # interrupted before the write

        monkeypatch.setattr(resilience, "_resilience_point", real)
        assert main(base + ["--out", str(resumed_csv), "--resume"]) == 0
        capsys.readouterr()
        assert resumed_csv.read_bytes() == clean_csv.read_bytes()

    def test_costs_resume_reproduces_the_uninterrupted_stdout(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.analysis import survey_costs

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        argv = ["costs", "--n", "8"]
        assert main(argv) == 0
        clean = capsys.readouterr().out

        real = _interrupt_after(monkeypatch, survey_costs, "cost_point", 5)
        assert main(argv + ["--resume"]) == 130
        capsys.readouterr()

        monkeypatch.setattr(survey_costs, "cost_point", real)
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == clean
