"""Unit tests for the table renderers."""

import pytest

from repro.reporting.tables import (
    TABLE1_HEADER,
    format_table,
    render_table1,
    render_table2,
    render_table3,
    table1_rows,
    table2_rows,
    table3_rows,
)


class TestFormatTable:
    def test_plain_layout_alignment(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")

    def test_markdown_layout(self):
        text = format_table(("a", "b"), [("1", "2")], markdown=True)
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert lines[1].startswith("|--")
        assert lines[2].startswith("| 1")

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        text = format_table(("x",), [])
        assert "x" in text


class TestTable1:
    def test_row_structure(self):
        rows = table1_rows()
        assert len(rows) == 47
        assert all(len(row) == len(TABLE1_HEADER) for row in rows)

    def test_sections_option(self):
        rows = table1_rows(include_sections=True)
        assert len(rows) == 47 + 6
        assert any("Data Flow Machines" in row[0] for row in rows)

    def test_render_contains_landmark_rows(self):
        text = render_table1()
        assert "DUP" in text and "ISP-XVI" in text and "LUTs" in text

    def test_markdown_render(self):
        assert render_table1(markdown=True).startswith("| S.N")


class TestTable2:
    def test_rows_cover_43_classes(self):
        assert len(table2_rows()) == 43

    def test_render_groups(self):
        text = render_table2()
        assert "Data Flow --> Multi Processor (+1)" in text
        assert "Universal Flow --> Fine Grained (+3)" in text
        assert "IMP-XVI" in text

    def test_render_pads_partial_rows(self):
        text = render_table2()
        assert "-" in text  # the lone DUP row pads with dashes


class TestTable3:
    def test_rows(self):
        rows = table3_rows()
        assert len(rows) == 25
        assert rows[0][0] == "ARM7TDMI"
        assert rows[-1][0] == "FPGA"

    def test_render(self):
        text = render_table3()
        assert "MorphoSys" in text and "IAP-II" in text
        assert "Flexibility" in text
