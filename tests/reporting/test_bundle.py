"""Tests for the artifact bundle writer."""

import csv
import json

import pytest

from repro.reporting.bundle import generate_report


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("artifacts")
    files = generate_report(outdir)
    return outdir, files


class TestBundle:
    def test_writes_all_artifacts(self, bundle):
        outdir, files = bundle
        names = {path.name for path in files}
        assert len(files) == 23
        assert {"table1.txt", "table2.txt", "table3.txt"} <= names
        assert {"resilience.txt", "resilience.csv"} <= names
        assert {f"fig{i}_" in "".join(names) or True for i in range(1, 8)}
        for i in range(1, 8):
            assert any(name.startswith(f"fig{i}_") for name in names), i
        assert {"taxonomy.json", "survey.json", "audit.txt"} <= names
        assert {"fig1_series.csv", "fig7_series.csv", "survey_costs.txt"} <= names

    def test_files_are_nonempty(self, bundle):
        _, files = bundle
        for path in files:
            assert path.stat().st_size > 0, path.name

    def test_csv_tables_parse(self, bundle):
        outdir, _ = bundle
        with open(outdir / "table1.csv") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 48  # header + 47
        with open(outdir / "table3.csv") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 26

    def test_json_exports_parse(self, bundle):
        outdir, _ = bundle
        taxonomy = json.loads((outdir / "taxonomy.json").read_text())
        assert len(taxonomy["classes"]) == 47
        survey = json.loads((outdir / "survey.json").read_text())
        assert len(survey["architectures"]) == 25

    def test_audit_passed_in_bundle(self, bundle):
        outdir, _ = bundle
        assert "all checks passed" in (outdir / "audit.txt").read_text()

    def test_regeneration_is_idempotent(self, bundle, tmp_path):
        outdir, _ = bundle
        again = generate_report(tmp_path)
        for path in again:
            original = outdir / path.name
            assert path.read_text() == original.read_text(), path.name

    def test_creates_missing_directories(self, tmp_path):
        nested = tmp_path / "a" / "b"
        files = generate_report(nested)
        assert nested.exists()
        assert files
