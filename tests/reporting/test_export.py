"""Unit tests for JSON/CSV export and signature serialisation."""

import csv
import io
import json


from repro.core import all_classes, classify, make_signature
from repro.reporting.export import (
    rows_to_csv,
    signature_from_dict,
    signature_to_dict,
    survey_to_json,
    taxonomy_to_json,
)


class TestSignatureSerialisation:
    def test_roundtrip_preserves_classification(self):
        sig = make_signature(1, 64, ip_dp="1-64", ip_im="1-1",
                             dp_dm="64-1", dp_dp="64x64")
        recovered = signature_from_dict(signature_to_dict(sig))
        assert classify(recovered).short_name == "IAP-II"

    def test_roundtrip_over_all_canonical_signatures(self):
        for cls in all_classes():
            payload = signature_to_dict(cls.signature)
            recovered = signature_from_dict(payload)
            assert classify(recovered).taxonomy_class.serial == cls.serial

    def test_dict_fields(self):
        payload = signature_to_dict(all_classes()[46].signature)  # USP
        assert payload["granularity"] == "LUTs"
        assert payload["ips"] == "v"
        assert payload["ip_ip"] == "vxv"

    def test_missing_links_default_to_none(self):
        sig = signature_from_dict({"ips": "0", "dps": "1", "dp_dm": "1-1"})
        assert classify(sig).short_name == "DUP"


class TestJsonExports:
    def test_taxonomy_json(self):
        payload = json.loads(taxonomy_to_json())
        assert len(payload["classes"]) == 47
        ni_rows = [c for c in payload["classes"] if not c["implementable"]]
        assert len(ni_rows) == 4
        assert all("flexibility" not in c for c in ni_rows)
        usp = payload["classes"][46]
        assert usp["name"] == "USP" and usp["flexibility"] == 8

    def test_survey_json(self):
        payload = json.loads(survey_to_json())
        assert len(payload["architectures"]) == 25
        xpp = next(a for a in payload["architectures"] if a["name"] == "PACT XPP")
        assert xpp["agrees_with_paper"] is False
        assert xpp["derived_flexibility"] == 3
        fpga = next(a for a in payload["architectures"] if a["name"] == "FPGA")
        assert fpga["derived_name"] == "USP"

    def test_compact_mode(self):
        compact = taxonomy_to_json(indent=None)
        assert "\n" not in compact


class TestCsv:
    def test_rows_to_csv_roundtrip(self):
        text = rows_to_csv(("a", "b"), [(1, "x"), (2, "y,z")])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed == [["a", "b"], ["1", "x"], ["2", "y,z"]]

    def test_table3_csv(self):
        from repro.reporting.tables import TABLE3_HEADER, table3_rows

        text = rows_to_csv(TABLE3_HEADER, table3_rows())
        parsed = list(csv.reader(io.StringIO(text)))
        assert len(parsed) == 26
        assert parsed[0][0] == "Architecture"
