"""CLI observability surface: --trace, --profile and the metrics command."""

import json

import pytest

from repro.cli import main
from repro.obs import trace, validate_trace


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


class TestTraceFlag:
    def test_dse_writes_a_schema_valid_span_tree(self, capsys, tmp_path):
        target = tmp_path / "trace.json"
        code = main(["dse", "--min-flexibility", "2", "--trace", str(target)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"wrote trace to {target}" in captured.err
        payload = json.loads(target.read_text())
        validate_trace(payload)
        (root,) = payload["spans"]
        assert root["name"] == "analysis.dse"
        names = {child["name"] for child in root["children"]}
        assert "analysis.evaluate_classes" in names

    def test_trace_does_not_change_stdout(self, capsys, tmp_path):
        code = main(["costs", "--n", "8"])
        plain = capsys.readouterr().out
        code2 = main(["costs", "--n", "8", "--trace", str(tmp_path / "t.json")])
        traced = capsys.readouterr().out
        assert code == code2 == 0
        assert plain == traced

    def test_tracer_is_disabled_after_the_command(self, capsys, tmp_path):
        main(["costs", "--n", "8", "--trace", str(tmp_path / "t.json")])
        capsys.readouterr()
        assert not trace.enabled()

    def test_report_supports_trace(self, capsys, tmp_path):
        target = tmp_path / "report-trace.json"
        code = main(["report", str(tmp_path / "bundle"), "--trace", str(target)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(target.read_text())
        validate_trace(payload)
        generate = next(
            span
            for root in payload["spans"]
            for span in _walk(root)
            if span["name"] == "report.generate"
        )
        artifacts = [s for s in _walk(generate) if s["name"] == "report.artifact"]
        assert generate["attributes"]["files"] == len(artifacts) > 0

    def test_trace_survives_a_failing_command(self, capsys, tmp_path):
        target = tmp_path / "fail.json"
        code = main([
            "faults", "--seed", "1", "--rate", "0.9",
            "--policy", "fail-fast", "--out", "-", "--trace", str(target),
        ])
        captured = capsys.readouterr()
        if code == 2:  # the demo aborted — the trace must still exist
            assert "error:" in captured.err
        validate_trace(json.loads(target.read_text()))


class TestMetricsCommand:
    def test_reports_cache_and_sweep_metrics(self, capsys):
        code = main(["metrics", "--n", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "model_cache.hits" in out
        assert "model_cache.misses" in out
        assert "sweep.wall_s" in out
        assert "machine.runs" in out

    def test_json_snapshot_is_machine_readable(self, capsys):
        code = main(["metrics", "--n", "8", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["model_cache.hits"]["type"] == "counter"
        assert snapshot["model_cache.hits"]["value"] > 0
        assert snapshot["sweep.wall_s"]["type"] == "histogram"
        assert snapshot["sweep.wall_s"]["count"] > 0


class TestProfileFlag:
    def test_costs_profile_writes_an_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["costs", "--n", "8", "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        report = tmp_path / "artifacts" / "profile_costs.txt"
        assert "wrote profile to" in captured.err
        assert report.exists()
        content = report.read_text()
        assert "profile: costs" in content
        assert "cumulative time" in content
        assert "allocation sites" in content  # memory mode is on for the CLI


def _walk(span):
    yield span
    for child in span["children"]:
        yield from _walk(child)
