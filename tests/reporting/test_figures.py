"""Unit tests for the figure renderers."""

import pytest

from repro.reporting.figures import (
    bar_chart,
    fig1_series,
    fig7_series,
    multi_series_chart,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_structure,
)


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart(["a", "b"], [2.0, 4.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_alignment_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "empty" in bar_chart([], [])

    def test_zero_values(self):
        text = bar_chart(["z"], [0.0])
        assert "0" in text


class TestMultiSeries:
    def test_renders_all_series_symbols(self):
        text = multi_series_chart(
            [2000, 2001, 2002],
            {"one": [1, 2, 3], "two": [3, 2, 1]},
        )
        assert "* = one" in text
        assert "o = two" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multi_series_chart([1, 2], {"s": [1.0]})

    def test_empty(self):
        assert "empty" in multi_series_chart([], {})


class TestFig1:
    def test_series_shape(self):
        years, series = fig1_series()
        assert years[0] == 1995 and years[-1] == 2010
        assert len(series) == 5
        assert all(len(v) == len(years) for v in series.values())

    def test_render_title(self):
        assert "Research Trends" in render_fig1()


class TestFig2:
    def test_tree_structure(self):
        text = render_fig2()
        assert text.splitlines()[0] == "Computing Machines"
        assert "Universal Flow" in text
        assert "DMP-I" in text

    def test_ni_branch_optional(self):
        assert "Not Implementable" not in render_fig2()
        assert "Not Implementable" in render_fig2(include_ni=True)


class TestStructureDiagrams:
    def test_structure_shows_switch_kinds(self):
        text = render_structure("IMP-II")
        assert "xbar" in text  # the DP-DP crossbar
        assert "wire" in text  # the direct DP-DM path

    def test_dataflow_structure_has_no_ip(self):
        text = render_structure("DMP-I")
        assert "[IP" not in text

    def test_fig3_through_6(self):
        assert "DMP-IV" in render_fig3()
        assert "IAP-III" in render_fig4()
        assert "ISP-XVI" in render_fig5()
        assert "USP" in render_fig6()


class TestFig7:
    def test_series_sorted(self):
        names, values = fig7_series()
        assert names[0] == "FPGA"
        assert values == sorted(values, reverse=True)

    def test_render_has_bars(self):
        text = render_fig7()
        assert "#" in text
        assert "FPGA" in text
