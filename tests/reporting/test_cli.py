"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestTables:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1")
        assert code == 0
        assert "DUP" in out and "USP" in out

    def test_table2_markdown(self, capsys):
        _, out = run_cli(capsys, "table2", "--markdown")
        assert "| ST" in out

    def test_table3(self, capsys):
        _, out = run_cli(capsys, "table3")
        assert "MorphoSys" in out


class TestFigures:
    @pytest.mark.parametrize("number", ["1", "2", "3", "4", "5", "6", "7"])
    def test_every_figure_renders(self, capsys, number):
        code, out = run_cli(capsys, "fig", number)
        assert code == 0
        assert out.strip()

    def test_invalid_figure(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig", "9"])


class TestClassify:
    def test_classify_morphosys_shape(self, capsys):
        _, out = run_cli(
            capsys, "classify",
            "--ips", "1", "--dps", "64",
            "--ip-dp", "1-64", "--ip-im", "1-1",
            "--dp-dm", "64-1", "--dp-dp", "64x64",
        )
        assert "IAP-II" in out
        assert "flexibility 2" in out

    def test_classify_dataflow(self, capsys):
        _, out = run_cli(
            capsys, "classify",
            "--ips", "0", "--dps", "16",
            "--dp-dm", "16x6", "--dp-dp", "16x16",
        )
        assert "DMP-IV" in out


class TestExplain:
    def test_explain_architecture(self, capsys):
        _, out = run_cli(capsys, "explain", "GARP")
        assert "GARP" in out
        assert "IAP-IV" in out
        assert "MIPS" in out  # from the survey description

    def test_explain_unknown_exits_2_with_diagnostic(self, capsys):
        code = main(["explain", "UNOBTAINIUM"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "UNOBTAINIUM" in captured.err
        assert captured.err.count("\n") == 1  # one-line diagnostic


class TestErrorContract:
    """Any ReproError surfaces as exit code 2 + a stderr one-liner."""

    def test_bad_signature_exits_2(self, capsys):
        code = main(
            ["classify", "--ips", "0", "--dps", "4", "--ip-dp", "1-4"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "IP-DP" in captured.err
        assert captured.out == ""

    def test_untolerated_fault_is_reported_not_raised(self, capsys):
        # fail-fast on a plan with events: the FaultError is caught by
        # main() for the IAP demo loop (reported inline), never escapes.
        code = main(
            ["faults", "--seed", "7", "--rate", "0.3",
             "--policy", "fail-fast", "--out", "-"]
        )
        captured = capsys.readouterr()
        assert code == 0  # the demo reports per-machine faults and continues
        assert "fail-fast abort" in captured.out

    @pytest.mark.parametrize(
        ("flag", "value"),
        [
            ("--max-lease-size", "0"),
            ("--rejoin-backoff", "-1"),
            ("--supervise", "-3"),
        ],
    )
    def test_bad_fabric_flags_exit_2(self, capsys, flag, value):
        code = main(["costs", flag, value])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert flag in captured.err
        assert captured.out == ""


class TestFaultsCommand:
    def test_deterministic_across_runs(self, capsys):
        code = main(["faults", "--seed", "0", "--rate", "0.05", "--out", "-"])
        first = capsys.readouterr().out
        assert code == 0
        main(["faults", "--seed", "0", "--rate", "0.05", "--out", "-"])
        second = capsys.readouterr().out
        assert first == second

    def test_remap_demo_contrasts_direct_and_switched(self, capsys):
        _, out = run_cli(
            capsys, "faults", "--seed", "7", "--rate", "0.3", "--out", "-"
        )
        # The all-direct array cannot remap; the all-switched one can.
        assert "IAP-I    remap(spares=0) FAULT" in out
        assert "IAP-IV   remap(spares=0) cycles=" in out

    def test_sweep_table_and_correlation(self, capsys):
        _, out = run_cli(capsys, "faults", "--out", "-")
        assert "FPGA" in out
        assert "Spearman rank correlation" in out

    def test_csv_written(self, tmp_path, capsys):
        out_path = tmp_path / "resilience.csv"
        code, _ = run_cli(capsys, "faults", "--out", str(out_path))
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert lines[0].startswith("rank,architecture,class,flexibility")
        assert len(lines) == 26  # header + 25 surveyed architectures

    def test_spares_report_costed_by_eq1(self, capsys):
        _, out = run_cli(
            capsys, "faults", "--spares", "2", "--policy", "remap:2",
            "--out", "-",
        )
        assert "spare PEs" in out
        assert "GE" in out


class TestDse:
    def test_dse_recommendation(self, capsys):
        _, out = run_cli(capsys, "dse", "--min-flexibility", "5")
        assert "recommended:" in out

    def test_dse_objectives(self, capsys):
        for objective in ("config", "area", "flex-per-area"):
            _, out = run_cli(capsys, "dse", "--objective", objective)
            assert "feasible classes" in out


class TestErrata:
    def test_errata_lists_pact_xpp(self, capsys):
        _, out = run_cli(capsys, "errata")
        assert "PACT XPP" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAuditCommand:
    def test_audit_passes_and_exits_zero(self, capsys):
        code, out = run_cli(capsys, "audit")
        assert code == 0
        assert "all checks passed" in out

    def test_baselines_report(self, capsys):
        _, out = run_cli(capsys, "baselines")
        assert "19 are new versus Skillicorn" in out
        assert "MIMD" in out
