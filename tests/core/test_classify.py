"""Unit tests for the classifier across every branch of the taxonomy."""

import pytest

from repro.core import (
    classify,
    canonical_class,
    make_signature,
)
from repro.core.errors import NotImplementableError


def sig(ips, dps, **links):
    return make_signature(ips, dps, **links)


class TestDataFlowBranch:
    def test_dup(self):
        assert classify(sig(0, 1, dp_dm="1-1")).short_name == "DUP"

    @pytest.mark.parametrize(
        "dp_dm, dp_dp, expected",
        [
            ("n-n", None, "DMP-I"),
            ("n-n", "nxn", "DMP-II"),
            ("nxn", None, "DMP-III"),
            ("nxn", "nxn", "DMP-IV"),
        ],
    )
    def test_dmp_subtypes(self, dp_dm, dp_dp, expected):
        assert classify(sig(0, "n", dp_dm=dp_dm, dp_dp=dp_dp)).short_name == expected

    def test_direct_dp_dp_does_not_bump_subtype(self):
        got = classify(sig(0, "n", dp_dm="n-n", dp_dp="n-n"))
        assert got.short_name == "DMP-I"


class TestInstructionFlowBranch:
    def test_iup(self):
        assert classify(sig(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")).short_name == "IUP"

    @pytest.mark.parametrize(
        "dp_dm, dp_dp, expected",
        [
            ("n-n", None, "IAP-I"),
            ("n-n", "nxn", "IAP-II"),
            ("nxn", None, "IAP-III"),
            ("nxn", "nxn", "IAP-IV"),
        ],
    )
    def test_iap_subtypes(self, dp_dm, dp_dp, expected):
        got = classify(
            sig(1, "n", ip_dp="1-n", ip_im="1-1", dp_dm=dp_dm, dp_dp=dp_dp)
        )
        assert got.short_name == expected

    def test_imp_ordinal_encoding(self):
        """All 16 IMP subtypes from the four switch bits."""
        from repro.core import roman

        for ordinal in range(1, 17):
            bits = ordinal - 1
            got = classify(
                sig(
                    "n", "n",
                    ip_dp="nxn" if bits & 8 else "n-n",
                    ip_im="nxn" if bits & 4 else "n-n",
                    dp_dm="nxn" if bits & 2 else "n-n",
                    dp_dp="nxn" if bits & 1 else None,
                )
            )
            assert got.short_name == f"IMP-{roman(ordinal)}"

    def test_isp_requires_ip_ip(self):
        got = classify(
            sig("n", "n", ip_ip="nxn", ip_dp="n-n", ip_im="n-n",
                dp_dm="nxn", dp_dp="nxn")
        )
        assert got.short_name == "ISP-IV"

    def test_direct_links_never_raise_subtype(self):
        """PADDI-2's all-direct organisation is IMP-I (not II)."""
        got = classify(
            sig(48, 48, ip_dp="48-48", ip_im="48-48",
                dp_dm="48-48", dp_dp="48-48")
        )
        assert got.short_name == "IMP-I"


class TestUniversalBranch:
    def test_usp(self):
        got = classify(
            sig("v", "v", ip_ip="vxv", ip_dp="vxv", ip_im="vxv",
                dp_dm="vxv", dp_dp="vxv")
        )
        assert got.short_name == "USP"
        assert got.flexibility == 8


class TestNotImplementable:
    def _ni_sig(self, ip_ip=None, ip_im="n-n"):
        return sig("n", 1, ip_ip=ip_ip, ip_dp="n-1", ip_im=ip_im, dp_dm="1-1")

    @pytest.mark.parametrize(
        "ip_ip, ip_im, serial",
        [
            (None, "n-n", 11),
            (None, "nxn", 12),
            ("nxn", "n-n", 13),
            ("nxn", "nxn", 14),
        ],
    )
    def test_ni_serials(self, ip_ip, ip_im, serial):
        result = classify(self._ni_sig(ip_ip, ip_im))
        assert not result.implementable
        assert result.taxonomy_class.serial == serial
        assert result.short_name == "NI"
        assert result.name is None

    def test_allow_ni_false_raises(self):
        with pytest.raises(NotImplementableError):
            classify(self._ni_sig(), allow_ni=False)

    def test_ni_explain_carries_warning(self):
        text = classify(self._ni_sig()).explain()
        assert "not implementable" in text


class TestExplain:
    def test_explain_structure(self):
        result = classify(
            sig(1, 64, ip_dp="1-64", ip_im="1-1", dp_dm="64-1", dp_dp="64x64")
        )
        text = result.explain()
        assert "IAP-II" in text
        assert "serial 8" in text
        assert "flexibility 2" in text


class TestCanonicalisation:
    def test_canonical_class_matches_classify(self):
        from repro.core import all_classes

        for cls in all_classes():
            assert canonical_class(cls.signature).serial == cls.serial

    def test_classification_is_stable_under_count_rescaling(self):
        """4, 16 or 64 processors classify identically (counts are
        presentation, the symbol drives the class)."""
        results = {
            classify(
                sig(1, n, ip_dp=f"1-{n}", ip_im="1-1",
                    dp_dm=f"{n}-1", dp_dp=f"{n}x{n}")
            ).short_name
            for n in (2, 4, 16, 64, 1024)
        }
        assert results == {"IAP-II"}
