"""Unit tests for §III-A name-based comparison."""

import pytest

from repro.core import compare_names, similarity
from repro.core.compare import compare_classes
from repro.core.taxonomy import class_by_serial


class TestCompareNames:
    def test_identical_classes_have_similarity_one(self):
        assert similarity("IMP-I", "IMP-I") == pytest.approx(1.0)

    def test_paper_example_iap_imp_same_numeral(self):
        """§III-A: IAP-I and IMP-I share the IP-IP, IP-IM, DP-DM and
        DP-DP connectivity their numeral encodes."""
        report = compare_names("IAP-I", "IMP-I")
        shared = {site.label for site in report.shared_link_sites}
        assert {"IP-IP", "IP-IM", "DP-DM", "DP-DP"} <= shared

    def test_machine_type_dominates_similarity(self):
        same_mt = similarity("IAP-I", "IMP-I")
        cross_mt = similarity("DMP-I", "IMP-I")
        assert same_mt > cross_mt

    def test_symmetry(self):
        for a, b in [("IAP-II", "IMP-II"), ("DUP", "USP"), ("ISP-I", "IMP-I")]:
            assert similarity(a, b) == pytest.approx(similarity(b, a))

    def test_bounds(self):
        from repro.core import implementable_classes

        classes = implementable_classes()
        for a in classes[:10]:
            for b in classes[-10:]:
                value = compare_classes(a, b).similarity
                assert 0.0 <= value <= 1.0

    def test_subtype_neighbours_are_closer_than_distant_subtypes(self):
        assert similarity("IMP-I", "IMP-II") > similarity("IMP-I", "IMP-XVI")

    def test_explain_text(self):
        text = compare_names("IAP-II", "IMP-II").explain()
        assert "IAP-II vs IMP-II" in text
        assert "machine type: same" in text
        assert "processing type: different" in text
        assert "similarity:" in text

    def test_accepts_class_objects(self):
        a = class_by_serial(15)
        b = class_by_serial(16)
        report = compare_classes(a, b)
        assert report.left.short == "IMP-I"
        assert report.right.short == "IMP-II"

    def test_ni_classes_rejected(self):
        with pytest.raises(ValueError):
            compare_classes(class_by_serial(11), class_by_serial(15))

    def test_link_agreement_fraction(self):
        report = compare_names("IMP-I", "IMP-XVI")  # all four subtype sites differ
        assert report.link_agreement == pytest.approx(1 / 5)  # only IP-IP agrees
