"""Parity tests for the columnar batch-classification kernel.

The contract of :mod:`repro.core.batch` is bit-exactness: every number
the vectorized passes produce — class serial, flexibility, Eq.-1 area,
Eq.-2 configuration bits — must equal (``==``, not ``approx``) what the
scalar classifier and models return for the same signature. These tests
enforce that over the 47-class table, the 25-architecture survey, and
hypothesis-random populations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    STRUCT_SPACE,
    KernelUnavailableError,
    SignatureBatch,
    classify_batch,
    compile_taxonomy,
    kernel_supports,
    price_batch,
    structural_signature,
    valid_structures,
)
from repro.core.classify import canonical_class
from repro.core.errors import SignatureError
from repro.core.flexibility import score_signature
from repro.core.signature import make_signature
from repro.core.connectivity import LinkSite
from repro.models.area import AreaModel, ComponentAreas
from repro.models.configbits import ComponentConfigWords, ConfigBitsModel
from repro.models.switches import DirectLinkModel
from repro.registry.architectures import all_architectures
from repro.registry.populations import PopulationSpec, generate_signatures
from repro.core.taxonomy import all_classes, implementable_classes


def assert_scalar_parity(signatures, *, n=16, area_model=None, config_model=None):
    """The whole contract in one helper: classify + score + price must match."""
    area = area_model if area_model is not None else AreaModel()
    config = config_model if config_model is not None else ConfigBitsModel()
    batch = SignatureBatch.from_signatures(signatures)
    classified = classify_batch(batch)
    estimates = price_batch(
        batch, n=n, area_model=area_model, config_model=config_model
    )
    for row, signature in enumerate(signatures):
        expected_class = canonical_class(signature)
        expected_score = score_signature(signature)
        assert int(classified.serial[row]) == expected_class.serial
        assert bool(classified.implementable[row]) == expected_class.implementable
        assert int(classified.flexibility[row]) == expected_score.total
        assert classified.score(row) == expected_score
        assert float(estimates.area_ge[row]) == area.total_ge(signature, n=n)
        assert int(estimates.config_bits[row]) == config.total(signature, n=n)


class TestCompiledTables:
    def test_valid_structure_count(self):
        tables = compile_taxonomy()
        assert int(tables.valid.sum()) == 406
        assert len(valid_structures()) == 406
        assert tables.valid.shape == (STRUCT_SPACE,)

    def test_compile_is_cached(self):
        assert compile_taxonomy() is compile_taxonomy()

    def test_every_valid_structure_round_trips(self):
        for ips_rank, dps_rank, kinds in valid_structures():
            signature = structural_signature(ips_rank, dps_rank, kinds)
            assert signature.ips.multiplicity.rank == ips_rank
            assert signature.dps.multiplicity.rank == dps_rank


class TestClassifyParity:
    def test_47_class_table(self):
        assert_scalar_parity([cls.signature for cls in all_classes()])

    def test_25_architecture_survey(self):
        assert_scalar_parity([rec.signature for rec in all_architectures()])

    def test_all_406_structures(self):
        signatures = [
            structural_signature(i, d, k) for i, d, k in valid_structures()
        ]
        assert_scalar_parity(signatures)

    def test_1000_random_population(self):
        signatures = generate_signatures(
            PopulationSpec(size=1000, seed=11, mode="uniform")
        )
        assert_scalar_parity(signatures)

    def test_degenerate_n_1(self):
        signatures = [cls.signature for cls in implementable_classes()]
        assert_scalar_parity(signatures, n=1)

    def test_maximal_link_universal(self):
        usp = make_signature(
            "n", "n", ip_ip="nxn", ip_dp="nxn", ip_im="nxn",
            dp_dm="nxn", dp_dp="nxn",
        )
        assert_scalar_parity([usp], n=64)

    def test_concrete_counts_survive_round_trip(self):
        morpho = make_signature(
            1, 64, ip_dp="1-64", ip_im="1-1", dp_dm="64x64", dp_dp="64x64"
        )
        batch = SignatureBatch.from_signatures([morpho])
        rebuilt = batch.signature(0)
        # Link endpoints are stored structurally (the canonical symbols),
        # but the component counts — everything pricing reads — survive.
        assert rebuilt.ips == morpho.ips
        assert rebuilt.dps == morpho.dps
        assert rebuilt.link_kinds() == morpho.link_kinds()
        assert_scalar_parity([morpho, rebuilt], n=64)

    def test_per_row_sizes(self):
        records = all_architectures()
        signatures = [rec.signature for rec in records]
        sizes = [(i % 7) + 1 for i in range(len(signatures))]
        batch = SignatureBatch.from_signatures(signatures)
        estimates = price_batch(batch, n=sizes)
        area = AreaModel()
        config = ConfigBitsModel()
        for row, signature in enumerate(signatures):
            assert float(estimates.area_ge[row]) == area.total_ge(
                signature, n=sizes[row]
            )
            assert int(estimates.config_bits[row]) == config.total(
                signature, n=sizes[row]
            )


@st.composite
def random_rows(draw):
    """A valid structure decorated with consistent optional counts."""
    ips_rank, dps_rank, kinds = draw(st.sampled_from(valid_structures()))
    counts = []
    for rank in (ips_rank, dps_rank):
        if rank == 2 and draw(st.booleans()):  # MANY: any concrete count >= 2
            counts.append(draw(st.integers(min_value=2, max_value=4096)))
        elif rank == 3 and draw(st.booleans()):  # VARIABLE: any size >= 1
            counts.append(draw(st.integers(min_value=1, max_value=4096)))
        else:
            counts.append(None)
    return ips_rank, dps_rank, kinds, counts[0], counts[1]


class TestHypothesisParity:
    @settings(max_examples=200, deadline=None)
    @given(
        rows=st.lists(random_rows(), min_size=1, max_size=8),
        n=st.integers(min_value=1, max_value=512),
    )
    def test_random_rows_match_scalar(self, rows, n):
        from dataclasses import replace

        from repro.core.components import ComponentCount

        signatures = []
        for ips_rank, dps_rank, kinds, iv, dv in rows:
            base = structural_signature(ips_rank, dps_rank, kinds)
            signatures.append(
                replace(
                    base,
                    ips=ComponentCount(base.ips.multiplicity, iv),
                    dps=ComponentCount(base.dps.multiplicity, dv),
                )
            )
        assert_scalar_parity(signatures, n=n)


class TestCustomModels:
    AREAS = ComponentAreas(
        ip_ge=1111.0, dp_ge=222.0, im_bits=3300, dm_bits=440, lut_cell_ge=7.0
    )
    WORDS = ComponentConfigWords(
        ip_cw=7, dp_cw=9, im_cw=3, dm_cw=5, lut_inputs=3, lut_routing_cw=11
    )

    def test_custom_areas_and_words(self):
        signatures = [cls.signature for cls in implementable_classes()]
        assert_scalar_parity(
            signatures,
            area_model=AreaModel(areas=self.AREAS, width_bits=48),
            config_model=ConfigBitsModel(words=self.WORDS, width_bits=48),
        )

    def test_non_reconfigurable_components(self):
        signatures = [cls.signature for cls in implementable_classes()]
        assert_scalar_parity(
            signatures,
            config_model=ConfigBitsModel(reconfigurable_components=False),
        )

    def test_switch_models_are_refused(self):
        model = AreaModel(switch_models={LinkSite.DP_DP: DirectLinkModel()})
        assert not kernel_supports(model, None)
        batch = SignatureBatch.from_signatures(
            [implementable_classes()[0].signature]
        )
        with pytest.raises(KernelUnavailableError):
            price_batch(batch, area_model=model)

    def test_positive_n_required(self):
        batch = SignatureBatch.from_signatures(
            [implementable_classes()[0].signature]
        )
        with pytest.raises(ValueError, match="n must be positive"):
            price_batch(batch, n=0)


class TestFromColumns:
    def test_round_trips_from_signatures(self):
        signatures = [cls.signature for cls in all_classes()]
        source = SignatureBatch.from_signatures(signatures)
        rebuilt = SignatureBatch.from_columns(
            source.ips_rank, source.dps_rank, source.kinds,
            source.ips_value, source.dps_value,
        )
        assert list(rebuilt.signatures()) == signatures

    def test_unconstructible_row_is_named(self):
        # An all-NONE link row with plural DPs never validates scalar-side.
        with pytest.raises(SignatureError, match="row 0"):
            SignatureBatch.from_columns(
                np.array([0]), np.array([3]), np.zeros((1, 5), dtype=int)
            )

    def test_rank_bounds_checked(self):
        with pytest.raises(SignatureError, match="0..3"):
            SignatureBatch.from_columns(
                np.array([4]), np.array([1]), np.zeros((1, 5), dtype=int)
            )

    def test_value_rank_consistency_checked(self):
        dup = make_signature(0, 1, dp_dm="1-1")
        source = SignatureBatch.from_signatures([dup])
        with pytest.raises(SignatureError, match="inconsistent"):
            SignatureBatch.from_columns(
                source.ips_rank, source.dps_rank, source.kinds,
                source.ips_value, np.array([9]),
            )

    def test_shape_mismatch_checked(self):
        with pytest.raises(SignatureError, match="shapes disagree"):
            SignatureBatch.from_columns(
                np.array([0, 0]), np.array([1]), np.zeros((1, 5), dtype=int)
            )
