"""Unit tests for the class enumeration engine (beyond the golden rows)."""

import pytest

from repro.core import (
    SECTION_HEADINGS,
    all_classes,
    class_by_name,
    class_by_serial,
    enumerate_classes,
    implementable_classes,
)
from repro.core.errors import ClassificationError
from repro.core.naming import TaxonomicName


class TestEnumeration:
    def test_enumeration_is_lazily_equal_to_cache(self):
        assert tuple(enumerate_classes()) == all_classes()

    def test_serials_are_contiguous(self):
        assert [cls.serial for cls in all_classes()] == list(range(1, 48))

    def test_signatures_are_unique(self):
        signatures = [cls.signature for cls in all_classes()]
        assert len(set(signatures)) == 47

    def test_names_are_unique_among_implementable(self):
        names = [cls.name.short for cls in implementable_classes()]
        assert len(names) == len(set(names)) == 43

    def test_subtype_numbers_track_switch_count(self):
        """Within each family the numeral encodes the switch bits, so
        flexibility differences inside a family equal popcount
        differences of (subtype - 1)."""
        from repro.core import flexibility

        for family in ("DMP", "IAP", "IMP", "ISP"):
            members = [
                cls for cls in implementable_classes()
                if cls.name.short.startswith(family + "-")
            ]
            for cls in members:
                ordinal = cls.name.subtype
                popcount = bin(ordinal - 1).count("1")
                base = flexibility(members[0].signature)  # subtype I
                assert flexibility(cls.signature) == base + popcount

    def test_all_classes_cached(self):
        assert all_classes() is all_classes()


class TestLookups:
    def test_by_serial(self):
        assert class_by_serial(1).comment == "DUP"
        assert class_by_serial(47).comment == "USP"
        assert class_by_serial(28).comment == "IMP-XIV"

    @pytest.mark.parametrize("bad", [0, -1, 48, 1000])
    def test_by_serial_out_of_range(self, bad):
        with pytest.raises(ClassificationError):
            class_by_serial(bad)

    def test_by_name_string_and_parsed(self):
        assert class_by_name("ISP-XVI").serial == 46
        parsed = TaxonomicName.parse("isp-16")
        assert class_by_name(parsed).serial == 46

    def test_by_name_unknown(self):
        with pytest.raises(Exception):
            class_by_name("QQQ-I")


class TestSections:
    def test_sections_cover_table(self):
        assert SECTION_HEADINGS[1].startswith("Data Flow")
        assert SECTION_HEADINGS[47].startswith("Universal Flow")

    def test_section_of_each_class(self):
        assert "Single Processor" in class_by_serial(1).section
        assert "Multi Processors" in class_by_serial(3).section
        assert "Array Processor" in class_by_serial(9).section
        assert "Multi Processor" in class_by_serial(40).section
        assert "Spatial Computing" in class_by_serial(47).section


class TestRowRendering:
    def test_row_cells_shape(self):
        for cls in all_classes():
            cells = cls.row_cells()
            assert len(cells) == 10
            assert cells[0] == f"{cls.serial}."

    def test_str_contains_name_and_serial(self):
        text = str(class_by_serial(15))
        assert "15." in text and "IMP-I" in text
