"""Unit tests for link kinds, sites and the Table-cell codec."""

import pytest

from repro.core import LINK_SITES, Link, LinkKind, LinkSite
from repro.core.components import ComponentKind
from repro.core.errors import SignatureError


class TestLinkKind:
    def test_flexibility_order(self):
        assert LinkKind.NONE < LinkKind.DIRECT < LinkKind.SWITCHED

    def test_only_switched_earns_flexibility(self):
        assert LinkKind.SWITCHED.is_switched
        assert not LinkKind.DIRECT.is_switched
        assert not LinkKind.NONE.is_switched

    def test_existence(self):
        assert LinkKind.DIRECT.exists
        assert LinkKind.SWITCHED.exists
        assert not LinkKind.NONE.exists

    def test_comparisons(self):
        assert LinkKind.SWITCHED >= LinkKind.DIRECT
        assert LinkKind.NONE <= LinkKind.NONE
        with pytest.raises(TypeError):
            LinkKind.NONE < "x"  # noqa: B015


class TestLinkSite:
    def test_column_order_matches_table1(self):
        assert [s.label for s in LINK_SITES] == [
            "IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP",
        ]

    def test_endpoints(self):
        assert LinkSite.IP_DP.left is ComponentKind.IP
        assert LinkSite.IP_DP.right is ComponentKind.DP
        assert LinkSite.DP_DM.right is ComponentKind.DM

    def test_self_links(self):
        assert LinkSite.IP_IP.is_self_link
        assert LinkSite.DP_DP.is_self_link
        assert not LinkSite.IP_DP.is_self_link

    def test_ip_side_detection(self):
        assert LinkSite.IP_IM.involves_ip
        assert LinkSite.IP_DP.involves_ip
        assert not LinkSite.DP_DP.involves_ip


class TestLinkParse:
    @pytest.mark.parametrize(
        "cell, kind, rendered",
        [
            ("none", LinkKind.NONE, "none"),
            ("", LinkKind.NONE, "none"),
            (None, LinkKind.NONE, "none"),
            ("1-1", LinkKind.DIRECT, "1-1"),
            ("1-n", LinkKind.DIRECT, "1-n"),
            ("64-1", LinkKind.DIRECT, "64-1"),
            ("48-48", LinkKind.DIRECT, "48-48"),
            ("nxn", LinkKind.SWITCHED, "nxn"),
            ("64x64", LinkKind.SWITCHED, "64x64"),
            ("5x10", LinkKind.SWITCHED, "5x10"),
            ("nx14", LinkKind.SWITCHED, "nx14"),
            ("vxv", LinkKind.SWITCHED, "vxv"),
            ("24nx24n", LinkKind.SWITCHED, "24nx24n"),
            ("1-24n", LinkKind.DIRECT, "1-24n"),
        ],
    )
    def test_parse_and_render_roundtrip(self, cell, kind, rendered):
        link = Link.parse(cell)
        assert link.kind is kind
        assert link.render() == rendered

    def test_parse_is_idempotent_on_links(self):
        link = Link.switched("n", "n")
        assert Link.parse(link) is link

    def test_parse_linkkind(self):
        assert Link.parse(LinkKind.NONE).kind is LinkKind.NONE
        assert Link.parse(LinkKind.SWITCHED).render() == "nxn"

    @pytest.mark.parametrize("bad", ["x", "n--n", "a?b", "1+1", "nxnxn"])
    def test_parse_rejects_malformed_cells(self, bad):
        with pytest.raises(SignatureError):
            Link.parse(bad)

    def test_constructors(self):
        assert Link.none().kind is LinkKind.NONE
        assert Link.direct("1", "n").render() == "1-n"
        assert Link.switched().render() == "nxn"

    def test_with_endpoints(self):
        link = Link.switched("n", "n").with_endpoints("64", "64")
        assert link.render() == "64x64"
        # NONE links have no endpoints to replace.
        assert Link.none().with_endpoints("a", "b").kind is LinkKind.NONE

    def test_str_is_render(self):
        assert str(Link.direct("1", "1")) == "1-1"
