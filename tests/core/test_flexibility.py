"""Unit tests for the flexibility scoring system (§III-B rules)."""


from repro.core import (
    LinkSite,
    MachineType,
    class_by_name,
    comparable,
    flexibility,
    make_signature,
    score_signature,
)


class TestScoringRules:
    def test_one_point_per_plural_population(self):
        score = score_signature(class_by_name("IMP-I").signature)
        assert score.multiplicity_points == 2
        score = score_signature(class_by_name("IAP-I").signature)
        assert score.multiplicity_points == 1
        score = score_signature(class_by_name("IUP").signature)
        assert score.multiplicity_points == 0

    def test_one_point_per_switched_site(self):
        score = score_signature(class_by_name("ISP-XVI").signature)
        assert score.switch_points == 5
        assert set(score.switched_sites) == set(LinkSite)

    def test_universal_bonus_only_for_variable_machines(self):
        assert score_signature(class_by_name("USP").signature).universal_bonus == 1
        assert score_signature(class_by_name("ISP-XVI").signature).universal_bonus == 0

    def test_concrete_counts_score_like_symbols(self):
        """MorphoSys (64 DPs) scores exactly like the symbolic IAP-II."""
        concrete = make_signature(1, 64, ip_dp="1-64", ip_im="1-1",
                                  dp_dm="64-1", dp_dp="64x64")
        symbolic = class_by_name("IAP-II").signature
        assert flexibility(concrete) == flexibility(symbolic) == 2

    def test_direct_links_earn_nothing(self):
        """PADDI-2-style direct DP-DP connectivity adds no flexibility."""
        direct = make_signature(48, 48, ip_dp="48-48", ip_im="48-48",
                                dp_dm="48-48", dp_dp="48-48")
        without = make_signature(4, 4, ip_dp="4-4", ip_im="4-4", dp_dm="4-4")
        assert flexibility(direct) == flexibility(without) == 2

    def test_int_conversion(self):
        assert int(score_signature(class_by_name("IMP-XVI").signature)) == 6

    def test_explain_mentions_every_component(self):
        text = score_signature(class_by_name("DMP-IV").signature).explain()
        assert "flexibility 3" in text
        assert "DP-DM" in text and "DP-DP" in text

    def test_explain_without_switches(self):
        text = score_signature(class_by_name("IUP").signature).explain()
        assert "(none)" in text

    def test_usp_explain_mentions_bonus(self):
        text = score_signature(class_by_name("USP").signature).explain()
        assert "universal-flow bonus" in text


class TestComparability:
    def test_same_machine_type_comparable(self):
        assert comparable(
            class_by_name("IMP-I").signature, class_by_name("IAP-IV").signature
        )
        assert comparable(
            class_by_name("DMP-I").signature, class_by_name("DMP-IV").signature
        )

    def test_data_vs_instruction_flow_incomparable(self):
        assert not comparable(
            class_by_name("DMP-IV").signature, class_by_name("IMP-I").signature
        )

    def test_universal_comparable_to_everything(self):
        usp = class_by_name("USP").signature
        assert comparable(usp, class_by_name("DMP-I").signature)
        assert comparable(class_by_name("IMP-XVI").signature, usp)

    def test_accepts_scores_directly(self):
        a = score_signature(class_by_name("IMP-I").signature)
        b = score_signature(class_by_name("ISP-I").signature)
        assert comparable(a, b)

    def test_machine_type_recorded(self):
        assert (
            score_signature(class_by_name("DMP-II").signature).machine_type
            is MachineType.DATA_FLOW
        )


class TestMonotonicity:
    def test_upgrading_any_site_never_decreases_flexibility(self):
        from repro.core import all_classes

        for cls in all_classes():
            if not cls.implementable:
                continue
            base = flexibility(cls.signature)
            for site in LinkSite:
                try:
                    upgraded = cls.signature.upgraded(site)
                except Exception:
                    continue  # upgrade may violate structural rules
                assert flexibility(upgraded) >= base
