"""Edge-case tests for the error hierarchy and small shared types."""

import pytest

from repro.core.errors import (
    CapabilityError,
    ClassificationError,
    ConfigurationError,
    NamingError,
    NotImplementableError,
    ProgramError,
    RegistryError,
    ReproError,
    RoutingError,
    SignatureError,
)
from repro.interconnect.topology import Route, TrafficStats
from repro.machine.base import Capability, ExecutionResult, check_capabilities


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SignatureError, ClassificationError, NamingError,
            CapabilityError, ConfigurationError, RoutingError,
            ProgramError, RegistryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_ni_error_is_a_classification_error(self):
        assert issubclass(NotImplementableError, ClassificationError)


class TestRoute:
    def test_endpoint_consistency_enforced(self):
        with pytest.raises(RoutingError, match="endpoints"):
            Route(source="a", destination="b", path=("a", "c"), cycles=1)

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            Route(source="a", destination="a", path=(), cycles=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(RoutingError):
            Route(source="a", destination="a", path=("a",), cycles=-1)

    def test_hops(self):
        route = Route(source="a", destination="c", path=("a", "b", "c"), cycles=2)
        assert route.hops == 2


class TestTrafficStats:
    def test_accumulation(self):
        stats = TrafficStats()
        stats.record(Route("a", "b", ("a", "b"), cycles=1))
        stats.record(Route("a", "c", ("a", "b", "c"), cycles=2))
        assert stats.transfers == 2
        assert stats.total_hops == 3
        assert stats.mean_hops == pytest.approx(1.5)
        # the shared a-b link carried both transfers
        assert stats.max_link_load == 2

    def test_empty_stats(self):
        stats = TrafficStats()
        assert stats.mean_hops == 0.0
        assert stats.max_link_load == 0

    def test_link_keys_are_canonical(self):
        stats = TrafficStats()
        stats.record(Route("b", "a", ("b", "a"), cycles=1))
        stats.record(Route("a", "b", ("a", "b"), cycles=1))
        assert stats.per_link_load == {("a", "b"): 2}


class TestExecutionResult:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionResult(cycles=-1, operations=0)
        with pytest.raises(ValueError):
            ExecutionResult(cycles=1, operations=-1)

    def test_ops_per_cycle(self):
        result = ExecutionResult(cycles=4, operations=10)
        assert result.operations_per_cycle == 2.5
        idle = ExecutionResult(cycles=0, operations=0)
        assert idle.operations_per_cycle == 0.0

    def test_merge_stats(self):
        result = ExecutionResult(cycles=1, operations=1)
        same = result.merge_stats(extra=42)
        assert same is result
        assert result.stats["extra"] == 42


class TestCheckCapabilities:
    def test_lists_every_missing_capability(self):
        with pytest.raises(CapabilityError) as excinfo:
            check_capabilities(
                {Capability.INSTRUCTION_EXECUTION},
                {
                    Capability.INSTRUCTION_EXECUTION,
                    Capability.LANE_SHUFFLE,
                    Capability.GLOBAL_MEMORY,
                },
                machine="TEST",
            )
        message = str(excinfo.value)
        assert "TEST" in message
        assert "DP-DP switch" in message
        assert "DP-DM switch" in message

    def test_satisfied_is_silent(self):
        check_capabilities(
            set(Capability), {Capability.DATA_PARALLEL}, machine="X"
        )
