"""Unit tests for the naming scheme: Roman numerals, subtype codec, names."""

import pytest

from repro.core import MachineType, ProcessingType, TaxonomicName, roman, unroman
from repro.core.errors import NamingError
from repro.core.naming import subtype_from_switch_bits, switch_bits_from_subtype


class TestRoman:
    @pytest.mark.parametrize(
        "value, numeral",
        [(1, "I"), (2, "II"), (4, "IV"), (5, "V"), (9, "IX"), (14, "XIV"),
         (16, "XVI"), (40, "XL"), (90, "XC"), (1994, "MCMXCIV")],
    )
    def test_roundtrip(self, value, numeral):
        assert roman(value) == numeral
        assert unroman(numeral) == value

    def test_full_roundtrip_range(self):
        for value in range(1, 200):
            assert unroman(roman(value)) == value

    @pytest.mark.parametrize("bad", [0, -3, 4000])
    def test_roman_range(self, bad):
        with pytest.raises(NamingError):
            roman(bad)

    @pytest.mark.parametrize("bad", ["", "ABC", "IIII", "VV", "IL", "X IV"])
    def test_unroman_rejects_non_canonical(self, bad):
        with pytest.raises(NamingError):
            unroman(bad)

    def test_unroman_accepts_lowercase_and_padding(self):
        assert unroman("xiv") == 14
        assert unroman(" IV ") == 4


class TestSubtypeCodec:
    def test_two_site_codec_matches_table1(self):
        # (dp_dm switched, dp_dp switched) -> subtype
        assert subtype_from_switch_bits((False, False)) == 1
        assert subtype_from_switch_bits((False, True)) == 2
        assert subtype_from_switch_bits((True, False)) == 3
        assert subtype_from_switch_bits((True, True)) == 4

    def test_four_site_codec_spot_checks(self):
        # IMP-XIV has IP-DP, IP-IM, DP-DP switched and DP-DM direct.
        assert subtype_from_switch_bits((True, True, False, True)) == 14
        assert switch_bits_from_subtype(14, 4) == (True, True, False, True)

    def test_codec_roundtrip(self):
        for width in (2, 4):
            for subtype in range(1, (1 << width) + 1):
                bits = switch_bits_from_subtype(subtype, width)
                assert subtype_from_switch_bits(bits) == subtype

    def test_out_of_range_subtype(self):
        with pytest.raises(NamingError):
            switch_bits_from_subtype(17, 4)
        with pytest.raises(NamingError):
            switch_bits_from_subtype(0, 2)


class TestTaxonomicName:
    def test_short_and_long_forms(self):
        name = TaxonomicName(MachineType.INSTRUCTION_FLOW, ProcessingType.MULTI, 14)
        assert name.short == "IMP-XIV"
        assert name.long == "Instruction Flow Multi Processor XIV"
        assert str(name) == "IMP-XIV"

    def test_no_subtype_classes(self):
        assert TaxonomicName(MachineType.DATA_FLOW, ProcessingType.UNI).short == "DUP"
        assert TaxonomicName(MachineType.UNIVERSAL_FLOW, ProcessingType.SPATIAL).short == "USP"

    def test_subtype_required_where_applicable(self):
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.INSTRUCTION_FLOW, ProcessingType.MULTI)

    def test_subtype_forbidden_where_not_applicable(self):
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.INSTRUCTION_FLOW, ProcessingType.UNI, 2)

    def test_subtype_range_enforced(self):
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.DATA_FLOW, ProcessingType.MULTI, 5)
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.INSTRUCTION_FLOW, ProcessingType.SPATIAL, 17)

    def test_invalid_combination(self):
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.DATA_FLOW, ProcessingType.ARRAY, 1)
        with pytest.raises(NamingError):
            TaxonomicName(MachineType.UNIVERSAL_FLOW, ProcessingType.UNI)

    @pytest.mark.parametrize(
        "text, short",
        [
            ("IMP-XIV", "IMP-XIV"),
            ("imp-14", "IMP-XIV"),
            ("Usp", "USP"),
            ("iap-iv", "IAP-IV"),
            ("ISP - XVI", "ISP-XVI"),
            ("dmp-2", "DMP-II"),
        ],
    )
    def test_parse(self, text, short):
        assert TaxonomicName.parse(text).short == short

    @pytest.mark.parametrize("bad", ["", "XYZ-IV", "IMP", "IMP-0", "IMP-XVII", "IMP-ABC"])
    def test_parse_rejects(self, bad):
        with pytest.raises(NamingError):
            TaxonomicName.parse(bad)

    def test_parse_format_roundtrip_over_all_names(self):
        from repro.core import implementable_classes

        for cls in implementable_classes():
            assert TaxonomicName.parse(cls.name.short) == cls.name

    def test_switch_bits_property(self):
        assert TaxonomicName.parse("IMP-I").switch_bits == (False,) * 4
        assert TaxonomicName.parse("IAP-IV").switch_bits == (True, True)
        assert TaxonomicName.parse("USP").switch_bits == ()

    def test_same_family(self):
        a = TaxonomicName.parse("IMP-I")
        assert a.same_family(TaxonomicName.parse("IMP-XVI"))
        assert not a.same_family(TaxonomicName.parse("ISP-I"))

    def test_same_subtype_pattern_across_families(self):
        # §III-A: IAP-I and IMP-I share their switch pattern.
        assert TaxonomicName.parse("IAP-I").same_subtype_pattern(
            TaxonomicName.parse("IMP-I")
        )
        assert TaxonomicName.parse("IAP-II").same_subtype_pattern(
            TaxonomicName.parse("IMP-II")
        )
        assert not TaxonomicName.parse("IAP-II").same_subtype_pattern(
            TaxonomicName.parse("IMP-III")
        )

    def test_names_sort_in_table_order(self):
        names = [
            TaxonomicName.parse(n)
            for n in ("ISP-I", "DUP", "IMP-II", "IAP-IV", "USP", "IUP")
        ]
        ordered = sorted(names)
        assert [n.short for n in ordered] == [
            "DUP", "IUP", "IAP-IV", "IMP-II", "ISP-I", "USP",
        ]
