"""Unit tests for signature construction and validation."""

import pytest

from repro.core import (
    Granularity,
    LinkKind,
    LinkSite,
    Multiplicity,
    Signature,
    make_signature,
)
from repro.core.errors import SignatureError


def iup() -> Signature:
    return make_signature(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")


def imp_ii() -> Signature:
    return make_signature(
        "n", "n", ip_dp="n-n", ip_im="n-n", dp_dm="n-n", dp_dp="nxn"
    )


class TestValidation:
    def test_valid_iup(self):
        sig = iup()
        assert sig.is_instruction_flow
        assert not sig.is_data_flow
        assert not sig.is_universal_flow

    def test_dataflow_forbids_ip_links(self):
        with pytest.raises(SignatureError, match="IP-DP"):
            make_signature(0, "n", ip_dp="1-n", dp_dm="n-n")

    def test_instruction_flow_requires_ip_dp(self):
        with pytest.raises(SignatureError, match="IP-DP"):
            make_signature(1, 1, ip_im="1-1", dp_dm="1-1")

    def test_instruction_flow_requires_ip_im(self):
        with pytest.raises(SignatureError, match="IP-IM"):
            make_signature(1, 1, ip_dp="1-1", dp_dm="1-1")

    def test_every_machine_needs_dp_dm(self):
        with pytest.raises(SignatureError, match="DP-DM"):
            make_signature(1, 1, ip_dp="1-1", ip_im="1-1")

    def test_zero_dps_rejected(self):
        with pytest.raises(SignatureError, match="data processor"):
            make_signature(0, 0, dp_dm="1-1")

    def test_single_ip_cannot_self_connect(self):
        with pytest.raises(SignatureError, match="IP-IP"):
            make_signature(1, "n", ip_ip="1x1", ip_dp="1-n", ip_im="1-1", dp_dm="n-n")

    def test_single_dp_cannot_self_connect(self):
        with pytest.raises(SignatureError, match="DP-DP"):
            make_signature(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1", dp_dp="1x1")

    def test_variable_requires_fine_granularity(self):
        with pytest.raises(SignatureError, match="fine"):
            make_signature(
                "v", "v",
                ip_ip="vxv", ip_dp="vxv", ip_im="vxv", dp_dm="vxv", dp_dp="vxv",
                granularity="coarse",
            )

    def test_fine_granularity_requires_variable(self):
        with pytest.raises(SignatureError, match="variable"):
            make_signature(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1",
                           granularity="LUTs")

    def test_granularity_inferred_from_variable(self):
        sig = make_signature(
            "v", "v", ip_ip="vxv", ip_dp="vxv", ip_im="vxv", dp_dm="vxv", dp_dp="vxv"
        )
        assert sig.granularity is Granularity.FINE
        assert sig.is_universal_flow

    def test_unknown_granularity_string(self):
        with pytest.raises(SignatureError, match="granularity"):
            make_signature(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1",
                           granularity="medium")


class TestAccessors:
    def test_link_by_site(self):
        sig = imp_ii()
        assert sig.link(LinkSite.DP_DP).is_switched
        assert sig.link(LinkSite.IP_DP).kind is LinkKind.DIRECT
        assert sig.link(LinkSite.IP_IP).kind is LinkKind.NONE

    def test_links_mapping_in_column_order(self):
        sig = imp_ii()
        assert [site.label for site in sig.links] == [
            "IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP",
        ]

    def test_link_kinds_tuple(self):
        assert iup().link_kinds() == (
            LinkKind.NONE, LinkKind.DIRECT, LinkKind.DIRECT,
            LinkKind.DIRECT, LinkKind.NONE,
        )

    def test_switched_sites(self):
        assert imp_ii().switched_sites() == (LinkSite.DP_DP,)
        assert iup().switched_sites() == ()

    def test_iter_cells(self):
        assert list(iup().iter_cells()) == [
            "1", "1", "none", "1-1", "1-1", "1-1", "none",
        ]

    def test_describe_mentions_all_sites(self):
        text = imp_ii().describe()
        for label in ("IP-IP", "IP-DP", "IP-IM", "DP-DM", "DP-DP"):
            assert label in text


class TestTransforms:
    def test_with_link_replaces_one_site(self):
        upgraded = imp_ii().with_link(LinkSite.DP_DM, "nxn")
        assert upgraded.link(LinkSite.DP_DM).is_switched
        # original untouched (immutability)
        assert not imp_ii().link(LinkSite.DP_DM).is_switched

    def test_with_link_revalidates(self):
        with pytest.raises(SignatureError):
            iup().with_link(LinkSite.DP_DM, "none")

    def test_upgrade_direct_to_switched(self):
        sig = imp_ii().upgraded(LinkSite.DP_DM)
        assert sig.link(LinkSite.DP_DM).is_switched
        assert sig.link(LinkSite.DP_DM).render() == "nxn"

    def test_upgrade_switched_is_noop(self):
        sig = imp_ii()
        assert sig.upgraded(LinkSite.DP_DP) == sig

    def test_upgrade_none_to_direct(self):
        sig = imp_ii().upgraded(LinkSite.IP_IP)
        assert sig.link(LinkSite.IP_IP).kind is LinkKind.DIRECT
        assert sig.link(LinkSite.IP_IP).render() == "n-n"

    def test_signatures_are_hashable_and_equal_by_value(self):
        assert imp_ii() == imp_ii()
        assert hash(imp_ii()) == hash(imp_ii())
        assert imp_ii() != iup()
        assert len({imp_ii(), imp_ii(), iup()}) == 2


class TestMakeSignature:
    def test_concrete_counts_preserved(self):
        sig = make_signature(1, 64, ip_dp="1-64", ip_im="1-1",
                             dp_dm="64-1", dp_dp="64x64")
        assert sig.dps.value == 64
        assert sig.dps.multiplicity is Multiplicity.MANY

    def test_template_symbols(self):
        sig = make_signature("n", "m", ip_dp="nxm", ip_im="nxn",
                             dp_dm="m-1", dp_dp="mxm")
        assert sig.ips.multiplicity is Multiplicity.MANY
        assert sig.dps.multiplicity is Multiplicity.MANY
