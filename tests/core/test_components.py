"""Unit tests for component kinds, multiplicities and counts."""

import pytest

from repro.core import Granularity, Multiplicity, multiplicity_of_count
from repro.core.components import ComponentCount, ComponentKind
from repro.core.errors import SignatureError


class TestComponentKind:
    def test_processor_kinds(self):
        assert ComponentKind.IP.is_processor
        assert ComponentKind.DP.is_processor
        assert not ComponentKind.IM.is_processor
        assert not ComponentKind.DM.is_processor

    def test_memory_kinds(self):
        assert ComponentKind.IM.is_memory
        assert ComponentKind.DM.is_memory
        assert not ComponentKind.IP.is_memory

    def test_str_uses_paper_symbols(self):
        assert str(ComponentKind.IP) == "IP"
        assert str(ComponentKind.DM) == "DM"


class TestMultiplicity:
    def test_total_order(self):
        assert Multiplicity.ZERO < Multiplicity.ONE < Multiplicity.MANY < Multiplicity.VARIABLE

    def test_comparison_operators(self):
        assert Multiplicity.MANY >= Multiplicity.ONE
        assert Multiplicity.ONE <= Multiplicity.MANY
        assert Multiplicity.VARIABLE > Multiplicity.ZERO
        assert not Multiplicity.ZERO > Multiplicity.ZERO

    def test_comparison_with_non_multiplicity_fails(self):
        with pytest.raises(TypeError):
            Multiplicity.ONE < 3  # noqa: B015

    def test_plural_symbols(self):
        assert Multiplicity.MANY.is_plural
        assert Multiplicity.VARIABLE.is_plural
        assert not Multiplicity.ONE.is_plural
        assert not Multiplicity.ZERO.is_plural

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("0", Multiplicity.ZERO),
            ("1", Multiplicity.ONE),
            ("n", Multiplicity.MANY),
            ("N", Multiplicity.MANY),
            ("m", Multiplicity.MANY),
            ("v", Multiplicity.VARIABLE),
            ("24xn", Multiplicity.MANY),
            ("64", Multiplicity.MANY),
            ("2", Multiplicity.MANY),
        ],
    )
    def test_parse(self, text, expected):
        assert Multiplicity.parse(text) is expected

    @pytest.mark.parametrize("bad", ["", "x", "abc", "-1"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(SignatureError):
            Multiplicity.parse(bad)


class TestMultiplicityOfCount:
    def test_mapping(self):
        assert multiplicity_of_count(0) is Multiplicity.ZERO
        assert multiplicity_of_count(1) is Multiplicity.ONE
        assert multiplicity_of_count(2) is Multiplicity.MANY
        assert multiplicity_of_count(1000) is Multiplicity.MANY

    def test_negative_rejected(self):
        with pytest.raises(SignatureError):
            multiplicity_of_count(-1)


class TestComponentCount:
    def test_of_int_keeps_value(self):
        count = ComponentCount.of(64)
        assert count.multiplicity is Multiplicity.MANY
        assert count.value == 64
        assert str(count) == "64"

    def test_of_symbol_has_no_value(self):
        count = ComponentCount.of("n")
        assert count.multiplicity is Multiplicity.MANY
        assert count.value is None
        assert str(count) == "n"

    def test_of_numeric_string(self):
        count = ComponentCount.of("8")
        assert count.value == 8

    def test_of_passthrough(self):
        original = ComponentCount.of(4)
        assert ComponentCount.of(original) is original
        assert ComponentCount.of(Multiplicity.VARIABLE).multiplicity is Multiplicity.VARIABLE

    def test_inconsistent_value_rejected(self):
        with pytest.raises(SignatureError):
            ComponentCount(Multiplicity.ONE, 5)
        with pytest.raises(SignatureError):
            ComponentCount(Multiplicity.MANY, 1)

    def test_variable_accepts_any_value(self):
        assert ComponentCount(Multiplicity.VARIABLE, 100).value == 100

    def test_resolve(self):
        assert ComponentCount.of("n").resolve(16) == 16
        assert ComponentCount.of(64).resolve(16) == 64
        assert ComponentCount.of(1).resolve(16) == 1
        assert ComponentCount.of(0).resolve(16) == 0
        assert ComponentCount.of("v").resolve(8) == 8

    def test_of_rejects_garbage_type(self):
        with pytest.raises(SignatureError):
            ComponentCount.of(3.5)  # type: ignore[arg-type]


class TestGranularity:
    def test_symbols_match_table1(self):
        assert str(Granularity.COARSE) == "IP/DP"
        assert str(Granularity.FINE) == "LUTs"
