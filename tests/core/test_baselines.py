"""Unit tests for the Flynn and Skillicorn baseline taxonomies."""


from repro.core import (
    FlynnClass,
    all_classes,
    baseline_resolution,
    class_by_name,
    class_by_serial,
    extension_report,
    flynn_class,
    make_signature,
    skillicorn_verdict,
)


class TestFlynn:
    def test_sisd_is_the_uniprocessor(self):
        assert flynn_class(class_by_name("IUP").signature) is FlynnClass.SISD

    def test_simd_is_the_array_processor(self):
        for name in ("IAP-I", "IAP-II", "IAP-III", "IAP-IV"):
            assert flynn_class(class_by_name(name).signature) is FlynnClass.SIMD

    def test_mimd_covers_imp_and_isp(self):
        assert flynn_class(class_by_name("IMP-I").signature) is FlynnClass.MIMD
        assert flynn_class(class_by_name("ISP-XVI").signature) is FlynnClass.MIMD

    def test_misd_is_the_ni_configuration(self):
        # n IPs driving one DP: Flynn's MISD — the paper calls it NI.
        assert flynn_class(class_by_serial(11).signature) is FlynnClass.MISD

    def test_dataflow_has_no_flynn_category(self):
        for name in ("DUP", "DMP-I", "DMP-IV"):
            assert flynn_class(class_by_name(name).signature) is None

    def test_variable_machines_have_no_fixed_category(self):
        assert flynn_class(class_by_name("USP").signature) is None

    def test_concrete_counts(self):
        dual_core = make_signature(2, 2, ip_dp="2-2", ip_im="2-2", dp_dm="2-2")
        assert flynn_class(dual_core) is FlynnClass.MIMD


class TestSkillicorn:
    def test_classic_classes_are_representable(self):
        for name in ("DUP", "DMP-IV", "IUP", "IAP-II", "IMP-XVI"):
            verdict = skillicorn_verdict(class_by_name(name).signature)
            assert verdict.representable
            assert verdict.reasons == ()

    def test_ip_ip_classes_are_new(self):
        verdict = skillicorn_verdict(class_by_name("ISP-I").signature)
        assert not verdict.representable
        assert any("IP-IP" in reason for reason in verdict.reasons)

    def test_variable_classes_are_new(self):
        verdict = skillicorn_verdict(class_by_name("USP").signature)
        assert not verdict.representable
        assert any("variable" in reason for reason in verdict.reasons)
        # USP violates both limits at once.
        assert len(verdict.reasons) == 2

    def test_bool_conversion(self):
        assert skillicorn_verdict(class_by_name("IUP").signature)
        assert not skillicorn_verdict(class_by_name("ISP-IV").signature)

    def test_ni_rows_13_14_are_also_new(self):
        """Rows 13-14 carry the new IP-IP switch (the paper counts them
        among its additions)."""
        assert not skillicorn_verdict(class_by_serial(13).signature).representable
        assert not skillicorn_verdict(class_by_serial(14).signature).representable
        assert skillicorn_verdict(class_by_serial(11).signature).representable


class TestExtensionReport:
    def test_paper_claims_19_new_classes(self):
        """'we ... introduced 19 new classes' (§II-C): rows 13-14,
        31-46 (IP-IP) and 47 (variable)."""
        report = extension_report()
        assert len(report.skillicorn_new) == 19
        serials = {int(entry.split(".")[0]) for entry in report.skillicorn_new}
        assert serials == {13, 14, *range(31, 47), 47}

    def test_flynn_unmappable_are_dataflow_and_usp(self):
        report = extension_report()
        serials = {int(entry.split(".")[0]) for entry in report.flynn_unmappable}
        assert serials == {1, 2, 3, 4, 5, 47}

    def test_mimd_fanout_quantifies_broadness(self):
        """One Flynn label covers all 32 IMP/ISP classes — the
        'broadness' Skillicorn cited as Flynn's limitation."""
        report = extension_report()
        assert report.mimd_fanout == 32

    def test_summary_text(self):
        text = extension_report().summary()
        assert "47 extended classes" in text
        assert "19" in text


class TestResolution:
    def test_partition_covers_all_classes(self):
        rows = baseline_resolution()
        total = sum(row.resolution_gain for row in rows.values())
        assert total == 47

    def test_simd_bucket(self):
        rows = baseline_resolution()
        assert set(rows["SIMD"].extended_classes) == {
            "IAP-I", "IAP-II", "IAP-III", "IAP-IV",
        }

    def test_sisd_bucket(self):
        rows = baseline_resolution()
        assert rows["SISD"].extended_classes == ("IUP",)

    def test_misd_bucket_is_the_ni_rows(self):
        rows = baseline_resolution()
        assert rows["MISD"].resolution_gain == 4
        assert set(rows["MISD"].extended_classes) == {"NI"}
