"""Property-based tests (hypothesis) for the taxonomy core.

Strategies generate arbitrary *valid* signatures by construction, then
check classification totality, flexibility monotonicity, naming codec
round-trips and serialisation inverses.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    LINK_SITES,
    LinkKind,
    LinkSite,
    Signature,
    TaxonomicName,
    classify,
    flexibility,
    make_signature,
    roman,
    unroman,
)
from repro.core.naming import subtype_from_switch_bits, switch_bits_from_subtype
from repro.reporting.export import signature_from_dict, signature_to_dict


def _link_cell(kind: LinkKind, left: str, right: str) -> "str | None":
    if kind is LinkKind.NONE:
        return None
    sep = "x" if kind is LinkKind.SWITCHED else "-"
    return f"{left}{sep}{right}"


@st.composite
def signatures(draw) -> Signature:
    """Arbitrary valid signatures covering every machine family."""
    family = draw(
        st.sampled_from(["dup", "dmp", "iup", "iap", "ni", "imp", "isp", "usp"])
    )
    two_kinds = st.sampled_from([LinkKind.DIRECT, LinkKind.SWITCHED])
    opt_kind = st.sampled_from([LinkKind.NONE, LinkKind.DIRECT, LinkKind.SWITCHED])
    if family == "dup":
        return make_signature(0, 1, dp_dm="1-1")
    if family == "dmp":
        dp_dm = draw(two_kinds)
        dp_dp = draw(opt_kind)
        return make_signature(
            0, "n",
            dp_dm=_link_cell(dp_dm, "n", "n"),
            dp_dp=_link_cell(dp_dp, "n", "n"),
        )
    if family == "iup":
        return make_signature(1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")
    if family == "iap":
        dp_dm = draw(two_kinds)
        dp_dp = draw(opt_kind)
        count = draw(st.sampled_from(["n", "2", "8", "64"]))
        return make_signature(
            1, count,
            ip_dp=f"1-{count}",
            ip_im="1-1",
            dp_dm=_link_cell(dp_dm, count, count),
            dp_dp=_link_cell(dp_dp, count, count),
        )
    if family == "ni":
        ip_ip = draw(st.sampled_from([LinkKind.NONE, LinkKind.SWITCHED]))
        ip_im = draw(two_kinds)
        return make_signature(
            "n", 1,
            ip_ip=_link_cell(ip_ip, "n", "n"),
            ip_dp="n-1",
            ip_im=_link_cell(ip_im, "n", "n"),
            dp_dm="1-1",
        )
    if family in ("imp", "isp"):
        ip_ip = (
            draw(st.sampled_from([LinkKind.DIRECT, LinkKind.SWITCHED]))
            if family == "isp"
            else LinkKind.NONE
        )
        ip_dp = draw(two_kinds)
        ip_im = draw(two_kinds)
        dp_dm = draw(two_kinds)
        dp_dp = draw(opt_kind)
        return make_signature(
            "n", "n",
            ip_ip=_link_cell(ip_ip, "n", "n"),
            ip_dp=_link_cell(ip_dp, "n", "n"),
            ip_im=_link_cell(ip_im, "n", "n"),
            dp_dm=_link_cell(dp_dm, "n", "n"),
            dp_dp=_link_cell(dp_dp, "n", "n"),
        )
    return make_signature(
        "v", "v", ip_ip="vxv", ip_dp="vxv", ip_im="vxv", dp_dm="vxv", dp_dp="vxv"
    )


@given(signatures())
def test_classification_is_total(sig):
    """Every valid signature lands in exactly one Table-I class."""
    result = classify(sig)
    assert 1 <= result.taxonomy_class.serial <= 47


@given(signatures())
def test_flexibility_equals_manual_count(sig):
    """The score always equals plural populations + x-switches + bonus."""
    plural = sum(
        1 for count in (sig.ips, sig.dps) if count.multiplicity.is_plural
    )
    switches = sum(1 for site in LINK_SITES if sig.link(site).is_switched)
    bonus = 1 if sig.is_universal_flow else 0
    assert flexibility(sig) == plural + switches + bonus


@given(signatures(), st.sampled_from(list(LinkSite)))
def test_upgrade_monotonicity(sig, site):
    """Upgrading a link never lowers flexibility and never changes it by
    more than one point."""
    try:
        upgraded = sig.upgraded(site)
    except Exception:
        return  # structurally impossible upgrade — fine
    before, after = flexibility(sig), flexibility(upgraded)
    assert before <= after <= before + 1


@given(signatures())
def test_classification_idempotent_on_canonical_signature(sig):
    """Re-classifying a class's canonical signature returns the class."""
    result = classify(sig)
    again = classify(result.taxonomy_class.signature)
    assert again.taxonomy_class.serial == result.taxonomy_class.serial


@given(signatures())
def test_signature_serialisation_roundtrip(sig):
    """to_dict / from_dict preserves classification and flexibility."""
    recovered = signature_from_dict(signature_to_dict(sig))
    assert classify(recovered).short_name == classify(sig).short_name
    assert flexibility(recovered) == flexibility(sig)


@given(signatures())
def test_flexibility_of_class_never_exceeds_signature(sig):
    """A concrete machine scores exactly its canonical class's value
    (link kinds and multiplicity symbols fully determine the score)."""
    cls = classify(sig).taxonomy_class
    if cls.implementable:
        assert flexibility(sig) == flexibility(cls.signature)


@given(st.integers(min_value=1, max_value=3999))
def test_roman_roundtrip(value):
    assert unroman(roman(value)) == value


@given(st.integers(min_value=1, max_value=16))
def test_subtype_codec_roundtrip(ordinal):
    assert subtype_from_switch_bits(switch_bits_from_subtype(ordinal, 4)) == ordinal


@given(signatures())
def test_name_parse_roundtrip_from_classified(sig):
    result = classify(sig)
    if result.name is None:
        return
    assert TaxonomicName.parse(result.name.short) == result.name


@given(signatures(), signatures())
def test_similarity_symmetric_and_bounded(a, b):
    from repro.core import compare_classes

    ca = classify(a).taxonomy_class
    cb = classify(b).taxonomy_class
    if not (ca.implementable and cb.implementable):
        return
    forward = compare_classes(ca, cb).similarity
    backward = compare_classes(cb, ca).similarity
    assert 0.0 <= forward <= 1.0
    assert forward == backward
    if ca.serial == cb.serial:
        assert forward == 1.0
