"""Unit tests for the Fig.-2 hierarchy tree."""

from repro.core import build_hierarchy, iter_paths


class TestHierarchy:
    def test_root_has_three_machine_types(self):
        root = build_hierarchy()
        assert [child.label for child in root.children] == [
            "Data Flow", "Instruction Flow", "Universal Flow",
        ]

    def test_processing_types_in_canonical_order(self):
        root = build_hierarchy()
        instruction = root.children[1]
        assert [child.label for child in instruction.children] == [
            "Uni Processor", "Array Processor", "Multi Processor",
            "Spatial Processor",
        ]

    def test_leaf_count_covers_all_named_classes(self):
        root = build_hierarchy()
        total = sum(len(node.classes) for _, node in root.walk())
        assert total == 43

    def test_ni_hidden_by_default(self):
        paths = list(iter_paths(build_hierarchy()))
        assert not any("NI" in part for path in paths for part in path)

    def test_ni_branch_when_requested(self):
        root = build_hierarchy(include_ni=True)
        instruction = root.children[1]
        labels = [child.label for child in instruction.children]
        assert "Not Implementable" in labels
        ni_node = instruction.child("Not Implementable")
        assert len(ni_node.classes) == 4

    def test_child_lookup_creates_once(self):
        root = build_hierarchy()
        node = root.child("Data Flow")
        assert node is root.child("Data Flow")

    def test_iter_paths_reach_every_class(self):
        paths = list(iter_paths(build_hierarchy()))
        leaves = {path[-1] for path in paths}
        assert "DUP" in leaves and "USP" in leaves and "ISP-XVI" in leaves

    def test_walk_yields_depths(self):
        root = build_hierarchy()
        depths = {node.label: depth for depth, node in root.walk()}
        assert depths["Computing Machines"] == 0
        assert depths["Data Flow"] == 1
        assert depths["Array Processor"] == 2

    def test_leaf_count_property(self):
        root = build_hierarchy()
        assert root.leaf_count >= 7  # at least one leaf per PT branch
