"""Tests for the seeded synthetic-population generator."""

import pytest

from repro.core.classify import canonical_class
from repro.core.errors import ReproError
from repro.registry.populations import (
    POPULATION_MODES,
    PopulationSpec,
    class_occupancy,
    describe_population,
    generate_batch,
    generate_signatures,
)
from repro.core.taxonomy import all_classes


class TestDeterminism:
    def test_same_spec_same_population(self):
        spec = PopulationSpec(size=300, seed=42)
        assert generate_signatures(spec) == generate_signatures(spec)

    def test_uniform_mode_is_deterministic_too(self):
        spec = PopulationSpec(size=300, seed=42, mode="uniform")
        assert generate_signatures(spec) == generate_signatures(spec)

    def test_different_seeds_differ(self):
        a = generate_signatures(PopulationSpec(size=300, seed=1))
        b = generate_signatures(PopulationSpec(size=300, seed=2))
        assert a != b

    def test_batch_matches_signatures(self):
        spec = PopulationSpec(size=50, seed=3)
        signatures = generate_signatures(spec)
        batch = generate_batch(spec)
        assert list(batch.signatures()) == [
            batch.signature(row) for row in range(len(batch))
        ]
        assert len(batch) == len(signatures)


class TestStratification:
    def test_stratified_covers_every_class_structure(self):
        signatures = generate_signatures(PopulationSpec(size=1000, seed=0))
        serials = {canonical_class(s).serial for s in signatures}
        assert serials == {cls.serial for cls in all_classes()}

    def test_stratified_shares_are_balanced(self):
        occupancy = class_occupancy(
            generate_signatures(PopulationSpec(size=470, seed=9))
        )
        assert max(occupancy.values()) - min(occupancy.values()) <= 1

    def test_uniform_draws_beyond_class_structures(self):
        # 406 valid structures vs 47 class signatures: a large uniform
        # draw must touch structures no class signature uses.
        signatures = generate_signatures(
            PopulationSpec(size=2000, seed=5, mode="uniform")
        )
        class_structures = {
            (s.ips.multiplicity, s.dps.multiplicity, s.link_kinds())
            for s in (cls.signature for cls in all_classes())
        }
        drawn = {
            (s.ips.multiplicity, s.dps.multiplicity, s.link_kinds())
            for s in signatures
        }
        assert drawn - class_structures

    def test_max_n_bounds_decorated_counts(self):
        signatures = generate_signatures(
            PopulationSpec(size=500, seed=6, max_n=32)
        )
        for signature in signatures:
            for count in (signature.ips, signature.dps):
                if count.value is not None:
                    assert count.value <= 32


class TestValidation:
    def test_modes_are_published(self):
        assert POPULATION_MODES == ("stratified", "uniform")

    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError):
            PopulationSpec(size=10, mode="gaussian")

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            PopulationSpec(size=-1)

    def test_bad_max_n_rejected(self):
        with pytest.raises(ReproError):
            PopulationSpec(size=10, max_n=1)


class TestDescribe:
    def test_table_lists_every_drawn_class(self):
        signatures = generate_signatures(PopulationSpec(size=100, seed=4))
        text = describe_population(signatures)
        assert "Serial" in text and "Share" in text
        assert str(len(signatures)) in text

    def test_occupancy_sums_to_population(self):
        signatures = generate_signatures(PopulationSpec(size=123, seed=8))
        assert sum(class_occupancy(signatures).values()) == 123
