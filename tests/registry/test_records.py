"""Unit tests for architecture records and the registry lookups."""

import pytest

from repro.core.errors import RegistryError
from repro.registry import (
    ArchitectureFamily,
    all_architectures,
    architecture,
    architecture_names,
    architectures_by_family,
)


class TestLookups:
    def test_case_insensitive_lookup(self):
        assert architecture("morphosys").name == "MorphoSys"
        assert architecture("FPGA").name == "FPGA"
        assert architecture("  DRRA ").name == "DRRA"

    def test_unknown_name_lists_candidates(self):
        with pytest.raises(RegistryError, match="known:"):
            architecture("TRANSPUTER")

    def test_names_are_unique(self):
        names = architecture_names()
        assert len(names) == len(set(names)) == 25


class TestFamilies:
    def test_every_record_has_a_family(self):
        for rec in all_architectures():
            assert isinstance(rec.family, ArchitectureFamily)

    def test_family_partition(self):
        total = sum(
            len(architectures_by_family(f)) for f in ArchitectureFamily
        )
        assert total == 25

    def test_cgra_family_is_the_largest(self):
        cgras = architectures_by_family(ArchitectureFamily.CGRA)
        assert len(cgras) > 10  # the survey is CGRA-centred

    def test_dataflow_family(self):
        names = {r.name for r in architectures_by_family(ArchitectureFamily.DATAFLOW)}
        assert names == {"REDEFINE", "Colt"}

    def test_fpga_family(self):
        names = {r.name for r in architectures_by_family(ArchitectureFamily.FPGA)}
        assert names == {"FPGA"}


class TestRecordDerivation:
    def test_signature_parses_lazily_and_caches(self):
        rec = architecture("GARP")
        assert rec.signature is rec.signature

    def test_classification_consistent_with_signature(self):
        for rec in all_architectures():
            assert rec.classification.signature == rec.signature

    def test_table_row_shape(self):
        for rec in all_architectures():
            row = rec.table_row()
            assert len(row) == 10
            assert row[0] == rec.name

    def test_metadata_completeness(self):
        for rec in all_architectures():
            assert rec.year >= 1990
            assert rec.reference
            assert len(rec.description) > 40  # a real description, not a stub

    def test_str_form(self):
        text = str(architecture("MATRIX"))
        assert "MATRIX" in text and "ISP-XVI" in text and "7" in text

    def test_fpga_uses_fine_granularity(self):
        from repro.core import Granularity

        assert architecture("FPGA").signature.granularity is Granularity.FINE
        assert architecture("MATRIX").signature.granularity is Granularity.COARSE
