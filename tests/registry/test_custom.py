"""Tests for the user-extensible registry."""

import pytest

from repro.core.errors import RegistryError, SignatureError
from repro.registry.custom import CustomRegistry


@pytest.fixture
def registry():
    return CustomRegistry()


def register_mycgra(registry):
    return registry.register(
        "MyCGRA",
        1, 32,
        ip_dp="1-32", ip_im="1-1", dp_dm="32x32", dp_dp="32x32",
        notes="hypothetical design under evaluation",
    )


class TestRegistration:
    def test_register_classifies_immediately(self, registry):
        entry = register_mycgra(registry)
        assert entry.taxonomic_name == "IAP-IV"
        assert entry.flexibility == 3
        assert "MyCGRA" in registry
        assert len(registry) == 1

    def test_published_names_are_protected(self, registry):
        with pytest.raises(RegistryError, match="published"):
            registry.register("MorphoSys", 1, 64, ip_dp="1-64", ip_im="1-1",
                              dp_dm="64-1", dp_dp="64x64")
        with pytest.raises(RegistryError, match="published"):
            registry.register("morphosys", 1, 64, ip_dp="1-64", ip_im="1-1",
                              dp_dm="64-1", dp_dp="64x64")

    def test_duplicate_custom_names_rejected(self, registry):
        register_mycgra(registry)
        with pytest.raises(RegistryError, match="already registered"):
            register_mycgra(registry)

    def test_empty_name_rejected(self, registry):
        with pytest.raises(RegistryError, match="empty"):
            registry.register("  ", 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")

    def test_invalid_structure_rejected(self, registry):
        with pytest.raises(SignatureError):
            registry.register("Broken", 0, 4, ip_dp="1-4", dp_dm="4-4")
        assert len(registry) == 0

    def test_remove(self, registry):
        register_mycgra(registry)
        registry.remove("MyCGRA")
        assert "MyCGRA" not in registry
        with pytest.raises(RegistryError):
            registry.remove("MyCGRA")

    def test_get_unknown(self, registry):
        with pytest.raises(RegistryError):
            registry.get("Ghost")


class TestSurveyComparison:
    def test_published_classmates(self, registry):
        register_mycgra(registry)
        mates = {rec.name for rec in registry.published_classmates("MyCGRA")}
        # The survey's IAP-IV population.
        assert mates == {"Montium", "GARP", "PipeRench", "EGRA", "ELM"}

    def test_nearest_published(self, registry):
        register_mycgra(registry)
        nearest = registry.nearest_published("MyCGRA", top=2)
        assert all(score == pytest.approx(1.0) for _, score in nearest)
        assert {name for name, _ in nearest} <= {
            "Montium", "GARP", "PipeRench", "EGRA", "ELM",
        }

    def test_ni_entries_cannot_compare(self, registry):
        registry.register(
            "WeirdMISD", "n", 1,
            ip_dp="n-1", ip_im="n-n", dp_dm="1-1",
        )
        with pytest.raises(RegistryError, match="Not Implementable"):
            registry.nearest_published("WeirdMISD")

    def test_combined_ranking_interleaves(self, registry):
        registry.register(
            "SuperSpatial", "n", "n",
            ip_ip="nxn", ip_dp="nxn", ip_im="nxn", dp_dm="nxn", dp_dp="nxn",
        )
        ranking = registry.combined_ranking()
        assert len(ranking) == 26
        names = [name for name, _, _ in ranking]
        # flexibility 7 puts the custom entry beside MATRIX, under FPGA.
        assert names[0] == "FPGA"
        assert set(names[1:3]) == {"MATRIX", "SuperSpatial"}
        flags = {name: is_custom for name, _, is_custom in ranking}
        assert flags["SuperSpatial"] is True
        assert flags["MATRIX"] is False


class TestNameValidation:
    """The strict front-loaded name rules: every rejection names field 'name'."""

    def test_non_string_name_rejected(self, registry):
        with pytest.raises(RegistryError, match="field 'name' must be a string"):
            registry.register(42, 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "9lives", "-lead", "has  double", "trail-", "we!rd", "a/+b!"],
    )
    def test_non_identifier_names_rejected(self, registry, bad):
        with pytest.raises(RegistryError, match="field 'name'"):
            registry.register(bad, 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")
        assert len(registry) == 0

    @pytest.mark.parametrize(
        "good",
        ["Xilinx Virtex-4", "TTA-like", "chip_2", "a/b", "C+1", "v1.2"],
    )
    def test_real_machine_name_shapes_accepted(self, registry, good):
        registry.register(good, 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")
        assert good in registry

    def test_duplicates_are_case_insensitive(self, registry):
        register_mycgra(registry)
        with pytest.raises(RegistryError, match="case-insensitive"):
            registry.register(
                "MYCGRA", 1, 32,
                ip_dp="1-32", ip_im="1-1", dp_dm="32x32", dp_dp="32x32",
            )
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(
                "mycgra", 1, 32,
                ip_dp="1-32", ip_im="1-1", dp_dm="32x32", dp_dp="32x32",
            )
        assert len(registry) == 1

    def test_rejection_messages_name_the_field(self, registry):
        for name in (None, "", "!!", "MorphoSys"):
            with pytest.raises(RegistryError, match="field 'name'"):
                registry.register(name, 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1")

    def test_surrounding_whitespace_is_stripped(self, registry):
        entry = registry.register(
            " Padded ", 1, 1, ip_dp="1-1", ip_im="1-1", dp_dm="1-1",
        )
        assert entry.name == "Padded"
        assert "Padded" in registry
