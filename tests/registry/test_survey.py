"""Unit tests for the survey query API."""


from repro.core.naming import MachineType
from repro.registry import (
    errata_report,
    flexibility_ranking,
    group_by_class,
    most_flexible,
    survey_table,
)


class TestSurveyTable:
    def test_order_matches_registry(self):
        from repro.registry import architecture_names

        assert tuple(e.name for e in survey_table()) == architecture_names()

    def test_entry_accessors(self):
        entry = next(e for e in survey_table() if e.name == "DRRA")
        assert entry.taxonomic_name == "ISP-IV"
        assert entry.flexibility == 5
        assert entry.machine_type is MachineType.INSTRUCTION_FLOW

    def test_agreement_flags(self):
        disagreeing = [e.name for e in survey_table() if not e.agrees_with_paper]
        assert disagreeing == ["PACT XPP"]  # the documented erratum


class TestRanking:
    def test_descending(self):
        values = [e.flexibility for e in flexibility_ranking()]
        assert values == sorted(values, reverse=True)

    def test_ties_keep_table_order(self):
        ranked = flexibility_ranking()
        twos = [e.name for e in ranked if e.flexibility == 2]
        from repro.registry import architecture_names

        order = {name: i for i, name in enumerate(architecture_names())}
        assert twos == sorted(twos, key=lambda n: order[n])


class TestGrouping:
    def test_groups_cover_everything(self):
        groups = group_by_class()
        assert sum(len(v) for v in groups.values()) == 25

    def test_iap_ii_is_the_crowd(self):
        groups = group_by_class()
        assert {e.name for e in groups["IAP-II"]} == {
            "IMAGINE", "MorphoSys", "REMARC", "RICA", "PADDI", "Chimaera", "ADRES",
        }

    def test_imp_i_group(self):
        groups = group_by_class()
        assert {e.name for e in groups["IMP-I"]} == {
            "PADDI-2", "Cortex-A9 (Quad)", "Core2Duo",
        }


class TestMostFlexible:
    def test_overall(self):
        assert most_flexible().name == "FPGA"

    def test_within_type(self):
        assert most_flexible(within=MachineType.INSTRUCTION_FLOW).name == "MATRIX"
        assert most_flexible(within=MachineType.DATA_FLOW).flexibility == 3

    def test_within_universal(self):
        assert most_flexible(within=MachineType.UNIVERSAL_FLOW).name == "FPGA"


class TestErrata:
    def test_single_known_erratum(self):
        report = errata_report()
        assert len(report) == 1
        assert "PACT XPP" in report[0]
        assert report[0].startswith("known erratum")
