"""Unit tests for the cProfile / tracemalloc wrappers."""

import tracemalloc

import pytest

from repro.obs.profile import ProfileReport, Profiler, profile_call


def _busy_work():
    return sum(i * i for i in range(2000))


class TestProfiler:
    def test_rejects_nonpositive_top(self):
        with pytest.raises(ValueError, match=">= 1"):
            Profiler("x", top=0)

    def test_report_captures_cpu_stats(self):
        with Profiler("cpu-only", top=7) as prof:
            _busy_work()
        report = prof.report
        assert report is not None
        assert report.label == "cpu-only"
        assert report.top == 7
        assert report.wall_s > 0
        assert report.memory_text is None
        rendered = report.render()
        assert "profile: cpu-only" in rendered
        assert "top 7 functions by cumulative time" in rendered
        assert "ncalls" in rendered

    def test_memory_mode_adds_allocation_sites(self):
        assert not tracemalloc.is_tracing()
        with Profiler("with-mem", memory=True) as prof:
            data = [bytes(1024) for _ in range(64)]
        assert data
        assert not tracemalloc.is_tracing()  # profiler stopped its own session
        report = prof.report
        assert report.memory_text is not None
        assert "allocation sites" in report.render()

    def test_leaves_an_outer_tracemalloc_session_running(self):
        tracemalloc.start()
        try:
            with Profiler("nested", memory=True):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_report_is_none_until_exit(self):
        prof = Profiler("pending")
        assert prof.report is None


class TestProfileReport:
    def test_write_sanitizes_the_label(self, tmp_path):
        report = ProfileReport(
            label="weird label/:x", wall_s=0.1, top=3, stats_text="stats"
        )
        path = report.write(tmp_path)
        assert path.endswith("profile_weird_label__x.txt")
        assert "profile: weird label/:x" in (tmp_path / "profile_weird_label__x.txt").read_text()

    def test_write_creates_the_directory(self, tmp_path):
        target = tmp_path / "artifacts"
        ProfileReport(label="a", wall_s=0.0, top=1, stats_text="s").write(target)
        assert (target / "profile_a.txt").exists()


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(sorted, [3, 1, 2], label="tiny")
        assert result == [1, 2, 3]
        assert report.label == "tiny"

    def test_label_defaults_to_function_name(self):
        _, report = profile_call(_busy_work)
        assert report.label == "_busy_work"

    def test_kwargs_are_forwarded(self):
        result, _ = profile_call(sorted, [1, 2, 3], reverse=True)
        assert result == [3, 2, 1]
