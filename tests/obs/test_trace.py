"""Unit tests for the hierarchical span tracer."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    validate_trace,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


class TestSpan:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Span("", 0.0)

    def test_duration_zero_while_open(self):
        span = Span("open", 1.0)
        assert span.duration_s == 0.0
        span.end_s = 3.5
        assert span.duration_s == 2.5

    def test_attributes_and_events(self):
        span = Span("s", 0.0, {"a": 1})
        span.set_attribute("b", 2)
        span.set_attributes(c=3, d=4)
        event = span.add_event("hit", unit=7)
        assert span.attributes == {"a": 1, "b": 2, "c": 3, "d": 4}
        assert event.name == "hit" and event.attributes == {"unit": 7}
        assert span.events == [event]

    def test_walk_is_depth_first(self):
        root = Span("root", 0.0)
        left, right = Span("left", 0.0), Span("right", 0.0)
        leaf = Span("leaf", 0.0)
        left.children.append(leaf)
        root.children += [left, right]
        assert [s.name for s in root.walk()] == ["root", "left", "leaf", "right"]

    def test_repr_names_the_span(self):
        assert "Span('x'" in repr(Span("x", 0.0))


class TestTracerLifecycle:
    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("anything") is NOOP_SPAN
        assert trace.span("anything") is NOOP_SPAN

    def test_noop_span_swallows_everything(self):
        with NOOP_SPAN as span:
            span.set_attribute("k", 1)
            span.set_attributes(a=2)
            span.add_event("e", b=3)

    def test_nesting_builds_a_tree(self):
        trace.enable()
        with trace.span("outer", jobs=2):
            with trace.span("inner"):
                trace.add_event("tick", n=1)
        roots = trace.tracer().roots
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].attributes == {"jobs": 2}
        (inner,) = roots[0].children
        assert inner.name == "inner"
        assert inner.events[0].name == "tick"
        assert inner.events[0].attributes == {"n": 1}

    def test_exception_marks_the_span_and_propagates(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("bad"):
                raise RuntimeError("boom")
        (root,) = trace.tracer().roots
        assert root.attributes["error"] == "RuntimeError"
        assert root.end_s is not None

    def test_current_span_tracks_the_stack(self):
        trace.enable()
        assert trace.current_span() is None
        with trace.span("outer") as outer:
            assert trace.current_span() is outer
            with trace.span("inner") as inner:
                assert trace.current_span() is inner
            assert trace.current_span() is outer
        assert trace.current_span() is None

    def test_add_event_without_open_span_is_a_noop(self):
        trace.enable()
        trace.add_event("orphan")
        assert trace.tracer().roots == []

    def test_add_event_while_disabled_is_a_noop(self):
        tracer = Tracer()
        tracer.add_event("ignored")
        assert tracer.roots == []

    def test_enable_disable_enabled(self):
        assert not trace.enabled()
        trace.enable()
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()

    def test_reset_clears_roots(self):
        trace.enable()
        with trace.span("s"):
            pass
        assert trace.tracer().roots
        trace.reset()
        assert trace.tracer().roots == []

    def test_each_thread_gets_its_own_stack(self):
        tracer = Tracer()
        tracer.enable()
        seen = []

        def worker(tag):
            with tracer.span(tag):
                seen.append(tracer.current_span().name)

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
        with tracer.span("main-root"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker spans never nested under the main thread's open span.
        assert sorted(r.name for r in tracer.roots) == [
            "main-root", "t0", "t1", "t2", "t3",
        ]
        assert tracer.roots[-1].name == "main-root"  # completion order
        assert sorted(seen) == ["t0", "t1", "t2", "t3"]


class TestExport:
    def test_to_dict_is_versioned_and_valid(self):
        trace.enable()
        with trace.span("root", points=3):
            with trace.span("child"):
                trace.add_event("mark")
        payload = trace.tracer().to_dict()
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert payload["generated_by"] == "repro.obs"
        validate_trace(payload)
        root = payload["spans"][0]
        assert root["name"] == "root"
        assert root["attributes"] == {"points": 3}
        assert root["children"][0]["events"][0]["name"] == "mark"
        assert root["duration_s"] >= 0

    def test_write_json_creates_parent_directories(self, tmp_path):
        trace.enable()
        with trace.span("persisted"):
            pass
        target = tmp_path / "nested" / "dir" / "trace.json"
        written = trace.tracer().write_json(target)
        assert written == str(target)
        payload = json.loads(target.read_text())
        validate_trace(payload)
        assert payload["spans"][0]["name"] == "persisted"

    def test_render_text_empty(self):
        assert trace.tracer().render_text() == "(no spans recorded)"

    def test_render_text_shows_tree_attrs_and_events(self):
        trace.enable()
        with trace.span("outer", jobs=1):
            with trace.span("inner"):
                trace.add_event("tick")
        text = trace.tracer().render_text()
        lines = text.splitlines()
        assert lines[0].startswith("outer") and "[jobs=1]" in lines[0]
        assert lines[1].startswith("  inner")
        assert "@" in lines[2] and "tick" in lines[2]


class TestValidateTrace:
    def _valid(self):
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "generated_by": "repro.obs",
            "spans": [
                {
                    "name": "s",
                    "start_s": 0.0,
                    "duration_s": 0.1,
                    "attributes": {},
                    "events": [],
                    "children": [],
                }
            ],
        }

    def test_accepts_a_valid_payload(self):
        validate_trace(self._valid())

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_trace([1, 2])

    def test_rejects_wrong_schema_version(self):
        payload = self._valid()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="unsupported trace schema"):
            validate_trace(payload)

    def test_rejects_missing_spans_list(self):
        payload = self._valid()
        payload["spans"] = "nope"
        with pytest.raises(ValueError, match="'spans' list"):
            validate_trace(payload)

    def test_rejects_non_dict_span(self):
        payload = self._valid()
        payload["spans"] = [42]
        with pytest.raises(ValueError, match="span must be a dict"):
            validate_trace(payload)

    def test_rejects_empty_span_name(self):
        payload = self._valid()
        payload["spans"][0]["name"] = ""
        with pytest.raises(ValueError, match="non-empty string"):
            validate_trace(payload)

    def test_rejects_negative_duration(self):
        payload = self._valid()
        payload["spans"][0]["duration_s"] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            validate_trace(payload)

    def test_rejects_bad_attributes(self):
        payload = self._valid()
        payload["spans"][0]["attributes"] = []
        with pytest.raises(ValueError, match="attributes"):
            validate_trace(payload)

    def test_rejects_bad_events(self):
        payload = self._valid()
        payload["spans"][0]["events"] = {}
        with pytest.raises(ValueError, match="events must be a list"):
            validate_trace(payload)
        payload["spans"][0]["events"] = [{"no_name": True}]
        with pytest.raises(ValueError, match="malformed event"):
            validate_trace(payload)

    def test_rejects_bad_children_recursively(self):
        payload = self._valid()
        payload["spans"][0]["children"] = "nope"
        with pytest.raises(ValueError, match="children must be a list"):
            validate_trace(payload)
        payload["spans"][0]["children"] = [{"name": "", "duration_s": 0.0}]
        with pytest.raises(ValueError, match="spans.s"):
            validate_trace(payload)
