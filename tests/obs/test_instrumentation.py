"""Integration: the instrumentation threaded through perf, machines, faults.

These tests turn the global tracer on around real library calls and
assert that the spans, events and metrics the observability guide
documents actually appear — the contract `docs/observability.md` states.
"""

import pytest

from repro.faults import FaultEvent, FaultPlan, FaultPolicy
from repro.machine.array_processor import ArrayProcessor, ArraySubtype
from repro.machine.base import machine_label, traced_run
from repro.machine.kernels import simd_vector_add
from repro.obs import REGISTRY, trace, validate_trace
from repro.perf import ModelCache, sweep
from repro.models import NODE_65NM
from repro.registry import architecture


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.reset()
    trace.disable()
    yield
    trace.reset()
    trace.disable()


def _square(value):
    return value * value


def _boom(value):
    raise RuntimeError(f"point {value} failed")


def _find(root, name):
    return [s for s in root.walk() if s.name == name]


class TestSweepInstrumentation:
    def test_serial_sweep_records_per_point_spans(self):
        trace.enable()
        result = sweep(_square, [1, 2, 3])
        trace.disable()
        assert list(result) == [1, 4, 9]
        (root,) = trace.tracer().roots
        assert root.name == "perf.sweep"
        assert root.attributes["points"] == 3
        assert root.attributes["executor"] == "serial"
        assert root.attributes["wall_s"] >= 0
        points = _find(root, "perf.point")
        assert [p.attributes["index"] for p in points] == [0, 1, 2]

    def test_pooled_sweep_records_chunk_events_with_queue_wait(self):
        trace.enable()
        result = sweep(_square, list(range(8)), executor="thread", jobs=2, chunksize=2)
        trace.disable()
        assert list(result) == [v * v for v in range(8)]
        (root,) = trace.tracer().roots
        chunk_events = [e for e in root.events if e.name == "chunk"]
        assert len(chunk_events) == 4
        assert sorted(e.attributes["index"] for e in chunk_events) == [0, 1, 2, 3]
        for event in chunk_events:
            assert event.attributes["queue_wait_s"] >= 0

    def test_sweep_metrics_accumulate_without_tracing(self):
        runs_before = REGISTRY.get("sweep.runs").value
        points_before = REGISTRY.get("sweep.points").value
        wall_before = REGISTRY.get("sweep.wall_s").count
        sweep(_square, [1, 2, 3, 4])
        assert REGISTRY.get("sweep.runs").value == runs_before + 1
        assert REGISTRY.get("sweep.points").value == points_before + 4
        assert REGISTRY.get("sweep.wall_s").count == wall_before + 1

    def test_failing_sweep_marks_the_span(self):
        trace.enable()
        with pytest.raises(RuntimeError, match="point 1 failed"):
            sweep(_boom, [1, 2])
        trace.disable()
        (root,) = trace.tracer().roots
        assert root.name == "perf.sweep"
        assert root.attributes["error"] == "RuntimeError"

    def test_disabled_tracing_leaves_no_spans(self):
        sweep(_square, [1, 2])
        assert trace.tracer().roots == []


class TestModelCacheInstrumentation:
    def test_hit_and_miss_counters_follow_the_cache(self):
        cache = ModelCache(maxsize=4)
        signature = architecture("MorphoSys").signature
        hits_before = REGISTRY.get("model_cache.hits").value
        misses_before = REGISTRY.get("model_cache.misses").value
        cache.evaluate(signature, n=8, technology=NODE_65NM)
        cache.evaluate(signature, n=8, technology=NODE_65NM)
        assert REGISTRY.get("model_cache.misses").value == misses_before + 1
        assert REGISTRY.get("model_cache.hits").value == hits_before + 1

    def test_eviction_counter_follows_the_cache(self):
        cache = ModelCache(maxsize=1)
        first = architecture("MorphoSys").signature
        second = architecture("DRRA").signature
        evictions_before = REGISTRY.get("model_cache.evictions").value
        cache.evaluate(first, n=8, technology=NODE_65NM)
        cache.evaluate(second, n=8, technology=NODE_65NM)
        assert REGISTRY.get("model_cache.evictions").value == evictions_before + 1


class TestMachineInstrumentation:
    def _machine(self, lanes=4, per_lane=4):
        machine = ArrayProcessor(lanes, ArraySubtype.IAP_IV)
        machine.scatter(0, list(range(lanes * per_lane)))
        machine.scatter(64, list(range(lanes * per_lane)))
        return machine

    def test_run_span_carries_label_cycles_and_operations(self):
        machine = self._machine()
        trace.enable()
        result = machine.run(simd_vector_add(4))
        trace.disable()
        (root,) = trace.tracer().roots
        assert root.name == "machine.run"
        assert root.attributes["machine"] == "IAP-IV"
        assert root.attributes["cycles"] == result.cycles
        assert root.attributes["operations"] == result.operations

    def test_counters_accumulate_even_without_tracing(self):
        runs_before = REGISTRY.get("machine.runs").value
        cycles_before = REGISTRY.get("machine.cycles").value
        result = self._machine().run(simd_vector_add(4))
        assert REGISTRY.get("machine.runs").value == runs_before + 1
        assert REGISTRY.get("machine.cycles").value == cycles_before + result.cycles

    def test_machine_label_falls_back_to_class_name(self):
        class Bare:
            pass

        assert machine_label(Bare()) == "Bare"

    def test_traced_run_passes_through_non_execution_results(self):
        class Custom:
            label = "custom"

            @traced_run("machine.run_custom")
            def run(self):
                return {"ok": True}

        trace.enable()
        assert Custom().run() == {"ok": True}
        trace.disable()
        (root,) = trace.tracer().roots
        assert root.name == "machine.run_custom"
        assert root.attributes["machine"] == "custom"
        assert "cycles" not in root.attributes


class TestFaultInstrumentation:
    def test_policy_decisions_surface_as_span_events(self):
        machine = ArrayProcessor(4, ArraySubtype.IAP_IV)
        machine.scatter(0, list(range(16)))
        machine.scatter(64, list(range(16)))
        plan = FaultPlan((FaultEvent(cycle=3, target=1),))
        trace.enable()
        machine.run(simd_vector_add(4), faults=plan, policy=FaultPolicy.remap())
        trace.disable()
        (root,) = trace.tracer().roots
        decisions = [e for e in root.events if e.name == "fault.policy"]
        assert decisions, "expected at least one fault.policy event"
        remap = [e for e in decisions if e.attributes["action"] == "remap"]
        assert remap and remap[0].attributes["machine"] == "IAP-IV"
        assert remap[0].attributes["cycle"] == 3

    def test_abort_decision_is_recorded_before_the_raise(self):
        from repro.core.errors import FaultError

        machine = ArrayProcessor(4, ArraySubtype.IAP_IV)
        machine.scatter(0, list(range(16)))
        machine.scatter(64, list(range(16)))
        plan = FaultPlan((FaultEvent(cycle=2, target=0),))
        trace.enable()
        with pytest.raises(FaultError):
            machine.run(simd_vector_add(4), faults=plan)  # fail-fast default
        trace.disable()
        (root,) = trace.tracer().roots
        actions = [e.attributes["action"] for e in root.events if e.name == "fault.policy"]
        assert "abort" in actions

    def test_no_events_while_disabled(self):
        machine = ArrayProcessor(4, ArraySubtype.IAP_IV)
        machine.scatter(0, list(range(16)))
        machine.scatter(64, list(range(16)))
        plan = FaultPlan((FaultEvent(cycle=3, target=1),))
        machine.run(simd_vector_add(4), faults=plan, policy=FaultPolicy.remap())
        assert trace.tracer().roots == []


class TestEndToEnd:
    def test_traced_analysis_exports_a_valid_payload(self):
        from repro.analysis.resilience import resilience_sweep

        trace.enable()
        resilience_sweep((0.05,), n=4)
        trace.disable()
        payload = trace.tracer().to_dict()
        validate_trace(payload)
        (root,) = payload["spans"]
        assert root["name"] == "analysis.resilience_sweep"
        nested = [child["name"] for child in root["children"]]
        assert "perf.sweep" in nested
