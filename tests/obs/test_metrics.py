"""Unit tests for the process-local metrics registry."""

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs import metrics as metrics_module


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c", help="things")
        counter.inc(2)
        assert counter.snapshot() == {"type": "counter", "help": "things", "value": 2}


class TestGauge:
    def test_set_and_shift(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7

    def test_snapshot(self):
        gauge = Gauge("g", help="depth")
        gauge.set(1.5)
        assert gauge.snapshot() == {"type": "gauge", "help": "depth", "value": 1.5}


class TestHistogram:
    def test_requires_boundaries(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", ())

    def test_requires_strictly_increasing_boundaries(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (2.0, 1.0))

    def test_bucketing_including_exact_boundaries(self):
        hist = Histogram("h", (1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            hist.observe(value)
        # <= 1.0 | (1.0, 10.0] | > 10.0
        assert hist.bucket_counts == (2, 2, 1)
        assert hist.count == 5
        assert hist.total == pytest.approx(27.5)
        assert hist.mean == pytest.approx(5.5)

    def test_mean_is_zero_before_observations(self):
        assert Histogram("h", (1.0,)).mean == 0.0

    def test_snapshot(self):
        hist = Histogram("h", (1.0,), help="waits")
        hist.observe(0.5)
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert snap["boundaries"] == [1.0]
        assert snap["buckets"] == [1, 0]
        assert snap["count"] == 1

    def test_default_duration_buckets_are_increasing(self):
        assert list(DURATION_BUCKETS_S) == sorted(DURATION_BUCKETS_S)
        assert len(set(DURATION_BUCKETS_S)) == len(DURATION_BUCKETS_S)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="not histogram"):
            reg.histogram("x")
        reg.histogram("h")
        with pytest.raises(ValueError, match="not counter"):
            reg.counter("h")

    def test_histogram_boundary_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with boundaries"):
            reg.histogram("h", boundaries=(1.0, 3.0))
        # Same boundaries (even as ints) are fine.
        assert reg.histogram("h", boundaries=(1, 2)).boundaries == (1.0, 2.0)

    def test_container_protocol(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert "a" in reg and "missing" not in reg
        assert list(reg) == ["a", "b"]  # sorted
        assert len(reg) == 2
        assert reg.get("a").name == "a"
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.histogram("a", boundaries=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "z"]
        assert snap["z"]["value"] == 1

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_render_aligns_and_annotates(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="cache hits").inc(3)
        reg.gauge("load").set(0.25)
        reg.histogram("wait", boundaries=(1.0,)).observe(2.0)
        text = reg.render()
        lines = text.splitlines()
        assert any("hits" in line and "# cache hits" in line for line in lines)
        assert any("load" in line and "value=0.25" in line for line in lines)
        assert any("wait" in line and "buckets=[0, 1]" in line for line in lines)

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.reset()
        assert len(reg) == 0

    def test_global_registry_accessor(self):
        assert registry() is metrics_module.REGISTRY


class TestPrometheusRendering:
    """The shared text-exposition formatter behind /v1/metrics and the CLI."""

    @staticmethod
    def _populated():
        from repro.obs.metrics import render_prometheus

        reg = MetricsRegistry()
        reg.counter("serve.requests", help="HTTP requests received").inc(7)
        reg.gauge(
            "serve.breaker_state", help="breaker state; escaped \\ and\nnewline"
        ).set(2)
        hist = reg.histogram(
            "serve.request_s", boundaries=(0.1, 1.0), help="latency (s)"
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        return reg, render_prometheus

    def test_matches_the_golden_file(self):
        from pathlib import Path

        reg, render_prometheus = self._populated()
        golden = Path(__file__).parent.parent / "golden" / "prometheus.txt"
        assert render_prometheus(reg) == golden.read_text()

    def test_registry_method_delegates_to_the_module_formatter(self):
        reg, render_prometheus = self._populated()
        assert reg.render_prometheus() == render_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        from repro.obs.metrics import render_prometheus

        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_names_gain_the_total_suffix(self):
        from repro.obs.metrics import render_prometheus

        reg = MetricsRegistry()
        reg.counter("cache.hits").inc()
        text = render_prometheus(reg)
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_hits " not in text

    def test_histogram_buckets_are_cumulative(self):
        reg, render_prometheus = self._populated()
        text = render_prometheus(reg)
        lines = [line for line in text.splitlines() if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert lines[-1].endswith('{le="+Inf"} 3')

    def test_cli_and_serve_share_the_formatter(self):
        # The /v1/metrics endpoint and `repro-taxonomy metrics
        # --prometheus` both call repro.obs.render_prometheus on the
        # global registry — one formatter, byte-identical exposition.
        import repro.obs as obs
        from repro.obs.metrics import render_prometheus as module_formatter

        assert obs.render_prometheus is module_formatter
