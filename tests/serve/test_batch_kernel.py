"""Byte-identity of batch ``/v1/classify`` with the kernel on vs off.

The vectorized batch path (``ServerConfig.batch_kernel``) must be
unobservable from outside: identical response bytes, identical error
isolation, identical response-cache accounting. These tests run the
same batches through both configurations and compare the encoded
bodies, the way a client on the wire would see them.
"""

import json

import pytest

from repro.serve.server import ServerConfig, ServiceApp
from repro.serve.validation import stable_json

GOOD = {
    "ips": "1", "dps": "n", "ip-dp": "1-n", "ip-im": "1-1",
    "dp-dm": "nxn", "dp-dp": "nxn",
}
CONCRETE = {
    "ips": "1", "dps": "64", "ip-dp": "1-64", "ip-im": "1-1",
    "dp-dm": "64x64", "dp-dp": "64x64",
}
DATAFLOW = {"ips": "0", "dps": "1", "dp-dm": "1-1"}
BAD = {"nonsense": "x"}

MIXED_BATCH = [GOOD, CONCRETE, BAD, DATAFLOW, GOOD, {"ips": "9", "dps": "q"}]


def batch_body(items):
    """Encode a batch request body."""
    return json.dumps({"items": items}).encode()


def both_apps(**config):
    """A (kernel-on, kernel-off) ServiceApp pair with shared settings."""
    on = ServiceApp(ServerConfig(port=0, batch_kernel=True, **config))
    off = ServiceApp(ServerConfig(port=0, batch_kernel=False, **config))
    return on, off


def dispatch_bytes(app, items):
    response = app.dispatch("POST", "/v1/classify", batch_body(items))
    return response.status, stable_json(response.payload)


@pytest.mark.parametrize("cache_size", [1024, 0])
def test_mixed_batch_bytes_identical(cache_size):
    on, off = both_apps(cache_size=cache_size)
    try:
        assert dispatch_bytes(on, MIXED_BATCH) == dispatch_bytes(off, MIXED_BATCH)
    finally:
        on.shutdown()
        off.shutdown()


def test_error_isolation_matches():
    on, off = both_apps()
    try:
        status_on, body_on = dispatch_bytes(on, [BAD, GOOD, BAD])
        status_off, body_off = dispatch_bytes(off, [BAD, GOOD, BAD])
        assert (status_on, body_on) == (status_off, body_off)
        payload = json.loads(body_on)
        assert payload["errors"] == 2
        assert payload["results"][1]["class"]["short_name"] == "IAP-IV"
    finally:
        on.shutdown()
        off.shutdown()


def test_cache_accounting_matches_scalar_path():
    on, off = both_apps()
    try:
        items = [GOOD, GOOD, CONCRETE]
        assert dispatch_bytes(on, items) == dispatch_bytes(off, items)
        assert on.response_cache.stats() == off.response_cache.stats()
    finally:
        on.shutdown()
        off.shutdown()


def test_repeat_batch_served_from_cache():
    on, off = both_apps()
    try:
        first_on = dispatch_bytes(on, [GOOD, CONCRETE])
        second_on = dispatch_bytes(on, [GOOD, CONCRETE])
        dispatch_bytes(off, [GOOD, CONCRETE])
        second_off = dispatch_bytes(off, [GOOD, CONCRETE])
        assert first_on == second_on == second_off
        assert on.response_cache.stats() == off.response_cache.stats()
    finally:
        on.shutdown()
        off.shutdown()


def test_batch_matches_single_requests_with_kernel():
    on, _ = both_apps(cache_size=0)
    try:
        query = "&".join(f"{k}={v}" for k, v in GOOD.items())
        single = on.dispatch("GET", "/v1/classify?" + query)
        batch = on.dispatch("POST", "/v1/classify", batch_body([GOOD]))
        assert stable_json(batch.payload["results"][0]) == stable_json(single.payload)
    finally:
        on.shutdown()


def test_costs_batches_are_untouched_by_the_flag():
    on, off = both_apps()
    try:
        items = [{"class": "IAP-IV", "n": n} for n in (4, 16)]
        response_on = on.dispatch("POST", "/v1/costs", batch_body(items))
        response_off = off.dispatch("POST", "/v1/costs", batch_body(items))
        assert stable_json(response_on.payload) == stable_json(response_off.payload)
    finally:
        on.shutdown()
        off.shutdown()
