"""Unit tests for the deterministic circuit breaker."""

import pytest

from repro.serve.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.serve.errors import BreakerOpenError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def failing():
    raise RuntimeError("dependency down")


def make(policy=None, clock=None):
    return CircuitBreaker(
        policy or BreakerPolicy(failure_threshold=3, recovery_s=10.0, jitter=0.0),
        clock=clock or FakeClock(),
    )


class TestPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        policy = BreakerPolicy(seed=42)
        assert policy.recovery_schedule(5) == BreakerPolicy(seed=42).recovery_schedule(5)
        assert policy.recovery_schedule(5) != BreakerPolicy(seed=43).recovery_schedule(5)

    def test_delays_grow_geometrically_within_jitter(self):
        policy = BreakerPolicy(recovery_s=1.0, factor=2.0, jitter=0.25, seed=7)
        for k, delay in enumerate(policy.recovery_schedule(5), start=1):
            base = 1.0 * 2.0 ** (k - 1)
            assert base <= delay <= base * 1.25

    def test_delays_cap_at_max_recovery(self):
        policy = BreakerPolicy(recovery_s=1.0, factor=10.0, max_recovery_s=5.0, jitter=0.0)
        assert policy.recovery_delay_s(4) == 5.0

    def test_open_count_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            BreakerPolicy().recovery_delay_s(0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"failure_threshold": 0}, "failure_threshold"),
            ({"recovery_s": 0.0}, "recovery_s"),
            ({"factor": 0.5}, "factor"),
            ({"jitter": 1.5}, "jitter"),
            ({"recovery_s": 10.0, "max_recovery_s": 5.0}, "max_recovery_s"),
            ({"probe_limit": 0}, "probe_limit"),
            ({"success_threshold": 0}, "success_threshold"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_closed_passes_calls_through(self):
        breaker = make()
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_success_resets_the_failure_streak(self):
        breaker = make()
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        breaker.call(lambda: "ok")  # streak broken
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        assert breaker.state is BreakerState.CLOSED  # never reached 3 in a row

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = make()
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(BreakerOpenError, match="open") as info:
            breaker.call(lambda: "never runs")
        assert info.value.retry_after_s == pytest.approx(10.0)

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock=clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.call(lambda: "probe ok") == "probe ok"
        assert breaker.state is BreakerState.CLOSED
        snap = breaker.snapshot()
        assert snap["open_count"] == 0 and snap["consecutive_failures"] == 0

    def test_half_open_probe_failure_reopens_longer(self):
        clock = FakeClock()
        breaker = make(clock=clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        clock.advance(10.0)
        with pytest.raises(RuntimeError):
            breaker.call(failing)  # the probe fails
        assert breaker.state is BreakerState.OPEN
        assert breaker.snapshot()["open_count"] == 2
        clock.advance(10.0)  # first interval is not enough the second time
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)  # 20s = recovery_s * factor**1 with zero jitter
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_limits_concurrent_probes(self):
        clock = FakeClock()
        breaker = make(clock=clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        clock.advance(10.0)
        admission = breaker._admit()  # holds the only probe slot
        with pytest.raises(BreakerOpenError, match="probing"):
            breaker.call(lambda: "rejected")
        with admission:
            pass  # probe completes successfully
        assert breaker.state is BreakerState.CLOSED

    def test_snapshot_shape_while_open(self):
        breaker = make()
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(failing)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["name"] == "sweep"
        assert snap["retry_after_s"] == pytest.approx(10.0)

    def test_identical_policies_trace_identical_timelines(self):
        def timeline(seed):
            clock = FakeClock()
            policy = BreakerPolicy(failure_threshold=1, recovery_s=1.0, seed=seed)
            breaker = CircuitBreaker(policy, clock=clock)
            states = []
            for _ in range(4):
                try:
                    breaker.call(failing)
                except (RuntimeError, BreakerOpenError):
                    pass
                states.append(breaker.state.value)
                clock.advance(policy.recovery_delay_s(1) / 2)
            return tuple(states)

        assert timeline(5) == timeline(5)
