"""Pre-fork front end: a real multi-process fleet on one shared port."""

import json
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.prefork import supports_prefork

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CLASSIFY = "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn"

pytestmark = pytest.mark.skipif(
    not supports_prefork(), reason="pre-fork needs os.fork and SO_REUSEPORT"
)


def boot(*extra_args):
    """Start ``python -m repro.serve`` and return (proc, base_url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0", "--processes", "2", "--workers", "2",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on "), line
    return proc, line.removeprefix("listening on ")


def stop(proc):
    """SIGTERM the fleet parent; returns (exit_status, stderr_text)."""
    proc.send_signal(signal.SIGTERM)
    status = proc.wait(timeout=30.0)
    return status, proc.stderr.read()


def get_json(url):
    """Fetch ``url`` and parse the JSON body (errors included)."""
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestPreforkFleet:
    def test_fleet_serves_and_reports_two_workers(self):
        proc, url = boot()
        try:
            # Enough traffic that SO_REUSEPORT lands on both workers.
            for _ in range(8):
                status, payload = get_json(url + CLASSIFY)
                assert status == 200
                assert payload["class"]["short_name"] == "IAP-IV"
            status, ready = get_json(url + "/v1/readyz")
            assert status == 200
            assert ready["fleet"]["workers"] == 2
            pids = {member["pid"] for member in ready["fleet"]["members"]}
            assert len(pids) == 2
            assert all("cache" in member for member in ready["fleet"]["members"])
        finally:
            status, stderr = stop(proc)
        assert status == 0
        assert "drained cleanly" in stderr

    def test_metrics_aggregate_across_the_fleet(self):
        proc, url = boot()
        try:
            total = 40
            for _ in range(total):
                assert get_json(url + CLASSIFY)[0] == 200
            with urllib.request.urlopen(url + "/v1/metrics", timeout=10.0) as response:
                text = response.read().decode()
            for line in text.splitlines():
                if line.startswith("repro_serve_requests_total "):
                    fleet_requests = float(line.split()[1])
                    break
            else:  # pragma: no cover - assertion path
                raise AssertionError("repro_serve_requests_total missing")
            # One worker alone cannot have seen all requests unless the
            # exposition merged its sibling's counters (the scrape and
            # the traffic split across two processes).
            assert fleet_requests >= total
        finally:
            stop(proc)

    def test_batch_posts_work_against_the_fleet(self):
        proc, url = boot()
        try:
            body = json.dumps(
                {"items": [{"class": "IAP-IV", "n": n} for n in (4, 16)]}
            ).encode()
            request = urllib.request.Request(
                url + "/v1/costs", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                payload = json.loads(response.read())
            assert payload["count"] == 2
            assert payload["errors"] == 0
        finally:
            stop(proc)

    def test_sigterm_under_load_drains_cleanly(self):
        proc, url = boot()
        stop_flag = threading.Event()
        statuses = []

        def hammer():
            while not stop_flag.is_set():
                try:
                    with urllib.request.urlopen(url + CLASSIFY, timeout=10.0) as r:
                        statuses.append(r.status)
                except urllib.error.HTTPError as error:
                    statuses.append(error.code)
                except (urllib.error.URLError, ConnectionError, socket.timeout):
                    return  # listener went away mid-drain: expected

        threads = [threading.Thread(target=hammer, daemon=True) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                if len(statuses) >= 20:
                    break
                threading.Event().wait(0.05)
            status, stderr = stop(proc)
        finally:
            stop_flag.set()
            for thread in threads:
                thread.join(10.0)
        assert status == 0
        assert "drained cleanly" in stderr
        assert statuses and set(statuses) <= {200, 503}
