"""Crash chaos for the job subsystem: real processes, real SIGKILLs.

Two headline claims from the durability contract get end-to-end proof:

* SIGKILLing the whole *server* mid-job and restarting onto the same
  ``--jobs-dir`` resumes the orphaned job from its sweep checkpoint and
  serves a result byte-identical to an uninterrupted run; resubmitting
  the victim's idempotency key returns the original job id untouched.
* SIGKILLing one *pre-fork worker* mid-job costs at most a resume: the
  supervisor respawns the slot and the job still completes.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.prefork import supports_prefork

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

TERMINAL = ("succeeded", "failed", "cancelled", "expired")

#: A job slow enough to SIGKILL things mid-flight (~20 throttled chunks)
#: but fast enough for CI; throttle shapes scheduling, never values.
SLOW_JOB = {"kind": "population", "size": 600, "chunk": 30, "throttle": 0.05}


def boot(jobs_dir, *extra_args):
    """Start ``python -m repro.serve --jobs-dir ...``; returns (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve", "--port", "0",
            "--jobs-dir", str(jobs_dir), "--job-poll", "0.05",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on "), line
    return proc, line.removeprefix("listening on ")


def stop(proc):
    """SIGTERM a leftover server, escalating to SIGKILL."""
    if proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=15.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def request_json(url, *, method="GET", payload=None):
    """One JSON round-trip; returns (status, decoded body)."""
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=15.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def result_bytes(url, job_id):
    """The raw result body — raw so byte-identity is provable."""
    with urllib.request.urlopen(
        f"{url}/v1/jobs/{job_id}/result", timeout=15.0
    ) as response:
        return response.read()


def poll_until(url, job_id, states, timeout_s=60.0):
    """Poll the job until its state lands in ``states``; returns the state."""
    deadline = time.monotonic() + timeout_s
    state = None
    while time.monotonic() < deadline:
        status, payload = request_json(f"{url}/v1/jobs/{job_id}")
        if status == 200:
            state = payload["job"]["state"]
            if state in states:
                return state
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} stuck in {state!r}, wanted {states}")


class TestServerLoss:
    def test_sigkill_mid_job_resumes_byte_identical(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        server, url = boot(jobs_dir)
        restarted = None
        try:
            # The baseline: the same job spec, run to completion
            # with no interference.
            _, submitted = request_json(
                f"{url}/v1/jobs", method="POST",
                payload={**SLOW_JOB, "idempotency-key": "baseline"},
            )
            baseline_id = submitted["job"]["id"]
            assert poll_until(url, baseline_id, TERMINAL) == "succeeded"
            baseline = result_bytes(url, baseline_id)

            status, submitted = request_json(
                f"{url}/v1/jobs", method="POST",
                payload={**SLOW_JOB, "idempotency-key": "victim"},
            )
            assert status == 202
            victim_id = submitted["job"]["id"]
            poll_until(url, victim_id, ("running",))
            time.sleep(0.3)  # let some chunks journal, then murder the server
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=15.0)

            restarted, url = boot(jobs_dir)
            assert poll_until(url, victim_id, TERMINAL) == "succeeded"
            assert result_bytes(url, victim_id) == baseline

            # The restarted server still honours the idempotency key —
            # same job id, deduplicated, nothing re-run.
            status, retried = request_json(
                f"{url}/v1/jobs", method="POST",
                payload={**SLOW_JOB, "idempotency-key": "victim"},
            )
            assert status == 200
            assert retried["deduplicated"] is True
            assert retried["job"]["id"] == victim_id
        finally:
            stop(server)
            if restarted is not None:
                stop(restarted)

    def test_journal_survives_on_disk_across_the_kill(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        server, url = boot(jobs_dir)
        try:
            _, submitted = request_json(
                f"{url}/v1/jobs", method="POST", payload=SLOW_JOB
            )
            job_id = submitted["job"]["id"]
            poll_until(url, job_id, ("running",))
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=15.0)
            events = (jobs_dir / "jobs" / job_id / "events.jsonl").read_text()
            names = [json.loads(line)["event"] for line in events.splitlines()[1:]]
            assert names[0] == "submitted"
            assert "started" in names
        finally:
            stop(server)


@pytest.mark.skipif(
    not supports_prefork(), reason="pre-fork needs os.fork and SO_REUSEPORT"
)
class TestWorkerLoss:
    def test_job_survives_a_worker_sigkill(self, tmp_path):
        server, url = boot(
            tmp_path / "jobs", "--processes", "2", "--workers", "2"
        )
        try:
            _, submitted = request_json(
                f"{url}/v1/jobs", method="POST", payload=SLOW_JOB
            )
            job_id = submitted["job"]["id"]
            poll_until(url, job_id, ("running",))

            _, ready = request_json(f"{url}/v1/readyz")
            pids = [m["pid"] for m in ready["fleet"]["members"]]
            assert pids
            os.kill(pids[0], signal.SIGKILL)

            # The supervisor must respawn the slot...
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    _, ready = request_json(f"{url}/v1/readyz")
                except OSError:
                    time.sleep(0.1)
                    continue
                fleet = ready.get("fleet", {})
                if (
                    fleet.get("workers") == 2
                    and fleet.get("respawns", {}).get("respawns", 0) >= 1
                ):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("killed worker was never respawned")

            # ...and the job must still complete with a readable result.
            assert poll_until(url, job_id, TERMINAL) == "succeeded"
            payload = json.loads(result_bytes(url, job_id))
            assert payload["total"] == SLOW_JOB["size"]
        finally:
            stop(server)
