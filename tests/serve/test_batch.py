"""Batch ``{"items": [...]}`` bodies: parity, validation, deadlines."""

import json

import pytest

from repro.serve.router import Response
from repro.serve.server import ServerConfig, ServiceApp
from repro.serve.validation import MAX_BATCH_ITEMS, stable_json

SIGNATURE = {
    "ips": "1", "dps": "n", "ip-dp": "1-n", "ip-im": "1-1",
    "dp-dm": "nxn", "dp-dp": "nxn",
}


def batch_body(items):
    """Encode a batch request body."""
    return json.dumps({"items": items}).encode()


@pytest.fixture()
def app():
    """A default in-process ServiceApp, shut down after the test."""
    instance = ServiceApp(ServerConfig(port=0))
    yield instance
    instance.shutdown()


class TestBatchResults:
    def test_classify_batch_matches_single_requests(self, app):
        single = app.dispatch(
            "GET", "/v1/classify?" + "&".join(f"{k}={v}" for k, v in SIGNATURE.items())
        )
        batch = app.dispatch("POST", "/v1/classify", batch_body([SIGNATURE]))
        assert batch.status == 200
        assert batch.payload["count"] == 1
        assert batch.payload["errors"] == 0
        assert stable_json(batch.payload["results"][0]) == stable_json(single.payload)

    def test_costs_batch_matches_single_requests(self, app):
        items = [{"class": "IAP-IV", "n": n} for n in (4, 16, 64)]
        batch = app.dispatch("POST", "/v1/costs", batch_body(items))
        assert batch.status == 200
        assert batch.payload["errors"] == 0
        for item, result in zip(items, batch.payload["results"]):
            single = app.dispatch("GET", f"/v1/costs?class=IAP-IV&n={item['n']}")
            assert stable_json(result) == stable_json(single.payload)

    def test_item_failures_are_isolated(self, app):
        items = [SIGNATURE, {"nonsense": "x"}, SIGNATURE]
        batch = app.dispatch("POST", "/v1/classify", batch_body(items))
        assert batch.status == 200
        assert batch.payload["count"] == 3
        assert batch.payload["errors"] == 1
        good, bad, good2 = batch.payload["results"]
        assert good["class"]["short_name"] == "IAP-IV"
        assert bad["error"]["status"] == 400
        assert "nonsense" in bad["error"]["message"]
        assert good2 == good

    def test_batch_items_feed_the_response_cache(self, app):
        app.dispatch("POST", "/v1/classify", batch_body([SIGNATURE, SIGNATURE]))
        stats = app.response_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1


class TestBatchValidation:
    def test_batch_requires_post(self, app):
        response = app.dispatch("GET", "/v1/classify", batch_body([SIGNATURE]))
        assert response.status == 400
        assert "requires POST" in response.payload["error"]["message"]

    def test_batch_only_on_pure_endpoints(self, app):
        response = app.dispatch("POST", "/v1/survey", batch_body([SIGNATURE]))
        assert response.status == 400
        assert "/v1/classify and /v1/costs" in response.payload["error"]["message"]

    def test_items_must_be_a_list(self, app):
        response = app.dispatch("POST", "/v1/classify", b'{"items": "nope"}')
        assert response.status == 400
        assert "JSON array" in response.payload["error"]["message"]

    def test_items_must_be_non_empty(self, app):
        response = app.dispatch("POST", "/v1/classify", b'{"items": []}')
        assert response.status == 400
        assert "at least one" in response.payload["error"]["message"]

    def test_items_over_the_limit_are_rejected(self, app):
        response = app.dispatch(
            "POST", "/v1/classify", batch_body([SIGNATURE] * (MAX_BATCH_ITEMS + 1))
        )
        assert response.status == 400
        assert str(MAX_BATCH_ITEMS) in response.payload["error"]["message"]

    def test_items_must_be_objects(self, app):
        response = app.dispatch("POST", "/v1/classify", b'{"items": [1]}')
        assert response.status == 400
        assert "batch item 0" in response.payload["error"]["message"]

    def test_extra_keys_next_to_items_are_rejected(self, app):
        response = app.dispatch(
            "POST", "/v1/classify", b'{"items": [{}], "n": 4}'
        )
        assert response.status == 400
        assert "only 'items'" in response.payload["error"]["message"]

    def test_query_params_cannot_join_a_batch(self, app):
        response = app.dispatch(
            "POST", "/v1/classify?n=4", batch_body([SIGNATURE])
        )
        assert response.status == 400
        assert "query parameters" in response.payload["error"]["message"]


class TestBatchDeadline:
    def test_expired_deadline_fails_the_whole_batch(self):
        class Clock:
            """A manually advanced monotonic clock."""

            def __init__(self):
                self.t = 0.0

            def __call__(self):
                return self.t

        clock = Clock()
        app = ServiceApp(
            ServerConfig(port=0, deadline_s=1.0, cache_size=0), clock=clock
        )

        def slow_item(request):
            clock.t += 10.0  # each item burns far past the shared deadline
            return Response(payload={"ok": True})

        app.router.add("POST", "/v1/costs", slow_item)
        try:
            response = app.dispatch(
                "POST", "/v1/costs", batch_body([{"n": "1"}, {"n": "2"}])
            )
            assert response.status == 504
            assert response.payload["error"]["code"] == "deadline_exceeded"
        finally:
            app.shutdown()
