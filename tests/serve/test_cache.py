"""Response-cache behaviour: parity, bounds, and failure interaction."""

import json
import threading

import pytest

from repro.serve.breaker import BreakerPolicy
from repro.serve.cache import CACHEABLE_PATHS, ResponseCache
from repro.serve.router import Response
from repro.serve.server import ServerConfig, ServiceApp
from repro.serve.validation import stable_json

CLASSIFY = "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn"


@pytest.fixture()
def app():
    """A default in-process ServiceApp, shut down after the test."""
    instance = ServiceApp(ServerConfig(port=0))
    yield instance
    instance.shutdown()


class TestResponseCacheUnit:
    def test_key_is_param_order_insensitive(self):
        a = ResponseCache.key("/v1/costs", {"class": "IAP-IV", "n": "16"})
        b = ResponseCache.key("/v1/costs", {"n": "16", "class": "IAP-IV"})
        assert a == b

    def test_key_distinguishes_paths_and_values(self):
        base = ResponseCache.key("/v1/costs", {"n": "16"})
        assert base != ResponseCache.key("/v1/classify", {"n": "16"})
        assert base != ResponseCache.key("/v1/costs", {"n": "17"})

    def test_cacheable_covers_only_pure_endpoints(self):
        cache = ResponseCache(4)
        assert cache.cacheable("GET", "/v1/classify")
        assert cache.cacheable("POST", "/v1/costs")
        assert not cache.cacheable("GET", "/v1/survey")
        assert not cache.cacheable("DELETE", "/v1/classify")

    def test_zero_capacity_disables_everything(self):
        cache = ResponseCache(0)
        assert not cache.cacheable("GET", CACHEABLE_PATHS[0])
        assert not cache.put(("k",), Response(payload={}))
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ResponseCache(-1)

    def test_non_200_is_never_stored(self):
        cache = ResponseCache(4)
        assert not cache.put(("k",), Response(status=503, payload={}))
        assert cache.get(("k",)) is None
        assert cache.stats()["size"] == 0

    def test_lru_eviction_is_bounded_and_counted(self):
        cache = ResponseCache(2)
        for n in range(5):
            cache.put((n,), Response(payload={"n": n}))
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 3
        # the two most recent survive
        assert cache.get((3,)) is not None
        assert cache.get((4,)) is not None
        assert cache.get((0,)) is None

    def test_get_refreshes_recency(self):
        cache = ResponseCache(2)
        cache.put(("a",), Response(payload={}))
        cache.put(("b",), Response(payload={}))
        cache.get(("a",))  # touch: "b" is now the LRU entry
        cache.put(("c",), Response(payload={}))
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None

    def test_stats_hit_rate(self):
        cache = ResponseCache(4)
        cache.put(("k",), Response(payload={}))
        cache.get(("k",))
        cache.get(("missing",))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestCachedDispatch:
    def test_repeat_request_is_a_hit_and_byte_identical(self, app):
        first = app.dispatch("GET", CLASSIFY)
        second = app.dispatch("GET", CLASSIFY)
        assert first.status == second.status == 200
        assert second is first  # the same immutable Response object
        assert stable_json(first.payload) == stable_json(second.payload)
        stats = app.response_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_get_and_post_share_one_entry(self, app):
        body = json.dumps(
            {"ips": "1", "dps": "n", "ip-dp": "1-n", "ip-im": "1-1",
             "dp-dm": "nxn", "dp-dp": "nxn"}
        ).encode()
        first = app.dispatch("GET", CLASSIFY)
        second = app.dispatch("POST", "/v1/classify", body)
        assert second is first
        assert app.response_cache.stats()["hits"] == 1

    def test_cache_size_zero_disables_caching(self):
        app = ServiceApp(ServerConfig(port=0, cache_size=0))
        try:
            first = app.dispatch("GET", CLASSIFY)
            second = app.dispatch("GET", CLASSIFY)
            assert first.status == second.status == 200
            assert second is not first
            assert stable_json(first.payload) == stable_json(second.payload)
            stats = app.response_cache.stats()
            assert stats["hits"] == stats["misses"] == 0
        finally:
            app.shutdown()

    def test_error_responses_are_not_cached(self, app):
        bad = "/v1/classify?ips=bogus&dps=n"
        first = app.dispatch("GET", bad)
        second = app.dispatch("GET", bad)
        assert first.status == second.status == 400
        assert app.response_cache.stats()["hits"] == 0
        assert len(app.response_cache) == 0

    def test_survey_is_never_cached(self, app):
        app.dispatch("GET", "/v1/survey")
        app.dispatch("GET", "/v1/survey")
        stats = app.response_cache.stats()
        assert stats["hits"] == stats["misses"] == 0

    def test_eviction_bound_holds_under_dispatch(self):
        app = ServiceApp(ServerConfig(port=0, cache_size=2))
        try:
            for n in (1, 2, 3, 4, 5):
                assert app.dispatch("GET", f"/v1/costs?class=IAP-IV&n={n}").status == 200
            stats = app.response_cache.stats()
            assert stats["size"] == 2
            assert stats["evictions"] == 3
        finally:
            app.shutdown()

    def test_cached_hit_survives_open_breaker(self):
        """A hot cache keeps the pure endpoints alive while the
        sweep-backed survey path is tripped open."""
        app = ServiceApp(
            ServerConfig(port=0, breaker=BreakerPolicy(failure_threshold=1))
        )
        try:
            assert app.dispatch("GET", CLASSIFY).status == 200  # warm the cache
            with pytest.raises(ZeroDivisionError):
                app.service.breaker.call(lambda: 1 / 0)  # trip it open
            assert app.service.breaker.snapshot()["state"] == "open"
            survey = app.dispatch("GET", "/v1/survey?costs=true")
            assert survey.status == 503
            hit = app.dispatch("GET", CLASSIFY)
            assert hit.status == 200
            assert app.response_cache.stats()["hits"] == 1
        finally:
            app.shutdown()

    def test_hit_bypasses_a_saturated_pool(self):
        """A cache hit is served by the connection thread itself, so it
        succeeds even when the worker pool has no capacity left."""
        release = threading.Event()
        occupied = threading.Event()
        app = ServiceApp(
            ServerConfig(port=0, workers=1, queue_depth=0, deadline_s=30.0)
        )
        app.router.add(
            "GET",
            "/v1/slow",
            lambda request: (occupied.set(), release.wait(20.0), Response())[-1],
        )
        try:
            assert app.dispatch("GET", CLASSIFY).status == 200  # warm the cache
            blocker = threading.Thread(
                target=app.dispatch, args=("GET", "/v1/slow"), daemon=True
            )
            blocker.start()
            assert occupied.wait(5.0)
            # uncached work is shed; the cached response still lands
            assert app.dispatch("GET", "/v1/costs?class=IAP-IV").status == 503
            assert app.dispatch("GET", CLASSIFY).status == 200
        finally:
            release.set()
            blocker.join(5.0)
            app.shutdown()

    def test_readyz_reports_cache_stats(self, app):
        app.dispatch("GET", CLASSIFY)
        app.dispatch("GET", CLASSIFY)
        ready = app.dispatch("GET", "/v1/readyz")
        assert ready.payload["cache"]["hits"] == 1
        assert ready.payload["cache"]["capacity"] == 1024
