"""Unit tests for the admission-control primitives (deadlines, bucket, pool)."""

import itertools
import threading

import pytest

from repro.serve.errors import (
    DeadlineExceededError,
    OverloadedError,
    RateLimitedError,
)
from repro.serve.limits import Deadline, Job, TokenBucket, WorkerPool


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining_s() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(0.5)
        assert deadline.expired

    def test_none_budget_never_expires(self):
        deadline = Deadline(None, clock=FakeClock())
        assert deadline.remaining_s() is None
        assert not deadline.expired
        deadline.check("anything")  # no raise

    def test_check_raises_naming_the_phase(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError, match="while parsing"):
            deadline.check("parsing")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0.0)
        with pytest.raises(ValueError, match="positive"):
            Deadline(-1.0)


class TestTokenBucket:
    def test_rate_zero_disables_limiting(self):
        bucket = TokenBucket(0.0, clock=FakeClock())
        assert all(bucket.try_acquire() is None for _ in range(100))

    def test_burst_then_shed_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token / 2 per s
        clock.advance(0.5)
        assert bucket.try_acquire() is None

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        clock.advance(100.0)  # a long idle period buys at most `burst`
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_admit_raises_with_retry_hint(self):
        bucket = TokenBucket(rate=1.0, burst=1, clock=FakeClock())
        bucket.admit()
        with pytest.raises(RateLimitedError, match="rate limit") as info:
            bucket.admit()
        assert info.value.retry_after_s == pytest.approx(1.0)
        assert info.value.status == 429

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            TokenBucket(-1.0)
        with pytest.raises(ValueError, match=">= 1"):
            TokenBucket(5.0, burst=0)


class TestJob:
    def test_cancel_before_execute_skips(self):
        job = Job(lambda: "value")
        assert job.cancel()
        assert not job.execute()
        assert job.cancelled and not job.done

    def test_execute_wins_the_race(self):
        job = Job(lambda: "value")
        assert job.execute()
        assert not job.cancel()
        assert job.result == "value"

    def test_expired_deadline_skips_without_running(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        ran = []
        job = Job(lambda: ran.append(1), deadline)
        assert not job.execute()
        assert job.cancelled and not ran

    def test_errors_are_transported_not_raised(self):
        job = Job(lambda: 1 / 0)
        assert job.execute()
        assert job.done
        assert isinstance(job.error, ZeroDivisionError)


class TestWorkerPool:
    def test_runs_work_and_returns_the_result(self):
        pool = WorkerPool(workers=2, queue_depth=4)
        try:
            assert pool.run(lambda: 21 * 2) == 42
        finally:
            assert pool.shutdown()

    def test_handler_exceptions_propagate_to_the_caller(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        try:
            with pytest.raises(ZeroDivisionError):
                pool.run(lambda: 1 / 0)
        finally:
            pool.shutdown()

    def test_queue_overflow_sheds_immediately(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        release = threading.Event()
        try:
            blocker = pool.submit(release.wait)  # occupies the worker
            pool.submit(lambda: None)  # fills the queue (depth 1)
            with pytest.raises(OverloadedError, match="admission queue full"):
                pool.submit(lambda: None)
        finally:
            release.set()
            blocker.wait(5.0)
            assert pool.shutdown()

    def test_idle_workers_extend_the_admission_bound(self):
        # With nobody executing, `workers` submissions are admitted even
        # at queue_depth=0 — they will be picked up immediately.
        pool = WorkerPool(workers=2, queue_depth=0)
        try:
            assert pool.run(lambda: "ok") == "ok"
        finally:
            pool.shutdown()

    def test_expired_deadline_cancels_queued_job(self):
        ticks = itertools.count()
        pool = WorkerPool(workers=1, queue_depth=2)
        release = threading.Event()
        try:
            blocker = pool.submit(release.wait)
            expired = Deadline(1.0, clock=lambda: float(next(ticks)))
            ran = []
            with pytest.raises(DeadlineExceededError, match="while queued"):
                pool.run(lambda: ran.append(1), deadline=expired)
            assert not ran
        finally:
            release.set()
            blocker.wait(5.0)
            assert pool.shutdown()
            assert not ran  # the cancelled job never executed

    def test_slow_execution_times_out_as_executing(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        release = threading.Event()
        try:
            with pytest.raises(DeadlineExceededError, match="while executing"):
                pool.run(release.wait, deadline=Deadline(0.05))
        finally:
            release.set()
            assert pool.shutdown()

    def test_submit_after_shutdown_is_refused(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        assert pool.shutdown()
        with pytest.raises(OverloadedError, match="shut down"):
            pool.submit(lambda: None)

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            WorkerPool(queue_depth=-1)

    def test_queued_property_counts_waiting_jobs(self):
        pool = WorkerPool(workers=1, queue_depth=4)
        release = threading.Event()
        try:
            blocker = pool.submit(release.wait)
            pool.submit(lambda: None)
            assert pool.queued >= 1
        finally:
            release.set()
            blocker.wait(5.0)
            pool.shutdown()
