"""Lifecycle tests: graceful drain, the soak test and the chaos test."""

import json
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.serve.breaker import BreakerPolicy
from repro.serve.errors import DrainingError
from repro.serve.lifecycle import DrainController, install_signal_handlers
from repro.serve.server import ServerConfig, ServiceApp, run_server

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

CLASSIFY = "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn"


class TestDrainController:
    def test_admit_and_release_track_inflight(self):
        controller = DrainController()
        token = controller.admit()
        assert controller.inflight == 1
        with token:
            pass
        assert controller.inflight == 0

    def test_begin_drain_flips_once(self):
        controller = DrainController()
        fired = []
        controller.on_drain = lambda: fired.append(1)
        assert controller.begin_drain()
        assert not controller.begin_drain()  # idempotent
        assert fired == [1]
        assert controller.draining

    def test_admission_refused_mid_drain(self):
        controller = DrainController()
        controller.begin_drain()
        with pytest.raises(DrainingError, match="draining"):
            controller.admit()

    def test_wait_drained_blocks_for_inflight_work(self):
        controller = DrainController()
        token = controller.admit()
        assert not controller.wait_drained(0.05)  # still in flight
        with token:
            pass
        assert controller.wait_drained(0.05)

    def test_wait_for_drain_signal(self):
        controller = DrainController()
        assert not controller.wait_for_drain_signal(0.01)
        controller.begin_drain()
        assert controller.wait_for_drain_signal(0.01)

    def test_signal_handlers_refused_off_main_thread(self):
        results = []
        thread = threading.Thread(
            target=lambda: results.append(install_signal_handlers(DrainController()))
        )
        thread.start()
        thread.join()
        assert results == [False]


class TestSoak:
    def test_hammering_threads_see_only_200s_and_clean_drains(self):
        """N threads hammer classify while a drain lands mid-flight.

        The contract: every response is either a 200 (admitted before
        the drain) or a structured 503 ``draining`` (admitted after) —
        never a 500, never an exception — and the drain completes.
        """
        app = ServiceApp(ServerConfig(workers=4, queue_depth=32, deadline_s=10.0))
        statuses = []
        lock = threading.Lock()
        start = threading.Barrier(9)

        def hammer():
            start.wait()
            for _ in range(25):
                response = app.dispatch("GET", CLASSIFY)
                with lock:
                    statuses.append(response.status)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        start.wait()  # all threads are mid-hammer when the drain begins
        app.drain.begin_drain()
        for thread in threads:
            thread.join(30.0)
        assert app.shutdown()
        assert len(statuses) == 8 * 25
        assert set(statuses) <= {200, 503}
        assert 503 in statuses  # the drain did reject some requests
        # The headline: zero 5xx other than the structured drain shed.
        assert all(status != 500 for status in statuses)

    def test_sigterm_drains_and_exits_zero(self):
        """The subprocess flavour: boot, load, SIGTERM mid-flight, exit 0."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO_ROOT,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on ")
            url = line.removeprefix("listening on ")
            for _ in range(10):
                with urllib.request.urlopen(url + CLASSIFY, timeout=10.0) as response:
                    assert response.status == 200
            proc.send_signal(signal.SIGTERM)
            status = proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert status == 0
        assert "drained cleanly" in proc.stderr.read()


class TestKeepAliveBatchDrain:
    def test_sigterm_mid_batch_finishes_the_batch_then_closes(self):
        """SIGTERM with a batch POST in flight: finish it, close, exit 0.

        The batch is parked behind a slow fabric-backed survey on a
        1-thread pool, so the SIGTERM reliably lands while the batch
        holds an admission token but has not yet run. The drain contract:
        the batch still completes (200, every item answered), its
        keep-alive connection is told ``Connection: close``, and the
        server exits 0 reporting a clean drain.
        """
        import http.client
        from urllib.parse import urlsplit

        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep-worker",
                "--listen", "127.0.0.1:0", "--throttle", "0.25",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            cwd=REPO_ROOT,
        )
        proc = None
        connection = None
        try:
            announced = worker.stdout.readline().strip()
            assert announced.startswith("worker listening on ")
            endpoint = announced.removeprefix("worker listening on ")
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.serve",
                    "--port", "0", "--workers", "1",
                    "--deadline", "30", "--drain-deadline", "30",
                    "--keepalive-idle", "30",
                    "--fabric-workers", endpoint,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=REPO_ROOT,
            )
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on ")
            url = urlsplit(line.removeprefix("listening on "))
            connection = http.client.HTTPConnection(
                url.hostname, url.port, timeout=60.0
            )

            # Prove the connection really is keep-alive before the drain.
            connection.request("GET", CLASSIFY)
            with connection.getresponse() as warmup:
                assert warmup.status == 200
                assert warmup.getheader("Connection") == "keep-alive"
                warmup.read()

            # Occupy the single worker thread with a throttled,
            # fabric-backed sweep (~22 survey machines x 0.25s each).
            base_url = line.removeprefix("listening on ")
            survey_status = []

            def slow_survey():
                with urllib.request.urlopen(
                    base_url + "/v1/survey?costs=true&n=64", timeout=60.0
                ) as response:
                    survey_status.append(response.status)

            survey = threading.Thread(target=slow_survey, daemon=True)
            survey.start()
            # Wait until readyz reports the fabric sweep mid-flight, so
            # the batch below reliably queues behind it.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    base_url + "/v1/readyz", timeout=10.0
                ) as probe:
                    if json.loads(probe.read())["fabric"].get("active"):
                        break
                time.sleep(0.05)
            else:
                pytest.fail("the survey sweep never reached the fabric")

            items = [{"serial": 1 + (k % 47), "n": 1 + k} for k in range(32)]
            connection.request(
                "POST",
                "/v1/costs",
                body=json.dumps({"items": items}),
                headers={"Content-Type": "application/json"},
            )
            time.sleep(0.5)  # the batch is queued, token held
            proc.send_signal(signal.SIGTERM)

            with connection.getresponse() as response:
                assert response.status == 200
                assert response.getheader("Connection") == "close"
                payload = json.loads(response.read())
            assert payload["count"] == len(items)
            assert payload["errors"] == 0
            survey.join(60.0)
            assert survey_status == [200]
            status = proc.wait(timeout=60.0)
            assert status == 0
            assert "drained cleanly" in proc.stderr.read()
        finally:
            if connection is not None:
                connection.close()
            for leftover in (proc, worker):
                if leftover is not None and leftover.poll() is None:
                    leftover.kill()
                    leftover.wait()


class TestRunServer:
    def test_run_server_in_process_drains_and_returns_zero(self, capsys):
        """Drive the blocking entry point end to end without a subprocess.

        ``ready`` hands us the bound server; a drain begun from the test
        thread must unwind ``serve_forever`` and return 0 (clean drain).
        """
        booted = threading.Event()
        captured = {}

        def ready(server):
            captured["server"] = server
            booted.set()

        config = ServerConfig(port=0, workers=2, drain_s=5.0)
        result = []
        runner = threading.Thread(
            target=lambda: result.append(run_server(config, ready=ready)),
            daemon=True,
        )
        runner.start()
        assert booted.wait(10.0)
        server = captured["server"]
        with urllib.request.urlopen(server.url + CLASSIFY, timeout=10.0) as response:
            assert response.status == 200
        server.app.drain.begin_drain()
        runner.join(30.0)
        assert result == [0]
        assert "listening on " in capsys.readouterr().out

    def test_module_main_builds_config_from_flags(self, monkeypatch):
        """``python -m repro.serve`` flag parsing, without binding a port."""
        from repro.serve import __main__ as module_main

        seen = {}

        def fake_run_server(config):
            seen["config"] = config
            return 0

        monkeypatch.setattr(module_main, "run_server", fake_run_server)
        assert module_main.main(
            ["--port", "0", "--workers", "3", "--fault-seed", "7", "--rate", "2.5"]
        ) == 0
        config = seen["config"]
        assert config.workers == 3
        assert config.rate == 2.5
        assert config.fault_plan is not None
        # No --fault-seed -> no chaos plan.
        assert module_main.main(["--port", "0"]) == 0
        assert seen["config"].fault_plan is None


class TestChaos:
    def test_injected_faults_open_the_breaker_then_recover(self):
        """Seeded chaos: breaker opens, readyz flips 503, then recovers.

        Seed 1 at rate 1.0 over a 2-cycle horizon schedules faults on
        protected-request ordinals 1 and 2 only — deterministic, so the
        test needs no sleeps or probabilities, just a fake clock.
        """
        clock_now = [0.0]
        policy = BreakerPolicy(failure_threshold=2, recovery_s=10.0, jitter=0.0)
        app = ServiceApp(
            ServerConfig(
                deadline_s=None,
                breaker=policy,
                fault_plan=FaultPlan.random(1, 1.0, n_pes=2, horizon=2),
            ),
            clock=lambda: clock_now[0],
        )
        survey = "/v1/survey?costs=true&n=4"

        # Ordinals 1 and 2 fault -> two sanitised 500s, breaker opens.
        first = app.dispatch("GET", survey)
        assert first.status == 500
        assert first.payload["error"]["code"] == "internal"
        assert "Traceback" not in json.dumps(first.payload)
        assert app.dispatch("GET", survey).status == 500

        # Open: instant structured 503s, readyz not ready (healthz fine).
        shed = app.dispatch("GET", survey)
        assert shed.status == 503
        assert shed.payload["error"]["code"] == "breaker_open"
        ready = app.dispatch("GET", "/v1/readyz")
        assert ready.status == 503
        assert ready.payload["status"] == "not_ready"
        assert ready.payload["breaker"]["state"] == "open"
        assert app.dispatch("GET", "/v1/healthz").status == 200

        # Past the recovery interval: half-open probe succeeds (the
        # fault plan is exhausted), breaker closes, readiness returns.
        clock_now[0] += policy.recovery_delay_s(1) + 0.001
        probe = app.dispatch("GET", survey)
        assert probe.status == 200
        recovered = app.dispatch("GET", "/v1/readyz")
        assert recovered.status == 200
        assert recovered.payload["breaker"]["state"] == "closed"
        assert app.shutdown()
