"""Unit tests for the transport-free router and endpoint handlers."""

import pytest

from repro.core.classify import classify
from repro.core.signature import make_signature
from repro.serve.errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
)
from repro.serve.router import Request, Response, Router, TaxonomyService
from repro.serve.validation import stable_json


@pytest.fixture()
def service():
    return TaxonomyService()


MORPHOSYS_PARAMS = {
    "ips": "1",
    "dps": "n",
    "ip-dp": "1-n",
    "ip-im": "1-1",
    "dp-dm": "nxn",
    "dp-dp": "nxn",
}


class TestRouter:
    def test_unknown_path_is_404(self):
        router = Router()
        with pytest.raises(NotFoundError, match="/v1/nope"):
            router.handle(Request.get("/v1/nope"))

    def test_wrong_method_is_405_listing_allowed(self):
        router = Router()
        router.add("GET", "/v1/x", lambda request: Response())
        with pytest.raises(MethodNotAllowedError) as info:
            router.handle(Request("DELETE", "/v1/x"))
        assert info.value.allowed == ("GET",)

    def test_paths_are_sorted(self):
        router = Router()
        router.add("GET", "/b", lambda request: Response())
        router.add("GET", "/a", lambda request: Response())
        assert router.paths() == ("/a", "/b")


class TestClassify:
    def test_parity_with_the_cli_pipeline(self, service):
        response = service.handle_classify(
            Request.get("/v1/classify", MORPHOSYS_PARAMS)
        )
        signature = make_signature(
            "1", "n", ip_dp="1-n", ip_im="1-1", dp_dm="nxn", dp_dp="nxn"
        )
        expected = classify(signature)
        assert response.status == 200
        payload = response.payload
        assert payload["class"]["short_name"] == expected.short_name
        assert payload["class"]["serial"] == expected.taxonomy_class.serial
        assert payload["flexibility"] == expected.flexibility
        # The explain text is byte-identical to `repro-taxonomy classify`.
        assert payload["explain"] == expected.explain()

    def test_unknown_parameter_is_rejected(self, service):
        with pytest.raises(BadRequestError, match="'zps'"):
            service.handle_classify(
                Request.get("/v1/classify", {"ips": "1", "dps": "1", "zps": "9"})
            )

    def test_missing_required_parameter_is_named(self, service):
        with pytest.raises(BadRequestError, match="'dps'"):
            service.handle_classify(Request.get("/v1/classify", {"ips": "1"}))

    def test_invalid_signature_is_a_bad_request(self, service):
        request = Request.get("/v1/classify", {"ips": "zebra", "dps": "4"})
        with pytest.raises(Exception) as info:
            service.handle_classify(request)
        # The library's SignatureError message passes through as a 400.
        from repro.serve.errors import as_serve_error

        serve_error = as_serve_error(info.value)
        assert serve_error.status == 400


class TestCosts:
    def test_by_short_name(self, service):
        response = service.handle_costs(
            Request.get("/v1/costs", {"class": "IAP-IV", "n": "16"})
        )
        payload = response.payload
        assert payload["serial"] == 10
        assert payload["n"] == 16
        assert payload["technology"] == "65nm"
        assert payload["area_ge"] > 0
        assert payload["config_bits"] > 0

    def test_by_serial_matches_by_name(self, service):
        by_name = service.handle_costs(
            Request.get("/v1/costs", {"class": "IAP-IV"})
        ).payload
        by_serial = service.handle_costs(
            Request.get("/v1/costs", {"serial": "10"})
        ).payload
        assert by_name == by_serial

    def test_exactly_one_selector_required(self, service):
        with pytest.raises(BadRequestError, match="exactly one"):
            service.handle_costs(Request.get("/v1/costs", {}))
        with pytest.raises(BadRequestError, match="exactly one"):
            service.handle_costs(
                Request.get("/v1/costs", {"class": "IAP-IV", "serial": "10"})
            )

    def test_unknown_class_is_404(self, service):
        with pytest.raises(NotFoundError):
            service.handle_costs(Request.get("/v1/costs", {"class": "WAT-9"}))

    def test_bad_technology_is_a_named_400(self, service):
        with pytest.raises(BadRequestError, match="'technology'"):
            service.handle_costs(
                Request.get("/v1/costs", {"class": "IAP-IV", "technology": "3nm"})
            )

    def test_n_bounds_are_enforced(self, service):
        with pytest.raises(BadRequestError, match="'n'"):
            service.handle_costs(
                Request.get("/v1/costs", {"class": "IAP-IV", "n": "999999"})
            )


class TestSurvey:
    def test_full_survey_has_25_records(self, service):
        payload = service.handle_survey(Request.get("/v1/survey")).payload
        assert payload["count"] == 25
        names = [row["name"] for row in payload["architectures"]]
        assert "MorphoSys" in names

    def test_name_filter_is_case_insensitive(self, service):
        payload = service.handle_survey(
            Request.get("/v1/survey", {"name": "morphosys"})
        ).payload
        assert payload["count"] == 1
        assert payload["architectures"][0]["name"] == "MorphoSys"

    def test_unknown_name_is_404(self, service):
        with pytest.raises(NotFoundError, match="'Cray-9000'"):
            service.handle_survey(Request.get("/v1/survey", {"name": "Cray-9000"}))

    def test_costs_true_adds_model_estimates(self, service):
        payload = service.handle_survey(
            Request.get("/v1/survey", {"name": "MorphoSys", "costs": "true", "n": "8"})
        ).payload
        costs = payload["architectures"][0]["costs"]
        assert costs["area_ge"] > 0
        assert costs["config_bits"] >= 0

    def test_fabric_backend_answers_identically_to_local(self, service):
        # A service pointed at a sweep-fabric worker must serve the
        # exact payload the local engine serves — distribution is an
        # operational choice, never a semantic one.
        import threading

        from repro.perf.fabric import FabricWorker
        from repro.serve.validation import stable_json

        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            distributed = TaxonomyService(
                fabric_workers=f"{worker.address[0]}:{worker.address[1]}"
            )
            request = {"costs": "true", "n": "8"}
            remote = distributed.handle_survey(
                Request.get("/v1/survey", dict(request))
            ).payload
            local = service.handle_survey(
                Request.get("/v1/survey", dict(request))
            ).payload
        finally:
            worker.close()
        assert stable_json(remote) == stable_json(local)


class TestByteStability:
    def test_identical_requests_identical_bytes(self, service):
        first = service.handle_classify(
            Request.get("/v1/classify", MORPHOSYS_PARAMS)
        )
        second = service.handle_classify(
            Request.get("/v1/classify", dict(MORPHOSYS_PARAMS))
        )
        assert stable_json(first.payload) == stable_json(second.payload)
