"""Fleet stats bus: sibling discovery, collection, metric merging."""

import socket

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.fleet import (
    FleetBus,
    merge_metric_snapshots,
    render_fleet_prometheus,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="fleet bus needs AF_UNIX sockets"
)


def registry_snapshot(requests, latencies):
    """A small per-worker registry snapshot for merge tests."""
    registry = MetricsRegistry()
    registry.counter("serve.requests", help="reqs").inc(requests)
    registry.gauge("serve.inflight", help="now").inc(requests % 3)
    histogram = registry.histogram("serve.request_s", help="lat")
    for value in latencies:
        histogram.observe(value)
    return registry.snapshot()


class TestFleetBus:
    def test_two_workers_see_each_other(self, tmp_path):
        a = FleetBus(tmp_path, lambda: {"pid": 1, "role": "a"}, name="worker-1.sock")
        b = FleetBus(tmp_path, lambda: {"pid": 2, "role": "b"}, name="worker-2.sock")
        try:
            assert a.collect() == [{"pid": 2, "role": "b"}]
            assert b.collect() == [{"pid": 1, "role": "a"}]
        finally:
            a.close()
            b.close()

    def test_closed_sibling_drops_out(self, tmp_path):
        a = FleetBus(tmp_path, lambda: {"pid": 1}, name="worker-1.sock")
        b = FleetBus(tmp_path, lambda: {"pid": 2}, name="worker-2.sock")
        try:
            b.close()
            assert a.collect() == []
        finally:
            a.close()

    def test_dead_socket_file_is_skipped(self, tmp_path):
        (tmp_path / "worker-9.sock").touch()  # plain file, not a socket
        a = FleetBus(tmp_path, lambda: {"pid": 1}, name="worker-1.sock")
        try:
            assert a.collect() == []
        finally:
            a.close()

    def test_close_is_idempotent_and_unlinks(self, tmp_path):
        a = FleetBus(tmp_path, lambda: {}, name="worker-1.sock")
        path = a.path
        assert path.exists()
        a.close()
        a.close()
        assert not path.exists()


class TestMerge:
    def test_counters_gauges_histograms_sum(self):
        merged = merge_metric_snapshots(
            [registry_snapshot(10, [0.1, 0.2]), registry_snapshot(5, [0.3])]
        )
        snapshot = merged.snapshot()
        assert snapshot["serve.requests"]["value"] == 15
        assert snapshot["serve.inflight"]["value"] == (10 % 3) + (5 % 3)
        assert snapshot["serve.request_s"]["count"] == 3
        assert snapshot["serve.request_s"]["total"] == pytest.approx(0.6)

    def test_render_is_valid_prometheus_text(self):
        text = render_fleet_prometheus(
            [registry_snapshot(1, [0.1]), registry_snapshot(2, [0.2])]
        )
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text

    def test_merge_rejects_mismatched_histograms(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            histogram.merge([1, 2], 3, 1.5)  # wrong bucket count
