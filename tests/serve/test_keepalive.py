"""Keep-alive connection lifecycle over real sockets."""

import http.client
import socket
import threading
import time

import pytest

from repro.serve.server import ServerConfig, TaxonomyHTTPServer

CLASSIFY = "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn"


@pytest.fixture()
def serve():
    """Boot a TaxonomyHTTPServer on an ephemeral port; yields a booter."""
    running = []

    def boot(config=None):
        server = TaxonomyHTTPServer(
            config if config is not None else ServerConfig(port=0)
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        return server

    yield boot
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(5.0)


def address(server):
    """The server's (host, port) pair."""
    return server.server_address[:2]


class TestConnectionReuse:
    def test_many_requests_share_one_connection(self, serve):
        host, port = address(serve())
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            sockets = set()
            for _ in range(3):
                conn.request("GET", CLASSIFY)
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert body.endswith(b"\n")
                assert response.getheader("Connection") == "keep-alive"
                assert "max=" in response.getheader("Keep-Alive")
                sockets.add(id(conn.sock))
            assert len(sockets) == 1  # never reconnected
        finally:
            conn.close()

    def test_keep_alive_header_counts_down_the_budget(self, serve):
        host, port = address(serve(ServerConfig(port=0, keepalive_requests=3)))
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            maxes = []
            for _ in range(2):
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                response.read()
                maxes.append(response.getheader("Keep-Alive").split("max=")[1])
            assert maxes == ["2", "1"]
        finally:
            conn.close()

    def test_budget_exhaustion_closes_the_connection(self, serve):
        host, port = address(serve(ServerConfig(port=0, keepalive_requests=2)))
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("GET", "/v1/healthz")
            first = conn.getresponse()
            first.read()
            assert first.getheader("Connection") == "keep-alive"
            conn.request("GET", "/v1/healthz")
            second = conn.getresponse()
            second.read()
            assert second.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_zero_budget_disables_keep_alive(self, serve):
        host, port = address(serve(ServerConfig(port=0, keepalive_requests=0)))
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_client_requested_close_is_honoured(self, serve):
        host, port = address(serve())
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("GET", "/v1/healthz", headers={"Connection": "close"})
            response = conn.getresponse()
            response.read()
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()


class TestIdleTimeout:
    def test_idle_connection_is_closed_by_the_server(self, serve):
        host, port = address(serve(ServerConfig(port=0, keepalive_idle_s=0.2)))
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            response.read()
            assert response.getheader("Connection") == "keep-alive"
            time.sleep(0.8)  # outlive the idle budget
            with pytest.raises((http.client.RemoteDisconnected, ConnectionError)):
                conn.request("GET", "/v1/healthz")
                conn.getresponse()
        finally:
            conn.close()
        # a fresh connection works fine afterwards
        retry = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            retry.request("GET", "/v1/healthz")
            assert retry.getresponse().status == 200
        finally:
            retry.close()


class TestWireRobustness:
    def test_malformed_request_line_gets_400_and_close(self, serve):
        host, port = address(serve())
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(b"THIS IS NOT HTTP\r\n\r\n")
            raw.settimeout(10.0)
            chunks = []
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    break  # server closed: the connection was not kept alive
                chunks.append(chunk)
            reply = b"".join(chunks)
        # an unparseable request line gets the stdlib's HTTP/0.9-style
        # error reply (body only) and the connection is torn down —
        # never kept alive with an unframed stream.
        assert b"Error code: 400" in reply

    def test_pipelined_requests_are_answered_in_order(self, serve):
        host, port = address(serve())
        request = (
            b"GET /v1/healthz HTTP/1.1\r\nHost: h\r\n\r\n"
            b"GET /v1/readyz HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"
        )
        with socket.create_connection((host, port), timeout=10.0) as raw:
            raw.sendall(request)
            raw.settimeout(10.0)
            chunks = []
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            reply = b"".join(chunks)
        assert reply.count(b"HTTP/1.1 200") == 2
        assert b'"status":"ok"' in reply  # healthz answered first
        assert b'"status":"ready"' in reply  # then readyz, then close
