"""HTTP-level tests: a real server on an ephemeral port per test."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.router import Response
from repro.serve.server import ServerConfig, ServiceApp, TaxonomyHTTPServer


@pytest.fixture()
def serve():
    """Boot a TaxonomyHTTPServer on an ephemeral port; yields (server, url)."""
    running = []

    def boot(config=None, app=None):
        server = TaxonomyHTTPServer(
            config if config is not None else ServerConfig(port=0), app=app
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        running.append((server, thread))
        return server

    yield boot
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(5.0)


def fetch(url, *, method="GET", body=None):
    """One request; returns (status, headers, parsed-or-raw body)."""
    request = urllib.request.Request(url, method=method, data=body)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            raw = response.read()
            status, headers = response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status, headers = error.code, dict(error.headers)
    if headers.get("Content-Type") == "application/json":
        return status, headers, json.loads(raw)
    return status, headers, raw


class TestEndpoints:
    def test_classify_round_trip(self, serve):
        server = serve(ServerConfig(port=0))
        status, headers, payload = fetch(
            server.url
            + "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn"
        )
        assert status == 200
        assert payload["class"]["short_name"] == "IAP-IV"
        # urllib sends "Connection: close", which the server honours even
        # with keep-alive enabled; reuse itself is covered in
        # test_keepalive.py with a persistent http.client connection.
        assert headers["Connection"] == "close"

    def test_post_classify_json_body(self, serve):
        server = serve(ServerConfig(port=0))
        body = json.dumps(
            {"ips": 1, "dps": "n", "ip-dp": "1-n", "ip-im": "1-1", "dp-dm": "nxn"}
        ).encode()
        status, _, payload = fetch(
            server.url + "/v1/classify", method="POST", body=body
        )
        assert status == 200
        assert payload["flexibility"] >= 0

    def test_query_body_overlap_is_400(self, serve):
        server = serve(ServerConfig(port=0))
        status, _, payload = fetch(
            server.url + "/v1/classify?ips=1",
            method="POST",
            body=b'{"ips": 2, "dps": 1}',
        )
        assert status == 400
        assert "both the query string and the body" in payload["error"]["message"]

    def test_unknown_endpoint_is_structured_404(self, serve):
        server = serve(ServerConfig(port=0))
        status, _, payload = fetch(server.url + "/v1/nope")
        assert status == 404
        assert payload == {
            "error": {
                "code": "not_found",
                "message": "no such endpoint: /v1/nope",
                "status": 404,
            }
        }

    def test_wrong_method_is_405_with_allow_header(self, serve):
        server = serve(ServerConfig(port=0))
        status, headers, payload = fetch(
            server.url + "/v1/survey", method="POST", body=b"{}"
        )
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert headers["Allow"] == "GET"

    def test_bad_parameter_is_400_naming_the_field(self, serve):
        server = serve(ServerConfig(port=0))
        status, _, payload = fetch(server.url + "/v1/costs?class=IAP-IV&n=zebra")
        assert status == 400
        assert "'n'" in payload["error"]["message"]

    def test_index_lists_endpoints(self, serve):
        server = serve(ServerConfig(port=0))
        status, _, payload = fetch(server.url + "/")
        assert status == 200
        assert "/v1/classify" in payload["endpoints"]
        assert "/v1/metrics" in payload["endpoints"]

    def test_healthz_and_readyz(self, serve):
        server = serve(ServerConfig(port=0))
        assert fetch(server.url + "/v1/healthz")[2] == {"status": "ok"}
        status, _, payload = fetch(server.url + "/v1/readyz")
        assert status == 200
        assert payload["status"] == "ready"
        assert payload["breaker"]["state"] == "closed"

    def test_metrics_is_prometheus_text(self, serve):
        server = serve(ServerConfig(port=0))
        fetch(server.url + "/v1/healthz")
        status, headers, raw = fetch(server.url + "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"# TYPE repro_serve_requests_total counter" in raw

    def test_identical_requests_are_byte_identical(self, serve):
        server = serve(ServerConfig(port=0))
        url = server.url + "/v1/costs?class=IAP-IV&n=16"
        assert fetch(url)[2] == fetch(url)[2]
        first = urllib.request.urlopen(url, timeout=10.0).read()
        second = urllib.request.urlopen(url, timeout=10.0).read()
        assert first == second


class TestLoadShedding:
    def test_rate_limit_returns_429_with_retry_after(self, serve):
        server = serve(ServerConfig(port=0, rate=0.001, burst=1))
        url = server.url + "/v1/costs?class=IAP-IV"
        assert fetch(url)[0] == 200  # the burst token
        status, headers, payload = fetch(url)
        assert status == 429
        assert payload["error"]["code"] == "rate_limited"
        assert int(headers["Retry-After"]) >= 1

    def test_queue_overflow_returns_503_with_retry_after(self, serve):
        release = threading.Event()
        config = ServerConfig(port=0, workers=1, queue_depth=0, deadline_s=30.0)
        app = ServiceApp(config)

        def slow(request):
            release.wait(20.0)
            return Response(payload={"slept": True})

        app.router.add("GET", "/v1/slow", slow)
        server = serve(config, app=app)
        try:
            hold = threading.Thread(
                target=fetch, args=(server.url + "/v1/slow",), daemon=True
            )
            hold.start()
            deadline = threading.Event()
            # Wait until the slow request actually occupies the worker.
            for _ in range(100):
                if app.pool.queued == 0 and app.drain.inflight == 1:
                    break
                deadline.wait(0.05)
            status, headers, payload = fetch(server.url + "/v1/costs?class=IAP-IV")
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert "Retry-After" in headers
        finally:
            release.set()
            hold.join(5.0)

    def test_deadline_expiry_returns_504(self, serve):
        config = ServerConfig(port=0, workers=1, queue_depth=1, deadline_s=0.2)
        app = ServiceApp(config)
        app.router.add(
            "GET",
            "/v1/slow",
            lambda request: threading.Event().wait(5.0) or Response(),
        )
        server = serve(config, app=app)
        status, _, payload = fetch(server.url + "/v1/slow")
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_oversized_post_body_is_rejected(self, serve):
        server = serve(ServerConfig(port=0))
        status, _, payload = fetch(
            server.url + "/v1/classify",
            method="POST",
            body=b"x" * (64 * 1024 + 1),
        )
        assert status == 400
        assert "Content-Length" in payload["error"]["message"]


class TestConfigValidation:
    def test_rejects_bad_drain_budget(self):
        with pytest.raises(ValueError, match="drain_s"):
            ServerConfig(drain_s=-1.0)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline_s"):
            ServerConfig(deadline_s=0.0)
