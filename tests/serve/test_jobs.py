"""The durable job subsystem: journal, store, runner, and REST surface."""

import json
import time

import pytest

from repro.serve.errors import BadRequestError
from repro.serve.jobs import (
    JobContext,
    JobKind,
    JobManager,
    JobStore,
    TransientJobError,
    backoff_delay,
    fold_events,
    get_job_kind,
    job_kinds,
    register_job_kind,
)
from repro.serve.router import Router
from repro.serve.server import ServerConfig, ServiceApp

SUBMITTED = {
    "event": "submitted", "ts": 1.0, "job_id": "j-1",
    "kind": "population", "params": {"size": 8},
}


def wait_for(predicate, timeout_s=20.0, interval_s=0.02):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError("condition not reached in time")


class TestFoldEvents:
    def test_empty_journal_is_none(self):
        assert fold_events([]) is None

    def test_submission_fields_carried(self):
        record = fold_events([
            {**SUBMITTED, "idempotency_key": "k", "deadline_s": 9.0,
             "ttl_s": 5.0, "max_attempts": 7},
        ])
        assert record.state == "queued"
        assert record.idempotency_key == "k"
        assert (record.deadline_s, record.ttl_s, record.max_attempts) == (9.0, 5.0, 7)

    def test_retrying_requeues_with_not_before(self):
        record = fold_events([
            SUBMITTED,
            {"event": "started", "ts": 2.0},
            {"event": "retrying", "ts": 3.0, "not_before": 4.5, "error": "boom"},
        ])
        assert record.state == "queued"
        assert record.not_before == 4.5
        assert record.attempts == 1
        assert record.error == "boom"

    def test_interrupted_requeues_and_next_start_counts(self):
        record = fold_events([
            SUBMITTED,
            {"event": "started", "ts": 2.0},
            {"event": "interrupted", "ts": 3.0},
            {"event": "started", "ts": 4.0},
        ])
        assert record.state == "running"
        assert record.attempts == 2

    def test_terminal_states_are_final(self):
        record = fold_events([
            SUBMITTED,
            {"event": "started", "ts": 2.0},
            {"event": "cancelled", "ts": 3.0},
            {"event": "started", "ts": 4.0},
            {"event": "succeeded", "ts": 5.0},
        ])
        assert record.state == "cancelled"
        assert record.finished_at == 3.0

    def test_unknown_events_only_touch_updated_at(self):
        record = fold_events([SUBMITTED, {"event": "mystery", "ts": 9.0}])
        assert record.state == "queued"
        assert record.updated_at == 9.0


class TestBackoff:
    def test_deterministic_across_calls(self):
        assert backoff_delay("j-abc", 1) == backoff_delay("j-abc", 1)

    def test_positive_and_growing_on_average(self):
        delays = [backoff_delay("j-abc", attempt) for attempt in (1, 2, 3)]
        assert all(delay > 0 for delay in delays)
        assert delays[2] > delays[0]


class TestJobStore:
    def test_submit_get_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record, deduped = store.submit("population", {"size": 8})
        assert not deduped
        loaded = store.get(record.job_id)
        assert loaded.state == "queued"
        assert loaded.params == {"size": 8}

    def test_idempotency_key_dedupes(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = store.submit("population", {"size": 8}, idempotency_key="k1")
        second, deduped = store.submit("population", {"size": 8}, idempotency_key="k1")
        assert deduped
        assert second.job_id == first.job_id

    def test_corrupt_journal_records_are_dropped(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit("population", {"size": 8})
        store.append_event(record.job_id, "started")
        path = store.events_path(record.job_id)
        good = path.read_text()
        # A torn tail and a bit-flipped record must both be ignored.
        path.write_text(good + '{"event": "succeeded", "ts": 9.0, "crc": 1}\n' + '{"ev')
        loaded = store.get(record.job_id)
        assert loaded.state == "running"
        assert loaded.attempts == 1

    def test_claim_is_exclusive_and_releasable(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit("population", {"size": 8})
        claim = store.claim(record.job_id)
        assert claim is not None
        assert store.claim(record.job_id) is None
        claim.release()
        again = store.claim(record.job_id)
        assert again is not None
        again.release()

    def test_cancel_unclaimed_job_is_immediate(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit("population", {"size": 8})
        cancelled = store.request_cancel(record.job_id)
        assert cancelled.state == "cancelled"

    def test_gc_removes_expired_terminal_jobs_and_stale_index(self, tmp_path):
        now = [100.0]
        store = JobStore(tmp_path, clock=lambda: now[0])
        record, _ = store.submit(
            "population", {"size": 8}, idempotency_key="k", ttl_s=10.0
        )
        store.append_event(record.job_id, "started")
        store.append_event(record.job_id, "succeeded")
        assert store.gc() == 0  # not yet past TTL
        now[0] = 200.0
        assert store.gc() == 1
        assert store.get(record.job_id) is None
        # The stale index was pruned, so the key mints a fresh job.
        fresh, deduped = store.submit("population", {"size": 8}, idempotency_key="k")
        assert not deduped
        assert fresh.job_id != record.job_id

    def test_stats_tallies_and_oldest_age(self, tmp_path):
        now = [50.0]
        store = JobStore(tmp_path, clock=lambda: now[0])
        store.submit("population", {"size": 8})
        now[0] = 53.0
        stats = store.stats()
        assert stats["queued"] == 1
        assert stats["states"]["succeeded"] == 0
        assert stats["oldest_queued_age_s"] == pytest.approx(3.0)


@pytest.fixture()
def manager(tmp_path):
    """A fast-polling single-runner manager over a fresh store."""
    managers = []

    def boot(**overrides):
        options = {"runners": 1, "poll_s": 0.02}
        options.update(overrides)
        instance = JobManager(tmp_path / "jobs", **options)
        managers.append(instance)
        return instance

    yield boot
    for instance in managers:
        instance.drain(5.0)


class TestJobManager:
    def test_population_job_succeeds_with_result(self, manager):
        boss = manager()
        record, _ = boss.submit("population", {"size": "64", "chunk": "16"})
        done = wait_for(lambda: boss.store.get(record.job_id).terminal
                        and boss.store.get(record.job_id))
        assert done.state == "succeeded"
        result = boss.store.read_result(record.job_id)
        assert result["total"] == 64
        assert result["classes"] >= 1

    def test_submit_dedupes_on_idempotency_key(self, manager):
        boss = manager()
        first, deduped_a = boss.submit("population", {"size": "8"}, idempotency_key="k")
        second, deduped_b = boss.submit("population", {"size": "8"}, idempotency_key="k")
        assert (deduped_a, deduped_b) == (False, True)
        assert second.job_id == first.job_id

    def test_cancel_mid_sweep_is_cooperative(self, manager):
        boss = manager()
        record, _ = boss.submit(
            "population", {"size": "2000", "chunk": "10", "throttle": "0.05"}
        )
        wait_for(lambda: boss.store.get(record.job_id).state == "running")
        boss.cancel(record.job_id)
        done = wait_for(lambda: boss.store.get(record.job_id).terminal
                        and boss.store.get(record.job_id))
        assert done.state == "cancelled"
        assert boss.store.read_result(record.job_id) is None

    def test_deadline_expires_a_slow_job(self, manager):
        boss = manager()
        record, _ = boss.submit(
            "population", {"size": "2000", "chunk": "10", "throttle": "0.05"},
            deadline_s=0.2,
        )
        done = wait_for(lambda: boss.store.get(record.job_id).terminal
                        and boss.store.get(record.job_id))
        assert done.state == "expired"
        assert "deadline" in done.error

    def test_ttl_gc_collects_terminal_jobs(self, manager):
        boss = manager()
        record, _ = boss.submit("population", {"size": "8"}, ttl_s=0.05)
        wait_for(lambda: boss.store.get(record.job_id) is not None
                 and boss.store.get(record.job_id).terminal)
        # The idle runner loop doubles as the GC; the journal disappears.
        wait_for(lambda: boss.store.get(record.job_id) is None)

    def test_transient_failures_retry_then_succeed(self, manager, monkeypatch):
        attempts = []

        def flaky(params, context):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientJobError("try again")
            return {"ok": True}

        self._register(monkeypatch, "flaky-kind", flaky)
        boss = manager()
        record, _ = boss.submit("flaky-kind", {}, max_attempts=5)
        done = wait_for(lambda: boss.store.get(record.job_id).terminal
                        and boss.store.get(record.job_id))
        assert done.state == "succeeded"
        assert done.attempts == 3

    def test_permanent_failure_spends_no_retries(self, manager, monkeypatch):
        def broken(params, context):
            raise ValueError("inherent to the parameters")

        self._register(monkeypatch, "broken-kind", broken)
        boss = manager()
        record, _ = boss.submit("broken-kind", {})
        done = wait_for(lambda: boss.store.get(record.job_id).terminal
                        and boss.store.get(record.job_id))
        assert done.state == "failed"
        assert done.attempts == 1
        assert "inherent" in done.error

    def test_drain_interrupts_and_a_new_manager_resumes(self, manager):
        boss = manager()
        record, _ = boss.submit(
            "population", {"size": "2000", "chunk": "10", "throttle": "0.05"}
        )
        wait_for(lambda: boss.store.get(record.job_id).state == "running")
        assert boss.drain(10.0)
        interrupted = boss.store.get(record.job_id)
        assert interrupted.state == "queued"
        events = [
            json.loads(line)["event"]
            for line in boss.store.events_path(record.job_id)
            .read_text().splitlines()[1:]
        ]
        assert "interrupted" in events
        successor = manager()
        done = wait_for(lambda: successor.store.get(record.job_id).terminal
                        and successor.store.get(record.job_id))
        assert done.state == "succeeded"
        assert successor.store.read_result(record.job_id)["total"] == 2000

    @staticmethod
    def _register(monkeypatch, name, run):
        import repro.serve.jobs as jobs_module

        monkeypatch.setitem(
            jobs_module._JOB_KINDS,
            name,
            JobKind(name=name, summary="test", validate=lambda params: {}, run=run),
        )


class TestKindRegistry:
    def test_builtin_kinds_registered(self):
        assert "survey-costs" in job_kinds()
        assert "population" in job_kinds()
        assert get_job_kind("population").name == "population"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_job_kind(get_job_kind("population"))

    def test_survey_costs_validation_bounds(self):
        validate = get_job_kind("survey-costs").validate
        assert validate({"n": "8"})["n"] == 8
        with pytest.raises(BadRequestError):
            validate({"n": "0"})
        with pytest.raises(BadRequestError):
            validate({"mystery": "1"})


class TestRouterPrefix:
    def test_exact_route_wins_over_prefix(self):
        router = Router()
        router.add("GET", "/v1/jobs", lambda request: "exact")
        router.add_prefix("GET", "/v1/jobs", lambda request: "prefix")
        assert router._match("/v1/jobs")["GET"](None) == "exact"
        assert router._match("/v1/jobs/j-1")["GET"](None) == "prefix"

    def test_prefix_never_matches_siblings(self):
        router = Router()
        router.add_prefix("GET", "/v1/jobs", lambda request: "prefix")
        assert router._match("/v1/jobsx") is None
        assert router._match("/v1/job") is None


@pytest.fixture()
def app(tmp_path):
    """An in-process ServiceApp with the job subsystem enabled."""
    instance = ServiceApp(ServerConfig(
        port=0,
        jobs_dir=str(tmp_path / "jobs"),
        job_runners=1,
        job_poll_s=0.02,
    ))
    yield instance
    instance.shutdown(drain_s=5.0)


def call(app, method, target, body=b""):
    """Dispatch one request; returns (status, payload)."""
    response = app.dispatch(method, target, body)
    return response.status, response.payload


class TestJobsApi:
    def test_submit_poll_result_round_trip(self, app):
        status, payload = call(
            app, "POST", "/v1/jobs",
            json.dumps({"kind": "population", "size": 32, "chunk": 8}).encode(),
        )
        assert status == 202
        assert payload["deduplicated"] is False
        job_id = payload["job"]["id"]

        def finished():
            status, polled = call(app, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            return polled["job"]["state"] in ("succeeded", "failed") and polled

        wait_for(finished)
        status, result = call(app, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert result["total"] == 32

    def test_result_before_completion_is_409_with_retry_after(self, app):
        _, payload = call(
            app, "POST", "/v1/jobs",
            json.dumps({
                "kind": "population", "size": 2000, "chunk": 10, "throttle": 0.05,
            }).encode(),
        )
        job_id = payload["job"]["id"]
        status, error = call(app, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 409
        assert error["error"]["code"] == "conflict"

    def test_submit_dedup_returns_200(self, app):
        body = json.dumps({
            "kind": "population", "size": 8, "idempotency-key": "api-key",
        }).encode()
        status_a, first = call(app, "POST", "/v1/jobs", body)
        status_b, second = call(app, "POST", "/v1/jobs", body)
        assert (status_a, status_b) == (202, 200)
        assert second["deduplicated"] is True
        assert second["job"]["id"] == first["job"]["id"]

    def test_unknown_kind_is_400_listing_kinds(self, app):
        status, payload = call(
            app, "POST", "/v1/jobs", json.dumps({"kind": "nope"}).encode()
        )
        assert status == 400
        assert "population" in payload["error"]["message"]

    def test_unknown_job_is_404(self, app):
        status, payload = call(app, "GET", "/v1/jobs/j-missing")
        assert status == 404
        status, payload = call(app, "DELETE", "/v1/jobs/j-missing")
        assert status == 404

    def test_list_filters_by_state_and_kind(self, app):
        _, payload = call(
            app, "POST", "/v1/jobs", json.dumps({"kind": "population", "size": 8}).encode()
        )
        job_id = payload["job"]["id"]
        wait_for(lambda: call(app, "GET", f"/v1/jobs/{job_id}")[1]["job"]["state"]
                 == "succeeded")
        status, listed = call(app, "GET", "/v1/jobs?state=succeeded")
        assert status == 200
        assert any(job["id"] == job_id for job in listed["jobs"])
        status, listed = call(app, "GET", "/v1/jobs?state=cancelled")
        assert listed["count"] == 0
        status, payload = call(app, "GET", "/v1/jobs?state=bogus")
        assert status == 400

    def test_delete_cancels(self, app):
        _, payload = call(
            app, "POST", "/v1/jobs",
            json.dumps({
                "kind": "population", "size": 2000, "chunk": 10, "throttle": 0.05,
            }).encode(),
        )
        job_id = payload["job"]["id"]
        status, cancelled = call(app, "DELETE", f"/v1/jobs/{job_id}")
        assert status == 200
        assert cancelled["job"]["cancel_requested"] or cancelled["job"]["state"] == "cancelled"
        done = wait_for(lambda: call(app, "GET", f"/v1/jobs/{job_id}")[1]["job"]
                        ["state"] in ("cancelled",) and True)
        assert done

    def test_readyz_reports_jobs_backlog(self, app):
        status, payload = call(app, "GET", "/v1/readyz")
        assert status == 200
        assert payload["jobs"]["runners"] == 1
        assert set(payload["jobs"]["states"]) == {
            "queued", "running", "succeeded", "failed", "cancelled", "expired",
        }

    def test_jobs_disabled_without_jobs_dir(self, tmp_path):
        plain = ServiceApp(ServerConfig(port=0))
        try:
            status, payload = call(plain, "POST", "/v1/jobs", b'{"kind": "population"}')
            assert status == 404
            status, payload = call(plain, "GET", "/v1/readyz")
            assert "jobs" not in payload
        finally:
            plain.shutdown(drain_s=1.0)


class TestJobContextHeartbeat:
    def test_deadline_trips_heartbeat(self, tmp_path):
        from repro.serve.jobs import _JobExpired

        store = JobStore(tmp_path)
        record, _ = store.submit("population", {"size": 8}, deadline_s=5.0)
        now = [record.created_at]
        context = JobContext(record, store, clock=lambda: now[0])
        context.heartbeat()  # within the deadline
        now[0] = record.created_at + 6.0
        with pytest.raises(_JobExpired):
            context.heartbeat()

    def test_cancel_flag_trips_heartbeat(self, tmp_path):
        from repro.serve.jobs import _JobCancelled

        store = JobStore(tmp_path)
        record, _ = store.submit("population", {"size": 8})
        context = JobContext(record, store)
        context.heartbeat()
        store.cancel_flag(record.job_id).write_text("cancelled\n")
        with pytest.raises(_JobCancelled):
            context.heartbeat()
