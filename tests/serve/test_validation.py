"""Unit tests for request validation and the byte-stable encoder."""

import pytest

from repro.serve.errors import BadRequestError
from repro.serve.validation import (
    MAX_BODY_BYTES,
    bool_field,
    choice_field,
    int_field,
    parse_json_body,
    parse_query,
    require_known,
    stable_json,
    string_field,
)


class TestParseQuery:
    def test_decodes_flat_parameters(self):
        assert parse_query("a=1&b=two") == {"a": "1", "b": "two"}

    def test_keeps_blank_values(self):
        assert parse_query("a=") == {"a": ""}

    def test_rejects_repeated_parameters(self):
        with pytest.raises(BadRequestError, match="'a' given more than once"):
            parse_query("a=1&a=2")


class TestParseJsonBody:
    def test_decodes_and_stringifies_scalars(self):
        assert parse_json_body(b'{"ips": 1, "dps": "n", "x": 2.5}') == {
            "ips": "1",
            "dps": "n",
            "x": "2.5",
        }

    def test_empty_body_is_empty_params(self):
        assert parse_json_body(b"") == {}

    def test_rejects_non_object(self):
        with pytest.raises(BadRequestError, match="JSON object"):
            parse_json_body(b"[1, 2]")

    def test_rejects_malformed_json(self):
        with pytest.raises(BadRequestError, match="not valid JSON"):
            parse_json_body(b"{nope")

    def test_rejects_booleans_and_structures(self):
        with pytest.raises(BadRequestError, match="'flag' must be a string or number"):
            parse_json_body(b'{"flag": true}')
        with pytest.raises(BadRequestError, match="'list'"):
            parse_json_body(b'{"list": []}')

    def test_rejects_oversized_bodies(self):
        with pytest.raises(BadRequestError, match="exceeds"):
            parse_json_body(b" " * (MAX_BODY_BYTES + 1))


class TestFields:
    def test_require_known_names_the_strangers(self):
        with pytest.raises(BadRequestError, match="'zps'") as info:
            require_known({"zps": "1"}, ("ips", "dps"))
        assert "expected one of" in str(info.value)

    def test_string_field_required(self):
        with pytest.raises(BadRequestError, match="missing required parameter 'ips'"):
            string_field({}, "ips", required=True)
        assert string_field({}, "ips", default="x") == "x"
        assert string_field({"ips": "n"}, "ips") == "n"

    def test_int_field_bounds_and_type(self):
        assert int_field({"n": "4"}, "n") == 4
        assert int_field({}, "n", default=16) == 16
        with pytest.raises(BadRequestError, match="'n' must be an integer"):
            int_field({"n": "four"}, "n")
        with pytest.raises(BadRequestError, match="'n' must be >= 1"):
            int_field({"n": "0"}, "n", minimum=1)
        with pytest.raises(BadRequestError, match="'n' must be <= 10"):
            int_field({"n": "11"}, "n", maximum=10)

    def test_bool_field_tokens(self):
        for token in ("1", "true", "YES", "on"):
            assert bool_field({"c": token}, "c") is True
        for token in ("0", "false", "No", "off"):
            assert bool_field({"c": token}, "c") is False
        assert bool_field({}, "c") is False
        with pytest.raises(BadRequestError, match="'c' must be a boolean"):
            bool_field({"c": "maybe"}, "c")

    def test_choice_field(self):
        assert choice_field({"t": "65nm"}, "t", ("65nm", "28nm")) == "65nm"
        assert choice_field({}, "t", ("65nm",), default="65nm") == "65nm"
        with pytest.raises(BadRequestError, match="'t' must be one of"):
            choice_field({"t": "3nm"}, "t", ("65nm", "28nm"))


class TestStableJson:
    def test_sorted_compact_newline_terminated(self):
        assert stable_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}\n'

    def test_identical_payloads_identical_bytes(self):
        payload = {"z": 1, "a": {"nested": True}}
        assert stable_json(payload) == stable_json(dict(reversed(payload.items())))

    def test_nan_is_rejected_not_emitted(self):
        with pytest.raises(ValueError):
            stable_json({"x": float("nan")})
