"""Golden test: the derived Table I must match the paper cell by cell."""

import pytest

from repro.core import all_classes
from repro.reporting.tables import TABLE1_HEADER, table1_rows
from tests.golden.paper_data import TABLE1


def test_class_count_is_47():
    assert len(all_classes()) == 47


def test_row_count_matches_paper():
    assert len(table1_rows()) == len(TABLE1) == 47


@pytest.mark.parametrize("expected", TABLE1, ids=[str(r[0]) for r in TABLE1])
def test_every_row_matches_paper(expected):
    serial, gran, ips, dps, ip_ip, ip_dp, ip_im, dp_dm, dp_dp, comment = expected
    cls = all_classes()[serial - 1]
    assert cls.serial == serial
    got = cls.row_cells()
    assert got == (
        f"{serial}.", gran, ips, dps, ip_ip, ip_dp, ip_im, dp_dm, dp_dp, comment
    )


def test_header_matches_paper_columns():
    assert TABLE1_HEADER == (
        "S.N", "Gran.", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM",
        "DP-DM", "DP-DP", "Comments",
    )


def test_ni_rows_are_exactly_11_to_14():
    ni = [cls.serial for cls in all_classes() if not cls.implementable]
    assert ni == [11, 12, 13, 14]


def test_paper_class_families_have_expected_sizes():
    comments = [cls.comment for cls in all_classes()]
    assert comments.count("NI") == 4
    assert sum(1 for c in comments if c.startswith("DMP")) == 4
    assert sum(1 for c in comments if c.startswith("IAP")) == 4
    assert sum(1 for c in comments if c.startswith("IMP")) == 16
    assert sum(1 for c in comments if c.startswith("ISP")) == 16
    assert comments.count("DUP") == comments.count("IUP") == comments.count("USP") == 1
