"""Golden test: flexibility scores must match Table II for all 43 classes."""

import pytest

from repro.core import class_by_name, flexibility, score_signature
from repro.reporting.tables import table2_rows
from tests.golden.paper_data import TABLE2


@pytest.mark.parametrize("name, expected", sorted(TABLE2.items()))
def test_flexibility_matches_paper(name, expected):
    cls = class_by_name(name)
    assert flexibility(cls.signature) == expected


def test_every_named_class_is_covered():
    assert {name for name, _ in table2_rows()} == set(TABLE2)


def test_table2_rows_match_paper_values():
    got = {name: int(value) for name, value in table2_rows()}
    assert got == TABLE2


def test_group_increments_match_paper_headers():
    """The (+0)/(+1)/(+2)/(+3) group annotations are the multiplicity
    points (plus the universal bonus), and every class's score splits
    into that group increment plus its switch count."""
    group_bonus = {
        "DUP": 0, "IUP": 0,
        "DMP": 1, "IAP": 1,
        "IMP": 2, "ISP": 2,
        "USP": 3,
    }
    for name, expected in TABLE2.items():
        code = name.split("-")[0]
        cls = class_by_name(name)
        score = score_signature(cls.signature)
        assert score.multiplicity_points + score.universal_bonus == group_bonus[code]
        assert score.total == expected


def test_most_and_least_flexible_named_classes():
    assert max(TABLE2.values()) == TABLE2["USP"] == 8
    names_at_min = {name for name, value in TABLE2.items() if value == 0}
    assert names_at_min == {"DUP", "IUP"}
    # ISP-XVI is the most flexible instruction-flow class.
    isp_values = {n: v for n, v in TABLE2.items() if n.startswith(("I", "D")) and n != "IUP"}
    assert TABLE2["ISP-XVI"] == 7
