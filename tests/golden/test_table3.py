"""Golden test: the classified survey must match Table III row by row."""

import pytest

from repro.registry import KNOWN_ERRATA, all_architectures, architecture
from repro.reporting.tables import table3_rows
from tests.golden.paper_data import TABLE3, TABLE3_ERRATA


def test_survey_size_and_order():
    names = [rec.name for rec in all_architectures()]
    assert names == [row[0] for row in TABLE3]
    assert len(names) == 25


@pytest.mark.parametrize("row", TABLE3, ids=[r[0] for r in TABLE3])
def test_structural_cells_match_paper(row):
    name, ips, dps, ip_ip, ip_dp, ip_im, dp_dm, dp_dp, _, _ = row
    rec = architecture(name)
    assert (rec.ips, rec.dps) == (ips, dps)
    assert (rec.ip_ip, rec.ip_dp, rec.ip_im, rec.dp_dm, rec.dp_dp) == (
        ip_ip, ip_dp, ip_im, dp_dm, dp_dp
    )


@pytest.mark.parametrize("row", TABLE3, ids=[r[0] for r in TABLE3])
def test_derived_name_matches_paper(row):
    name, *_rest, paper_name, _flex = row
    rec = architecture(name)
    assert rec.derived_name == paper_name


@pytest.mark.parametrize("row", TABLE3, ids=[r[0] for r in TABLE3])
def test_derived_flexibility_matches_paper_or_documented_erratum(row):
    name = row[0]
    paper_flex = row[-1]
    rec = architecture(name)
    if name in TABLE3_ERRATA:
        erratum = TABLE3_ERRATA[name]
        assert paper_flex == erratum["paper_flexibility"]
        assert rec.derived_flexibility == erratum["consistent_flexibility"]
        assert name in KNOWN_ERRATA
    else:
        assert rec.derived_flexibility == paper_flex


def test_flexibility_consistent_with_table2_class_values():
    """Every architecture's flexibility equals its class's Table-II value."""
    from tests.golden.paper_data import TABLE2

    for rec in all_architectures():
        assert rec.derived_flexibility == TABLE2[rec.derived_name]


def test_rendered_rows_use_verbatim_cells():
    rows = table3_rows()
    for rendered, golden in zip(rows, TABLE3):
        assert rendered[0] == golden[0]
        assert rendered[1:8] == tuple(golden[1:8])
        assert rendered[8] == golden[8]


def test_no_undocumented_errata():
    from repro.registry import errata_report

    report = errata_report()
    assert all(line.startswith("known erratum") for line in report), report
    assert len(report) == len(KNOWN_ERRATA) == 1
