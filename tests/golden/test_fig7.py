"""Golden test: the Fig.-7 flexibility comparison and its prose claims."""

from repro.core.naming import MachineType
from repro.registry import flexibility_ranking, most_flexible
from repro.reporting.figures import fig7_series, render_fig7
from tests.golden.paper_data import FIG7_MAX_FLEXIBILITY, FIG7_TOP, TABLE3, TABLE3_ERRATA


def _expected_flex(name: str, paper_value: int) -> int:
    if name in TABLE3_ERRATA:
        return TABLE3_ERRATA[name]["consistent_flexibility"]
    return paper_value


def test_fig7_covers_all_25_architectures():
    names, values = fig7_series()
    assert len(names) == len(values) == 25
    assert set(names) == {row[0] for row in TABLE3}


def test_fig7_is_sorted_descending():
    _, values = fig7_series()
    assert values == sorted(values, reverse=True)


def test_fpga_then_matrix_lead_the_ranking():
    names, values = fig7_series()
    assert tuple(names[:2]) == FIG7_TOP
    assert values[0] == FIG7_MAX_FLEXIBILITY


def test_fig7_values_match_table3():
    names, values = fig7_series()
    expected = {row[0]: _expected_flex(row[0], row[-1]) for row in TABLE3}
    assert dict(zip(names, values)) == expected


def test_most_flexible_overall_is_fpga():
    assert most_flexible().name == "FPGA"


def test_most_flexible_within_instruction_flow_is_matrix():
    entry = most_flexible(within=MachineType.INSTRUCTION_FLOW)
    assert entry.name == "MATRIX"
    assert entry.flexibility == 7


def test_most_flexible_dataflow_entries_are_redefine_and_colt():
    ranked = [
        e
        for e in flexibility_ranking()
        if e.machine_type is MachineType.DATA_FLOW
    ]
    assert {e.name for e in ranked} == {"REDEFINE", "Colt"}
    assert all(e.flexibility == 3 for e in ranked)


def test_render_fig7_contains_every_architecture():
    text = render_fig7()
    for row in TABLE3:
        assert row[0] in text
