"""Unit tests for full and limited crossbars."""

import pytest

from repro.core.errors import ConfigurationError, RoutingError
from repro.interconnect import FullCrossbar, LimitedCrossbar


class TestFullCrossbar:
    def test_full_reachability(self):
        assert FullCrossbar(8, 8).reachability_fraction() == 1.0

    def test_route_two_hops_through_switch(self):
        route = FullCrossbar(4, 4).route(1, 3)
        assert route.path == ("in1", "xbar", "out3")
        assert route.cycles == 1

    def test_connect_and_transfer(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(2, 0)
        assert xbar.configured_source(0) == 2
        assert xbar.transfer(0, [10, 11, 12, 13]) == 12

    def test_transfer_unconnected_raises(self):
        xbar = FullCrossbar(4, 4)
        with pytest.raises(ConfigurationError, match="not connected"):
            xbar.transfer(1, [0, 0, 0, 0])

    def test_transfer_wrong_input_count(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(0, 0)
        with pytest.raises(ConfigurationError, match="expected 4"):
            xbar.transfer(0, [1, 2])

    def test_disconnect(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(1, 1)
        xbar.disconnect(1)
        assert xbar.configured_source(1) is None

    def test_configure_batch_permutation(self):
        xbar = FullCrossbar(4, 4)
        xbar.configure({0: 3, 1: 2, 2: 1, 3: 0})
        values = [100, 101, 102, 103]
        assert [xbar.transfer(d, values) for d in range(4)] == [103, 102, 101, 100]

    def test_configuration_words(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(2, 1)
        words = xbar.configuration_words()
        assert words == [0, 3, 0, 0]  # input k encodes as k+1; 0 = unconnected

    def test_non_square(self):
        xbar = FullCrossbar(8, 2)
        xbar.connect(7, 1)
        assert xbar.configured_source(1) == 7
        with pytest.raises(RoutingError):
            xbar.connect(0, 2)

    def test_cost_accounting_positive(self):
        xbar = FullCrossbar(16, 16)
        assert xbar.area_ge() > 0
        assert xbar.config_bits() == 16 * 5

    def test_validate_permutation_always_ok(self):
        FullCrossbar(4, 4).validate_permutation({0: 3, 3: 0})


class TestLimitedCrossbar:
    def test_window_reachability(self):
        net = LimitedCrossbar(16, window=3)
        assert net.can_route(5, 3)
        assert net.can_route(8, 5)
        assert not net.can_route(9, 5)
        assert not net.can_route(0, 15)

    def test_reachable_inputs_clipped_at_edges(self):
        net = LimitedCrossbar(8, window=3)
        assert list(net.reachable_inputs(0)) == [0, 1, 2, 3]
        assert list(net.reachable_inputs(7)) == [4, 5, 6, 7]
        assert list(net.reachable_inputs(4)) == [1, 2, 3, 4, 5, 6, 7]

    def test_connect_outside_window_raises(self):
        net = LimitedCrossbar(16, window=2)
        with pytest.raises(RoutingError, match="window"):
            net.connect(10, 2)

    def test_connect_inside_window(self):
        net = LimitedCrossbar(16, window=2)
        net.connect(3, 2)
        assert net.configured_source(2) == 3

    def test_validate_permutation(self):
        net = LimitedCrossbar(8, window=1)
        net.validate_permutation({1: 0, 2: 3})
        with pytest.raises(RoutingError):
            net.validate_permutation({0: 7})

    def test_route_raises_outside_window(self):
        with pytest.raises(RoutingError):
            LimitedCrossbar(16, window=3).route(0, 10)

    def test_reachability_fraction_below_one(self):
        assert LimitedCrossbar(16, window=3).reachability_fraction() < 1.0

    def test_cheaper_than_full_crossbar(self):
        full = FullCrossbar(32, 32)
        limited = LimitedCrossbar(32, window=3)
        assert limited.area_ge() < full.area_ge()
        assert limited.config_bits() < full.config_bits()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LimitedCrossbar(8, window=0)
