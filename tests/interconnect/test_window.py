"""Unit tests for the DRRA-style sliding-window interconnect."""

import pytest

from repro.core.errors import RoutingError
from repro.interconnect import SlidingWindow


class TestWindow:
    def test_three_hop_window_matches_drra(self):
        """DRRA: every element reaches 3 hops left and right."""
        net = SlidingWindow(16, hops=3)
        assert list(net.window_of(8)) == [5, 6, 7, 8, 9, 10, 11]
        assert net.in_window(8, 11)
        assert not net.in_window(8, 12)

    def test_edges_clip(self):
        net = SlidingWindow(16, hops=3)
        assert list(net.window_of(0)) == [0, 1, 2, 3]
        assert list(net.window_of(15)) == [12, 13, 14, 15]

    def test_bounds(self):
        net = SlidingWindow(8, hops=2)
        with pytest.raises(RoutingError):
            net.window_of(8)
        with pytest.raises(RoutingError):
            net.in_window(0, 9)

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            SlidingWindow(8, hops=0)


class TestRelay:
    def test_in_window_is_single_cycle(self):
        net = SlidingWindow(16, hops=3)
        assert net.route(4, 7).cycles == 1

    def test_relay_node_sequence(self):
        net = SlidingWindow(16, hops=3)
        assert net.relay_nodes(0, 10) == [0, 3, 6, 9, 10]
        assert net.relay_nodes(10, 0) == [10, 7, 4, 1, 0]

    def test_relay_cycles_grow_with_distance(self):
        net = SlidingWindow(32, hops=3)
        assert net.route(0, 3).cycles == 1
        assert net.route(0, 6).cycles == 2
        assert net.route(0, 31).cycles == 11  # ceil(31/3)

    def test_self_route(self):
        net = SlidingWindow(8, hops=3)
        assert net.route(5, 5).cycles == 1

    def test_everything_reachable(self):
        assert SlidingWindow(32, hops=3).reachability_fraction() == 1.0


class TestCosts:
    def test_cheaper_than_full_crossbar(self):
        from repro.interconnect import FullCrossbar

        window = SlidingWindow(64, hops=3)
        xbar = FullCrossbar(64, 64)
        assert window.area_ge() < xbar.area_ge()
        assert window.config_bits() < xbar.config_bits()

    def test_graph_degree_bounded_by_window(self):
        graph = SlidingWindow(16, hops=3).as_graph()
        assert max(dict(graph.degree()).values()) == 6  # 3 left + 3 right
