"""Unit tests for direct (fixed-wiring) topologies."""

import pytest

from repro.core.connectivity import LinkKind
from repro.core.errors import RoutingError
from repro.interconnect import Broadcast, PointToPoint


class TestPointToPoint:
    def test_identity_routes_only(self):
        net = PointToPoint(8)
        assert net.can_route(3, 3)
        assert not net.can_route(3, 4)

    def test_route_shape(self):
        route = PointToPoint(4).route(2, 2)
        assert route.hops == 1
        assert route.cycles == 1
        assert route.path == ("in2", "out2")

    def test_cross_route_raises(self):
        with pytest.raises(RoutingError, match="point-to-point"):
            PointToPoint(4).route(0, 1)

    def test_out_of_range(self):
        with pytest.raises(RoutingError):
            PointToPoint(4).route(4, 4)
        with pytest.raises(RoutingError):
            PointToPoint(4).can_route(0, -1)

    def test_reachability_fraction(self):
        assert PointToPoint(8).reachability_fraction() == pytest.approx(1 / 8)

    def test_zero_config_bits(self):
        assert PointToPoint(16).config_bits() == 0

    def test_kind(self):
        assert PointToPoint(4).link_kind is LinkKind.DIRECT

    def test_graph_is_perfect_matching(self):
        graph = PointToPoint(6).as_graph()
        assert graph.number_of_edges() == 6
        assert all(graph.degree(node) == 1 for node in graph)

    def test_route_all_statistics(self):
        net = PointToPoint(4)
        stats = net.route_all([(0, 0), (1, 1), (2, 2)])
        assert stats.transfers == 3
        assert stats.mean_hops == 1.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            PointToPoint(0)
        with pytest.raises(ValueError):
            PointToPoint(4, width_bits=0)


class TestBroadcast:
    def test_reaches_every_destination(self):
        net = Broadcast(8)
        assert net.reachability_fraction() == 1.0
        for dst in range(8):
            assert net.route(0, dst).cycles == 1

    def test_single_source(self):
        with pytest.raises(RoutingError):
            Broadcast(8).route(1, 0)

    def test_graph_is_star(self):
        graph = Broadcast(5).as_graph()
        assert graph.degree("in0") == 5

    def test_zero_config(self):
        assert Broadcast(64).config_bits() == 0
