"""Unit tests for the PADDI-2-style hierarchical network."""

import pytest

from repro.core.errors import RoutingError
from repro.interconnect import FullCrossbar, HierarchicalNetwork


class TestStructure:
    def test_paddi2_configuration(self):
        """48 processors in clusters (PADDI-2's hierarchical network)."""
        net = HierarchicalNetwork(48, cluster_size=4)
        assert net.n_clusters == 12
        assert net.cluster_of(0) == 0
        assert net.cluster_of(47) == 11

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalNetwork(10, cluster_size=4)

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            HierarchicalNetwork(8, cluster_size=0)

    def test_cluster_bounds(self):
        with pytest.raises(RoutingError):
            HierarchicalNetwork(8, cluster_size=4).cluster_of(8)


class TestRouting:
    def test_intra_cluster_is_one_cycle(self):
        net = HierarchicalNetwork(16, cluster_size=4)
        route = net.route(0, 3)
        assert route.cycles == 1
        assert route.path == ("p0", "xc0", "p3")

    def test_inter_cluster_is_three_cycles(self):
        net = HierarchicalNetwork(16, cluster_size=4)
        route = net.route(0, 12)
        assert route.cycles == 3
        assert route.path == ("p0", "xc0", "x2", "xc3", "p12")

    def test_full_reachability(self):
        assert HierarchicalNetwork(16, cluster_size=4).reachability_fraction() == 1.0


class TestCosts:
    def test_cheaper_than_flat_crossbar(self):
        flat = FullCrossbar(48, 48)
        hier = HierarchicalNetwork(48, cluster_size=4)
        assert hier.area_ge() < flat.area_ge()
        assert hier.config_bits() < flat.config_bits()

    def test_graph_two_levels(self):
        graph = HierarchicalNetwork(8, cluster_size=4).as_graph()
        assert graph.degree("x2") == 2       # two cluster switches
        assert graph.degree("xc0") == 5      # 4 members + uplink
