"""Unit tests for the 2-D mesh NoC."""

import pytest

from repro.core.errors import RoutingError
from repro.interconnect import Mesh2D


class TestGeometry:
    def test_coords_and_index_roundtrip(self):
        mesh = Mesh2D(4, 6)
        for index in range(24):
            row, col = mesh.coords(index)
            assert mesh.index(row, col) == index

    def test_bounds(self):
        mesh = Mesh2D(4, 4)
        with pytest.raises(RoutingError):
            mesh.coords(16)
        with pytest.raises(RoutingError):
            mesh.index(4, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)


class TestXYRouting:
    def test_path_goes_x_then_y(self):
        mesh = Mesh2D(4, 4)
        path = mesh.xy_path(mesh.index(0, 0), mesh.index(2, 3))
        # First move along the row (x), then down the column (y).
        assert path == [0, 1, 2, 3, 7, 11]

    def test_hop_count_is_manhattan_distance(self):
        mesh = Mesh2D(8, 8)
        route = mesh.route(0, 63)
        assert route.hops == 14  # 7 + 7

    def test_self_route(self):
        mesh = Mesh2D(3, 3)
        assert mesh.route(4, 4).hops == 0

    def test_deterministic(self):
        mesh = Mesh2D(5, 5)
        assert mesh.xy_path(2, 22) == mesh.xy_path(2, 22)


class TestSimulation:
    def test_all_packets_delivered(self):
        mesh = Mesh2D(4, 4)
        packets = [(i, 15 - i) for i in range(16)]
        result = mesh.simulate(packets)
        assert result.delivered == 16

    def test_conflict_free_traffic_takes_max_distance(self):
        mesh = Mesh2D(4, 4)
        # Single packet: cycles == hops.
        result = mesh.simulate([(0, 15)])
        assert result.cycles == 6
        assert result.total_hops == 6

    def test_contention_stretches_makespan(self):
        mesh = Mesh2D(1, 8)
        # Every packet needs the same right-going chain of links.
        congested = mesh.simulate([(0, 7), (0, 7), (0, 7), (0, 7)])
        single = mesh.simulate([(0, 7)])
        assert congested.cycles > single.cycles
        assert congested.max_queue > 0

    def test_empty_and_trivial_batches(self):
        mesh = Mesh2D(2, 2)
        assert mesh.simulate([]).delivered == 0
        result = mesh.simulate([(1, 1)])
        assert result.delivered == 1
        assert result.cycles == 0

    def test_mean_hops(self):
        mesh = Mesh2D(2, 2)
        result = mesh.simulate([(0, 3), (3, 0)])
        assert result.mean_hops == pytest.approx(2.0)


class TestCosts:
    def test_area_linear_in_node_count(self):
        small = Mesh2D(4, 4)
        large = Mesh2D(8, 8)
        assert large.area_ge() == pytest.approx(4 * small.area_ge())

    def test_graph_structure(self):
        graph = Mesh2D(3, 3).as_graph()
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == 12  # 2*3*(3-1)

    def test_single_node_mesh(self):
        mesh = Mesh2D(1, 1)
        assert mesh.as_graph().number_of_nodes() == 1
