"""Unit tests for the shared bus with round-robin arbitration."""

import pytest

from repro.core.errors import RoutingError
from repro.interconnect import SharedBus


class TestRouting:
    def test_any_to_any(self):
        bus = SharedBus(4, 4)
        assert bus.reachability_fraction() == 1.0
        assert bus.route(0, 3).path == ("in0", "bus", "out3")

    def test_port_bounds(self):
        with pytest.raises(RoutingError):
            SharedBus(2, 2).route(2, 0)


class TestArbitration:
    def test_one_grant_per_cycle(self):
        bus = SharedBus(4, 4)
        schedule = bus.arbitrate([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert schedule.makespan == 4
        assert sorted(schedule.grants) == [0, 1, 2, 3]

    def test_serialisation_is_the_contention_cost(self):
        """The same 16 transfers a crossbar does in 1 cycle take a bus 16."""
        bus = SharedBus(16, 16)
        schedule = bus.arbitrate([(m, (m + 1) % 16) for m in range(16)])
        assert schedule.makespan == 16

    def test_round_robin_fairness(self):
        """With two masters contending, grants alternate rather than
        starving one side."""
        bus = SharedBus(2, 2)
        schedule = bus.arbitrate([(0, 0), (0, 0), (1, 1), (1, 1)])
        first_master_cycles = schedule.grants[:2]
        second_master_cycles = schedule.grants[2:]
        # Neither master waits for the other to fully finish.
        assert min(second_master_cycles) < max(first_master_cycles)

    def test_same_master_requests_keep_order(self):
        bus = SharedBus(4, 4)
        schedule = bus.arbitrate([(0, 1), (0, 2), (0, 3)])
        assert schedule.grants[0] < schedule.grants[1] < schedule.grants[2]

    def test_empty_batch(self):
        schedule = SharedBus(2, 2).arbitrate([])
        assert schedule.makespan == 0
        assert schedule.mean_wait == 0.0

    def test_invalid_request_rejected(self):
        with pytest.raises(RoutingError):
            SharedBus(2, 2).arbitrate([(0, 5)])

    def test_mean_wait(self):
        bus = SharedBus(4, 4)
        schedule = bus.arbitrate([(0, 0), (1, 1)])
        assert schedule.mean_wait == pytest.approx(0.5)


class TestCosts:
    def test_config_cheaper_than_crossbar(self):
        from repro.interconnect import FullCrossbar

        bus = SharedBus(16, 16)
        xbar = FullCrossbar(16, 16)
        assert bus.config_bits() < xbar.config_bits()
        assert bus.area_ge() < xbar.area_ge()

    def test_graph_is_double_star(self):
        graph = SharedBus(3, 5).as_graph()
        assert graph.degree("bus") == 8
