"""Interconnect fault state and error paths.

Covers the satellite checklist explicitly: RoutingError on out-of-range
fault injection, ConfigurationError on double-configured crossbar
outputs, LimitedCrossbar window-edge behaviour — plus the structural
contrast the tentpole is built on: switched fabrics reroute, direct
wires and unique-path networks raise :class:`FaultError`.
"""

import pytest

from repro.core.errors import ConfigurationError, FaultError, RoutingError
from repro.interconnect import (
    Broadcast,
    FullCrossbar,
    LimitedCrossbar,
    Mesh2D,
    OmegaNetwork,
    PointToPoint,
)


class TestFaultInjectionValidation:
    """Satellite (c): out-of-range injections are rejected loudly."""

    @pytest.mark.parametrize("bad", [-1, 4, 99])
    def test_fail_input_port_out_of_range(self, bad):
        with pytest.raises(RoutingError, match="out of range"):
            FullCrossbar(4, 4).fail_input_port(bad)

    @pytest.mark.parametrize("bad", [-1, 4, 99])
    def test_fail_output_port_out_of_range(self, bad):
        with pytest.raises(RoutingError, match="out of range"):
            FullCrossbar(4, 4).fail_output_port(bad)

    def test_fail_link_requires_an_existing_wire(self):
        with pytest.raises(RoutingError, match="no link"):
            PointToPoint(4).fail_link("in0", "out3")

    def test_mesh_link_cut_requires_adjacency(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(RoutingError, match="not mesh neighbours"):
            mesh.fail_link_between(0, 8)

    def test_omega_element_coordinates_validated(self):
        omega = OmegaNetwork(8)
        with pytest.raises(RoutingError, match="stage"):
            omega.fail_element(3, 0)
        with pytest.raises(RoutingError, match="element"):
            omega.fail_element(0, 4)


class TestCrossbarConfigurationErrors:
    """Satellite (c): configuration state is guarded, not overwritten."""

    def test_double_configured_output_raises(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(0, 2)
        with pytest.raises(ConfigurationError, match="disconnect it"):
            xbar.connect(1, 2)

    def test_reprogramming_same_source_is_idempotent(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(0, 2)
        xbar.connect(0, 2)  # no-op, not an error
        assert xbar.configured_source(2) == 0

    def test_disconnect_then_reprogram(self):
        xbar = FullCrossbar(4, 4)
        xbar.connect(0, 2)
        xbar.disconnect(2)
        xbar.connect(1, 2)
        assert xbar.configured_source(2) == 1

    def test_limited_crossbar_double_configure_raises(self):
        xbar = LimitedCrossbar(8, window=2)
        xbar.connect(3, 4)
        with pytest.raises(ConfigurationError, match="already configured"):
            xbar.connect(5, 4)

    def test_dead_port_cannot_be_programmed(self):
        xbar = FullCrossbar(4, 4)
        xbar.fail_output_port(1)
        with pytest.raises(FaultError, match="output port 1 has failed"):
            xbar.connect(0, 1)

    def test_transfer_across_dead_port_raises(self):
        xbar = FullCrossbar(2, 2)
        xbar.connect(0, 1)
        xbar.fail_input_port(0)
        with pytest.raises(FaultError, match="failed port"):
            xbar.transfer(1, [7, 8])


class TestLimitedCrossbarWindowEdges:
    """Satellite (c): the sliding window at outputs 0 and n-1."""

    def test_edge_windows_are_clipped_not_wrapped(self):
        xbar = LimitedCrossbar(8, window=2)
        assert list(xbar.reachable_inputs(0)) == [0, 1, 2]
        assert list(xbar.reachable_inputs(7)) == [5, 6, 7]

    def test_edge_output_routes_inside_window(self):
        xbar = LimitedCrossbar(8, window=2)
        assert xbar.can_route(2, 0)
        assert xbar.route(5, 7).cycles == 1

    def test_edge_output_rejects_outside_window(self):
        xbar = LimitedCrossbar(8, window=2)
        with pytest.raises(RoutingError, match="window"):
            xbar.route(3, 0)
        with pytest.raises(RoutingError, match="window"):
            xbar.connect(4, 7)

    def test_dead_edge_output_beats_window_check(self):
        xbar = LimitedCrossbar(8, window=2)
        xbar.fail_output_port(0)
        assert not xbar.can_route(1, 0)
        with pytest.raises(FaultError):
            xbar.route(1, 0)


class TestDirectLinksCannotReroute:
    def test_point_to_point_dead_wire(self):
        p2p = PointToPoint(4)
        p2p.fail_link("in2", "out2")
        assert not p2p.can_route(2, 2)
        with pytest.raises(FaultError, match="cannot route around"):
            p2p.route(2, 2)
        # Other wires are untouched.
        assert p2p.can_route(1, 1)

    def test_broadcast_dead_branch(self):
        tree = Broadcast(4)
        tree.fail_link(tree.input_label(0), tree.output_label(2))
        assert not tree.can_route(0, 2)
        with pytest.raises(FaultError, match="fan-out tree"):
            tree.route(0, 2)
        assert tree.can_route(0, 3)

    def test_broadcast_dead_root_kills_everything(self):
        tree = Broadcast(4)
        tree.fail_input_port(0)
        assert not any(tree.can_route(0, d) for d in range(4))


class TestSwitchedFabricsReroute:
    def test_mesh_detours_around_a_cut_wire(self):
        mesh = Mesh2D(3, 3)
        direct = mesh.route(0, 2)
        mesh.fail_link_between(0, 1)
        detour = mesh.route(0, 2)
        assert detour.cycles > direct.cycles
        assert mesh.can_route(0, 2)

    def test_mesh_detours_around_a_dead_tile(self):
        mesh = Mesh2D(3, 3)
        mesh.fail_node(4)  # the centre
        route = mesh.route(3, 5)  # XY path ran straight through it
        assert "n1_1" not in route.path

    def test_mesh_dead_endpoint_raises(self):
        mesh = Mesh2D(3, 3)
        mesh.fail_node(8)
        with pytest.raises(FaultError):
            mesh.route(0, 8)

    def test_mesh_partition_raises(self):
        mesh = Mesh2D(1, 3)  # a line: cutting the middle splits it
        mesh.fail_node(1)
        with pytest.raises(FaultError):
            mesh.route(0, 2)

    def test_omega_has_no_alternative_path(self):
        omega = OmegaNetwork(8)
        stage, element = omega.path_elements(0, 7)[1]
        omega.fail_element(stage, element)
        assert not omega.can_route(0, 7)
        with pytest.raises(FaultError, match="no alternative path"):
            omega.route(0, 7)

    def test_omega_unaffected_pairs_still_route(self):
        omega = OmegaNetwork(8)
        omega.fail_element(0, 0)
        survivors = [
            (s, d)
            for s in range(8)
            for d in range(8)
            if omega.can_route(s, d)
        ]
        assert survivors  # degraded, not dead
        assert len(survivors) < 64


class TestFaultBookkeeping:
    def test_fault_count_and_repair_all(self):
        mesh = Mesh2D(2, 2)
        mesh.fail_node(0)
        mesh.fail_link_between(2, 3)
        assert mesh.fault_count == 3  # in-port + out-port + link
        mesh.repair_all()
        assert mesh.fault_count == 0
        assert mesh.can_route(0, 3)

    def test_omega_repair_clears_elements(self):
        omega = OmegaNetwork(4)
        omega.fail_element(0, 0)
        omega.fail_input_port(1)
        assert omega.fault_count == 2
        omega.repair_all()
        assert omega.fault_count == 0
        assert omega.can_route(0, 3)

    def test_surviving_graph_drops_cut_links(self):
        p2p = PointToPoint(3)
        full_edges = p2p.as_graph().number_of_edges()
        p2p.fail_link("in1", "out1")
        assert p2p.surviving_graph().number_of_edges() == full_edges - 1
