"""Unit tests for the Omega multistage network."""

import itertools
import random

import networkx as nx
import pytest

from repro.core.errors import RoutingError
from repro.interconnect import FullCrossbar, OmegaNetwork, SharedBus


class TestConstruction:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            OmegaNetwork(6)
        with pytest.raises(ValueError):
            OmegaNetwork(1)

    def test_stage_count(self):
        assert OmegaNetwork(8).stages == 3
        assert OmegaNetwork(64).stages == 6

    def test_element_count(self):
        assert OmegaNetwork(8).element_count() == 12  # (8/2)*3


class TestRouting:
    def test_destination_tag_lands_correctly(self):
        net = OmegaNetwork(16)
        for source in range(16):
            for destination in range(16):
                # path_elements asserts arrival internally
                elements = net.path_elements(source, destination)
                assert len(elements) == 4

    def test_route_latency_is_stage_count(self):
        net = OmegaNetwork(8)
        assert net.route(0, 7).cycles == 3
        assert net.route(5, 5).cycles == 3  # even self-routes traverse

    def test_full_single_route_reachability(self):
        assert OmegaNetwork(8).reachability_fraction() == 1.0

    def test_port_bounds(self):
        with pytest.raises(RoutingError):
            OmegaNetwork(4).route(4, 0)


class TestBlocking:
    def test_identity_and_shifts_are_conflict_free(self):
        net = OmegaNetwork(8)
        assert net.is_conflict_free({i: i for i in range(8)})
        # Uniform cyclic shifts are classic Omega-admissible permutations.
        for shift in range(8):
            perm = {i: (i + shift) % 8 for i in range(8)}
            assert net.is_conflict_free(perm), shift

    def test_some_permutations_block(self):
        net = OmegaNetwork(8)
        blocked = [
            perm
            for perm in map(
                lambda p: dict(enumerate(p)),
                itertools.islice(itertools.permutations(range(8)), 500),
            )
            if not net.is_conflict_free(perm)
        ]
        assert blocked  # Omega is a blocking network

    def test_blocking_fraction_matches_theory(self):
        """Routable permutations on an n-port Omega number
        2^(stages * n/2) settings, but only n! permutations exist; for
        n=8 the routable fraction is 4096/40320 ~ 10.2%."""
        net = OmegaNetwork(8)
        rng = random.Random(42)
        perms = [
            dict(enumerate(rng.sample(range(8), 8))) for _ in range(2000)
        ]
        blocked = net.blocking_fraction(perms)
        assert 0.85 <= blocked <= 0.94

    def test_crossbar_never_blocks_the_same_batches(self):
        """The non-blocking property the crossbar's n^2 area buys."""
        net = OmegaNetwork(8)
        xbar = FullCrossbar(8, 8)
        rng = random.Random(7)
        perm = dict(enumerate(rng.sample(range(8), 8)))
        # The crossbar validates any permutation...
        xbar.validate_permutation({d: s for s, d in perm.items()})
        # ...whether or not the Omega network can realise it.
        net.is_conflict_free(perm)  # must not raise either way

    def test_empty_batch(self):
        assert OmegaNetwork(4).blocking_fraction([]) == 0.0


class TestCosts:
    def test_between_bus_and_crossbar(self):
        n = 32
        omega = OmegaNetwork(n)
        assert SharedBus(n, n).area_ge() < omega.area_ge() < FullCrossbar(n, n).area_ge()

    def test_nlogn_scaling(self):
        small = OmegaNetwork(16).area_ge()
        large = OmegaNetwork(64).area_ge()
        # (64/2*6) / (16/2*4) = 6x elements
        assert large / small == pytest.approx(6.0)

    def test_graph_connected_with_expected_size(self):
        net = OmegaNetwork(8)
        graph = net.as_graph()
        # 8 inputs + 8 outputs + 12 elements
        assert graph.number_of_nodes() == 28
        assert nx.is_connected(graph)
