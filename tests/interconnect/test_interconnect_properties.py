"""Property-based tests for the interconnect substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    FullCrossbar,
    HierarchicalNetwork,
    LimitedCrossbar,
    Mesh2D,
    SharedBus,
    SlidingWindow,
)


@given(
    n=st.integers(min_value=2, max_value=32),
    data=st.data(),
)
def test_crossbar_routes_any_permutation(n, data):
    """A full crossbar realises every permutation (non-blocking)."""
    perm = data.draw(st.permutations(range(n)))
    xbar = FullCrossbar(n, n)
    xbar.configure({dst: src for dst, src in enumerate(perm)})
    values = list(range(100, 100 + n))
    for dst in range(n):
        assert xbar.transfer(dst, values) == values[perm[dst]]


@given(
    rows=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=50)
def test_mesh_delivers_random_traffic(rows, cols, data):
    mesh = Mesh2D(rows, cols)
    n = rows * cols
    count = data.draw(st.integers(min_value=0, max_value=min(n, 8)))
    packets = [
        (
            data.draw(st.integers(min_value=0, max_value=n - 1)),
            data.draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(count)
    ]
    result = mesh.simulate(packets)
    assert result.delivered == count
    # Total hops equal the sum of Manhattan distances (XY is minimal).
    expected_hops = sum(
        abs(mesh.coords(s)[0] - mesh.coords(d)[0])
        + abs(mesh.coords(s)[1] - mesh.coords(d)[1])
        for s, d in packets
    )
    assert result.total_hops == expected_hops


@given(
    n=st.integers(min_value=2, max_value=64),
    hops=st.integers(min_value=1, max_value=8),
    src=st.data(),
)
def test_window_relay_always_lands(n, hops, src):
    net = SlidingWindow(n, hops=hops)
    source = src.draw(st.integers(min_value=0, max_value=n - 1))
    dest = src.draw(st.integers(min_value=0, max_value=n - 1))
    nodes = net.relay_nodes(source, dest)
    assert nodes[0] == source and nodes[-1] == dest
    # every leg stays within the window
    for a, b in zip(nodes, nodes[1:]):
        assert abs(a - b) <= hops


@given(
    masters=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_bus_arbitration_grants_everyone_exactly_once(masters, data):
    bus = SharedBus(masters, masters)
    count = data.draw(st.integers(min_value=0, max_value=16))
    requests = [
        (
            data.draw(st.integers(min_value=0, max_value=masters - 1)),
            data.draw(st.integers(min_value=0, max_value=masters - 1)),
        )
        for _ in range(count)
    ]
    schedule = bus.arbitrate(requests)
    assert schedule.makespan == count
    assert sorted(schedule.grants) == list(range(count))


@given(
    clusters=st.integers(min_value=1, max_value=8),
    size=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_hierarchical_latency_is_one_or_three(clusters, size, data):
    net = HierarchicalNetwork(clusters * size, cluster_size=size)
    total = clusters * size
    a = data.draw(st.integers(min_value=0, max_value=total - 1))
    b = data.draw(st.integers(min_value=0, max_value=total - 1))
    route = net.route(a, b)
    same = net.cluster_of(a) == net.cluster_of(b)
    assert route.cycles == (1 if same else 3)


@given(
    n=st.integers(min_value=2, max_value=64),
    window=st.integers(min_value=1, max_value=16),
)
def test_limited_reachability_monotone_in_window(n, window):
    tight = LimitedCrossbar(n, window=window)
    loose = LimitedCrossbar(n, window=window + 2)
    assert tight.reachability_fraction() <= loose.reachability_fraction()
