"""Unit tests for graph-level interconnect metrics."""

import networkx as nx
import pytest

from repro.interconnect import (
    FullCrossbar,
    Mesh2D,
    PointToPoint,
    SlidingWindow,
    bisection_width,
    diameter,
    mean_distance,
    profile,
)


class TestDiameter:
    def test_mesh_diameter(self):
        assert diameter(Mesh2D(4, 4).as_graph()) == 6

    def test_crossbar_diameter_is_two(self):
        assert diameter(FullCrossbar(8, 8).as_graph()) == 2

    def test_disconnected_uses_component_max(self):
        graph = PointToPoint(4).as_graph()  # 4 disjoint edges
        assert diameter(graph) == 1

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("a")
        assert diameter(graph) == 0


class TestMeanDistance:
    def test_star_mean_distance(self):
        graph = nx.star_graph(4)
        # 4 spokes at distance 1 from hub, 2 from each other.
        assert mean_distance(graph) == pytest.approx((4 * 1 + 6 * 2) / 10)

    def test_empty_graph(self):
        assert mean_distance(nx.Graph()) == 0.0

    def test_chain_longer_than_mesh(self):
        chain = SlidingWindow(16, hops=1).as_graph()
        mesh = Mesh2D(4, 4).as_graph()
        assert mean_distance(chain) > mean_distance(mesh)


class TestBisection:
    def test_path_graph_bisection_is_one(self):
        assert bisection_width(nx.path_graph(8)) == 1

    def test_complete_graph_bisection(self):
        assert bisection_width(nx.complete_graph(8)) == 16

    def test_mesh_bisection(self):
        # 4x4 mesh: cutting between columns 1 and 2 severs 4 edges.
        assert bisection_width(Mesh2D(4, 4).as_graph()) == 4

    def test_degenerate_graphs(self):
        assert bisection_width(nx.Graph()) == 0
        graph = nx.Graph()
        graph.add_node("only")
        assert bisection_width(graph) == 0


class TestProfile:
    def test_profile_fields(self):
        record = profile("mesh", Mesh2D(4, 4))
        assert record.name == "mesh"
        assert record.n_ports == 16
        assert record.diameter == 6
        assert record.reachability == 1.0
        assert len(record.row()) == 8

    def test_profiles_expose_design_tradeoffs(self):
        """The window fabric trades diameter for area against the
        crossbar — both visible in the profiles."""
        xbar = profile("xbar", FullCrossbar(16, 16))
        window = profile("window", SlidingWindow(16, hops=3))
        assert window.area_ge < xbar.area_ge
        assert window.diameter > xbar.diameter
