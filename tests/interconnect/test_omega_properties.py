"""Property-based tests for the Omega network."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import OmegaNetwork


@given(
    log_n=st.integers(min_value=1, max_value=5),
    data=st.data(),
)
def test_destination_tag_routing_always_lands(log_n, data):
    n = 1 << log_n
    net = OmegaNetwork(n)
    source = data.draw(st.integers(0, n - 1))
    destination = data.draw(st.integers(0, n - 1))
    elements = net.path_elements(source, destination)  # asserts arrival
    assert len(elements) == log_n
    route = net.route(source, destination)
    assert route.cycles == log_n


@given(
    log_n=st.integers(min_value=1, max_value=4),
    shift=st.integers(min_value=0, max_value=15),
)
def test_cyclic_shifts_always_admissible(log_n, shift):
    """Uniform shifts are the textbook Omega-routable permutations."""
    n = 1 << log_n
    net = OmegaNetwork(n)
    perm = {i: (i + shift) % n for i in range(n)}
    assert net.is_conflict_free(perm)


@given(log_n=st.integers(min_value=2, max_value=4), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_subsets_of_admissible_permutations_stay_admissible(log_n, seed):
    """Removing transfers can never create a conflict."""
    n = 1 << log_n
    net = OmegaNetwork(n)
    rng = random.Random(seed)
    perm = dict(enumerate(rng.sample(range(n), n)))
    if net.is_conflict_free(perm):
        keep = rng.sample(sorted(perm), k=max(1, n // 2))
        subset = {s: perm[s] for s in keep}
        assert net.is_conflict_free(subset)


@given(log_n=st.integers(min_value=1, max_value=5))
def test_costs_scale_with_element_count(log_n):
    n = 1 << log_n
    net = OmegaNetwork(n)
    elements = (n // 2) * log_n
    assert net.element_count() == elements
    # Each 2x2 element: 2 outputs x 2-bit select (the code space keeps
    # an "unconnected" state), i.e. 4 bits per element.
    assert net.config_bits() == elements * 4
