"""Unit tests for fault policies and their CLI token parser."""

import pytest

from repro.core.errors import FaultError
from repro.faults import FaultPolicy, PolicyKind


class TestConstructors:
    def test_fail_fast(self):
        policy = FaultPolicy.fail_fast()
        assert policy.kind is PolicyKind.FAIL_FAST

    def test_retry_defaults(self):
        policy = FaultPolicy.retry()
        assert policy.kind is PolicyKind.RETRY
        assert policy.max_retries == 3
        assert policy.backoff == 1

    def test_remap_with_spares(self):
        policy = FaultPolicy.remap(spares=2)
        assert policy.kind is PolicyKind.REMAP
        assert policy.spares == 2

    def test_degrade(self):
        assert FaultPolicy.degrade().kind is PolicyKind.DEGRADE

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultPolicy.retry(max_retries=-1)
        with pytest.raises(FaultError):
            FaultPolicy.retry(backoff=0)
        with pytest.raises(FaultError):
            FaultPolicy.remap(spares=-1)


class TestParse:
    @pytest.mark.parametrize(
        "token, kind",
        [
            ("fail-fast", PolicyKind.FAIL_FAST),
            ("failfast", PolicyKind.FAIL_FAST),
            ("retry", PolicyKind.RETRY),
            ("remap", PolicyKind.REMAP),
            ("degrade", PolicyKind.DEGRADE),
        ],
    )
    def test_plain_tokens(self, token, kind):
        assert FaultPolicy.parse(token).kind is kind

    def test_retry_with_budget_and_backoff(self):
        policy = FaultPolicy.parse("retry:5:2")
        assert policy.max_retries == 5
        assert policy.backoff == 2

    def test_remap_with_spares(self):
        assert FaultPolicy.parse("remap:3").spares == 3

    def test_unknown_token(self):
        with pytest.raises(FaultError):
            FaultPolicy.parse("explode")

    def test_bad_argument(self):
        with pytest.raises(FaultError):
            FaultPolicy.parse("retry:many")

    def test_describe_round_trips_the_shape(self):
        assert FaultPolicy.parse("remap:2").describe() == "remap(spares=2)"
        assert "retry" in FaultPolicy.parse("retry:4:2").describe()
