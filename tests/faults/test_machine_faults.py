"""Fault policies threaded through the executable machines.

The behavioural contract under test is the taxonomy's flexibility
argument made operational: remapping requires switched sites, retry
only helps transients, degrade sheds work, fail-fast aborts — and the
accounting (operations, cycles, stats) stays honest throughout.
"""

import pytest

from repro.core.errors import FaultError
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPolicy,
    FaultSeverity,
)
from repro.machine import (
    ArrayProcessor,
    ArraySubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    UniversalMachine,
)
from repro.machine.dataflow import DataflowGraph
from repro.machine.kernels import simd_vector_add, vector_add_reference
from repro.machine.program import Instruction, Opcode, Program


def _count_program(limit: int = 6) -> Program:
    return Program(
        [
            Instruction(Opcode.LDI, rd=1, imm=0),
            Instruction(Opcode.LDI, rd=2, imm=limit),
            Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1),
            Instruction(Opcode.BNE, rs1=1, rs2=2, imm=2),
            Instruction(Opcode.HALT),
        ],
        name="count",
    )


def _transient(cycle: int, target: int, duration: int = 2) -> FaultEvent:
    return FaultEvent(
        cycle=cycle,
        target=target,
        severity=FaultSeverity.TRANSIENT,
        duration=duration,
    )


class TestArrayProcessorFaults:
    def test_fault_free_path_unchanged(self):
        baseline = ArrayProcessor(4).run(_count_program())
        explicit = ArrayProcessor(4).run(_count_program(), faults=None)
        assert explicit.cycles == baseline.cycles
        assert explicit.operations == baseline.operations
        assert "faults_seen" not in explicit.stats

    def test_fail_fast_is_the_default_policy(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=0),))
        with pytest.raises(FaultError, match="fail-fast abort"):
            ArrayProcessor(4).run(_count_program(), faults=plan)

    def test_remap_preserves_operations_and_results(self):
        n_lanes, per_lane = 4, 4
        a = list(range(n_lanes * per_lane))
        b = [3 * v for v in a]
        baseline = ArrayProcessor(n_lanes, ArraySubtype.IAP_IV)
        baseline.scatter(0, a)
        baseline.scatter(64, b)
        clean = baseline.run(simd_vector_add(per_lane))

        plan = FaultPlan((FaultEvent(cycle=3, target=1),))
        faulty = ArrayProcessor(n_lanes, ArraySubtype.IAP_IV)
        faulty.scatter(0, a)
        faulty.scatter(64, b)
        result = faulty.run(
            simd_vector_add(per_lane), faults=plan, policy=FaultPolicy.remap()
        )
        assert result.operations == clean.operations
        assert result.cycles > clean.cycles  # time-multiplexing costs time
        assert result.stats["remap_events"] == 1
        assert result.stats["dead_units"] == [1]
        assert faulty.gather(128, len(a)) == vector_add_reference(a, b)

    def test_remap_needs_a_switched_site(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=0),))
        with pytest.raises(FaultError, match="direct"):
            ArrayProcessor(4, ArraySubtype.IAP_I).run(
                _count_program(), faults=plan, policy=FaultPolicy.remap()
            )

    def test_spares_absorb_deaths_even_on_iap_i(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=0),))
        result = ArrayProcessor(4, ArraySubtype.IAP_I).run(
            _count_program(), faults=plan, policy=FaultPolicy.remap(spares=1)
        )
        assert result.stats["spares_used"] == 1
        assert result.stats["dead_units"] == []

    def test_degrade_sheds_operations(self):
        clean = ArrayProcessor(4).run(_count_program())
        plan = FaultPlan((FaultEvent(cycle=2, target=3),))
        result = ArrayProcessor(4).run(
            _count_program(), faults=plan, policy=FaultPolicy.degrade()
        )
        assert result.operations < clean.operations
        assert result.stats["degraded_units"] == 1
        assert result.stats["achieved_parallelism"] < 4.0

    def test_degrading_every_lane_raises(self):
        plan = FaultPlan(
            tuple(FaultEvent(cycle=2, target=lane) for lane in range(4))
        )
        with pytest.raises(FaultError, match="every lane has failed"):
            ArrayProcessor(4).run(
                _count_program(), faults=plan, policy=FaultPolicy.degrade()
            )

    def test_retry_covers_transients_within_budget(self):
        plan = FaultPlan((_transient(2, 1, duration=2),))
        clean = ArrayProcessor(4).run(_count_program())
        result = ArrayProcessor(4).run(
            _count_program(), faults=plan, policy=FaultPolicy.retry(3)
        )
        assert result.operations == clean.operations
        assert result.stats["retries"] == 2
        assert result.cycles == clean.cycles + 2

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan((_transient(2, 1, duration=5),))
        with pytest.raises(FaultError, match="over the budget"):
            ArrayProcessor(4).run(
                _count_program(), faults=plan, policy=FaultPolicy.retry(1)
            )

    def test_retry_cannot_revive_permanent_faults(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=1),))
        with pytest.raises(FaultError, match="dead silicon"):
            ArrayProcessor(4).run(
                _count_program(), faults=plan, policy=FaultPolicy.retry(10)
            )

    def test_stats_record_nominal_vs_achieved(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=0),))
        result = ArrayProcessor(4).run(
            _count_program(), faults=plan, policy=FaultPolicy.degrade()
        )
        assert result.stats["nominal_parallelism"] == 4.0
        assert 0 < result.stats["achieved_parallelism"] < 4.0
        assert result.stats["fault_policy"] == "degrade"


class TestMultiprocessorFaults:
    def test_remap_needs_ip_im_and_dp_dm_switches(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=1),))
        # IMP-I: every site direct — a dead core's program and memory
        # are both unreachable.
        with pytest.raises(FaultError, match="cannot remap"):
            Multiprocessor(4, MultiprocessorSubtype.IMP_I).run(
                _count_program(), faults=plan, policy=FaultPolicy.remap()
            )
        # IMP-XVI: everything switched — survivors absorb the work.
        result = Multiprocessor(4, MultiprocessorSubtype.IMP_XVI).run(
            _count_program(), faults=plan, policy=FaultPolicy.remap()
        )
        clean = Multiprocessor(4, MultiprocessorSubtype.IMP_XVI).run(
            _count_program()
        )
        assert result.operations == clean.operations
        assert result.cycles > clean.cycles

    def test_degrade_halts_dead_cores(self):
        plan = FaultPlan((FaultEvent(cycle=2, target=2),))
        clean = Multiprocessor(4).run(_count_program())
        result = Multiprocessor(4).run(
            _count_program(), faults=plan, policy=FaultPolicy.degrade()
        )
        assert result.operations < clean.operations
        assert result.stats["degraded_units"] == 1

    def test_port_fault_lands_on_the_network(self):
        from repro.interconnect import FullCrossbar

        network = FullCrossbar(4, 4)
        machine = Multiprocessor(
            4, MultiprocessorSubtype.IMP_XVI, network=network
        )
        plan = FaultPlan(
            (FaultEvent(cycle=1, kind=FaultKind.PORT, target=2),)
        )
        result = machine.run(
            _count_program(), faults=plan, policy=FaultPolicy.degrade()
        )
        assert result.stats["fabric_faults"] == 1
        assert network.output_failed(2)

    def test_dead_network_port_kills_the_send_that_needs_it(self):
        from repro.interconnect import FullCrossbar

        network = FullCrossbar(2, 2)
        machine = Multiprocessor(
            2, MultiprocessorSubtype.IMP_XVI, network=network
        )
        ping = Program(
            [
                Instruction(Opcode.LDI, rd=1, imm=1),  # destination core
                Instruction(Opcode.LDI, rd=2, imm=9),  # payload
                Instruction(Opcode.SEND, rs1=1, rs2=2),
                Instruction(Opcode.HALT),
            ],
            name="ping",
        )
        pong = Program(
            [
                Instruction(Opcode.LDI, rd=1, imm=0),  # source core
                Instruction(Opcode.RECV, rd=2, rs1=1),
                Instruction(Opcode.HALT),
            ],
            name="pong",
        )
        plan = FaultPlan(
            (FaultEvent(cycle=1, kind=FaultKind.PORT, target=1),)
        )
        with pytest.raises(FaultError):
            machine.run([ping, pong], faults=plan, policy=FaultPolicy.degrade())


class TestUniversalMachineFaults:
    def _configured(self):
        graph = DataflowGraph()
        graph.input("a")
        graph.input("b")
        graph.add("s", "add", "a", "b")
        graph.output("y", "s")
        usp = UniversalMachine(2048)
        usp.configure_dataflow(graph, width=8)
        return usp

    def test_remap_keeps_results_and_charges_reconfiguration(self):
        usp = self._configured()
        clean = usp.run_dataflow({"a": 20, "b": 22})
        plan = FaultPlan((FaultEvent(cycle=1, target=5),))
        result = usp.run_dataflow(
            {"a": 20, "b": 22}, faults=plan, policy=FaultPolicy.remap()
        )
        assert result.outputs == clean.outputs
        assert result.cycles == clean.cycles + 1  # one re-place cycle
        assert result.stats["remap_events"] == 1

    def test_usp_always_remaps_even_under_degrade(self):
        usp = self._configured()
        plan = FaultPlan((FaultEvent(cycle=1, target=3),))
        result = usp.run_dataflow(
            {"a": 1, "b": 2}, faults=plan, policy=FaultPolicy.degrade()
        )
        # Fine-granularity fabric: the netlist re-places, values survive.
        assert result.outputs["y"] == 3

    def test_fail_fast_still_aborts(self):
        usp = self._configured()
        plan = FaultPlan((FaultEvent(cycle=1, target=0),))
        with pytest.raises(FaultError):
            usp.run_dataflow({"a": 1, "b": 2}, faults=plan)
