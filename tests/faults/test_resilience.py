"""Tests for the analytic resilience model and the survey-wide sweep.

The acceptance criterion from the issue lives here: under the model,
switched-link classes (IMP-XVI, USP) must retain strictly more
throughput than direct-link classes (IAP-I) at every sampled rate.
"""

import pytest

from repro.analysis import (
    DEFAULT_FAULT_RATES,
    ResiliencePoint,
    can_remap,
    degradation_curve,
    expected_throughput,
    flexibility_rank_correlation,
    render_resilience_table,
    resilience_csv_rows,
    resilience_sweep,
)
from repro.core.errors import FaultError
from repro.core.signature import make_signature
from repro.registry.survey import survey_table


def _iap_i():
    return make_signature(1, "n", ip_dp="1-n", ip_im="1-1", dp_dm="n-n")


def _imp_xvi():
    return make_signature(
        "n", "n", ip_dp="nxn", ip_im="nxn", dp_dm="nxn", dp_dp="nxn"
    )


def _usp():
    return make_signature(
        "v", "v", ip_ip="vxv", ip_dp="vxv", ip_im="vxv", dp_dm="vxv", dp_dp="vxv"
    )


class TestExpectedThroughput:
    def test_clean_fabric_is_full_speed(self):
        for signature in (_iap_i(), _imp_xvi(), _usp()):
            assert expected_throughput(signature, 0.0) == pytest.approx(1.0)

    def test_switched_classes_beat_direct_classes(self):
        """The acceptance ordering: IAP-I < IMP-XVI and IAP-I < USP."""
        for rate in DEFAULT_FAULT_RATES:
            direct = expected_throughput(_iap_i(), rate)
            switched = expected_throughput(_imp_xvi(), rate)
            universal = expected_throughput(_usp(), rate)
            assert direct < switched, f"ordering violated at rate {rate}"
            assert direct < universal, f"ordering violated at rate {rate}"

    def test_spares_help_only_remappable_classes(self):
        rate = 0.1
        imp = _imp_xvi()
        assert expected_throughput(imp, rate, spares=4) > expected_throughput(
            imp, rate, spares=0
        )
        iap = _iap_i()
        assert expected_throughput(iap, rate, spares=4) == pytest.approx(
            expected_throughput(iap, rate, spares=0)
        )

    def test_rate_validation(self):
        with pytest.raises(FaultError):
            expected_throughput(_usp(), -0.1)
        with pytest.raises(FaultError):
            expected_throughput(_usp(), 1.1)

    def test_degradation_curve_is_non_increasing(self):
        for signature in (_iap_i(), _imp_xvi(), _usp()):
            curve = degradation_curve(signature, DEFAULT_FAULT_RATES)
            assert all(a >= b for a, b in zip(curve, curve[1:]))


class TestCanRemap:
    def test_universal_always_remaps(self):
        assert can_remap(_usp())

    def test_mimd_needs_both_switches(self):
        assert can_remap(_imp_xvi())
        imp_i = make_signature(
            "n", "n", ip_dp="n-n", ip_im="n-n", dp_dm="n-n"
        )
        assert not can_remap(imp_i)

    def test_simd_remap_follows_data_switches(self):
        assert not can_remap(_iap_i())
        iap_iv = make_signature(1, "n", ip_dp="1-n", ip_im="1-1", dp_dm="nxn")
        assert can_remap(iap_iv)


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return resilience_sweep()

    def test_covers_the_whole_survey(self, points):
        assert len(points) == len(survey_table())

    def test_sorted_best_first(self, points):
        means = [point.mean_throughput for point in points]
        assert means == sorted(means, reverse=True)

    def test_point_accessors(self, points):
        point = points[0]
        assert isinstance(point, ResiliencePoint)
        assert point.at(DEFAULT_FAULT_RATES[0]) == point.throughput[0]
        with pytest.raises(FaultError):
            point.at(0.999)

    def test_remap_capable_entries_dominate_the_top(self, points):
        top = points[: len(points) // 3]
        assert all(point.remap_capable for point in top)

    def test_flexibility_correlation_is_positive(self, points):
        assert flexibility_rank_correlation(points) > 0

    def test_csv_rows_shape(self, points):
        header, *rows = resilience_csv_rows(points)
        assert header[0] == "rank"
        assert "mean_throughput" in header
        assert len(rows) == len(points)
        assert all(len(row) == len(header) for row in rows)

    def test_render_mentions_spearman(self, points):
        text = render_resilience_table(points)
        assert "Spearman" in text
        assert "FPGA" in text
