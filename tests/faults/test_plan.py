"""Unit tests for fault plans, events and injectors."""

import pytest

from repro.core.errors import FaultError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSeverity,
)


class TestFaultEvent:
    def test_permanent_default(self):
        event = FaultEvent(cycle=3, target=1)
        assert event.is_permanent
        assert event.kind is FaultKind.PE
        assert "permanently" in event.describe()

    def test_transient_needs_duration(self):
        with pytest.raises(FaultError):
            FaultEvent(cycle=1, severity=FaultSeverity.TRANSIENT)

    def test_permanent_rejects_duration(self):
        with pytest.raises(FaultError):
            FaultEvent(cycle=1, duration=2)

    def test_cycle_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultEvent(cycle=0)

    def test_negative_target_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(cycle=1, target=-1)


class TestFaultPlan:
    def test_events_sorted_by_cycle(self):
        plan = FaultPlan(
            (FaultEvent(cycle=9, target=0), FaultEvent(cycle=2, target=1))
        )
        assert [event.cycle for event in plan] == [2, 9]

    def test_truncated_prefix(self):
        plan = FaultPlan(
            tuple(FaultEvent(cycle=c, target=0) for c in (1, 2, 3))
        )
        assert len(plan.truncated(2)) == 2
        assert len(plan.truncated(0)) == 0
        assert len(plan.truncated(99)) == 3

    def test_truncated_rejects_negative(self):
        with pytest.raises(FaultError):
            FaultPlan().truncated(-1)

    def test_of_kind_filters(self):
        plan = FaultPlan((
            FaultEvent(cycle=1, kind=FaultKind.PE, target=0),
            FaultEvent(cycle=2, kind=FaultKind.LINK, target=0),
        ))
        assert len(plan.of_kind(FaultKind.LINK)) == 1
        assert plan.permanent_count == 2

    def test_rate_validated(self):
        with pytest.raises(FaultError):
            FaultPlan(rate=1.5)


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42, 0.2, n_pes=16, n_links=8)
        b = FaultPlan.random(42, 0.2, n_pes=16, n_links=8)
        assert a.events == b.events
        assert a.seed == 42 and a.rate == 0.2

    def test_different_seed_different_plan(self):
        plans = {
            FaultPlan.random(seed, 0.5, n_pes=32).events for seed in range(6)
        }
        assert len(plans) > 1

    def test_rate_zero_is_empty(self):
        assert len(FaultPlan.random(0, 0.0, n_pes=64)) == 0

    def test_rate_one_hits_every_target(self):
        plan = FaultPlan.random(0, 1.0, n_pes=8, n_links=4)
        assert len(plan) == 12

    def test_events_within_horizon(self):
        plan = FaultPlan.random(3, 1.0, n_pes=20, horizon=10)
        assert all(1 <= event.cycle <= 10 for event in plan)

    def test_invalid_arguments(self):
        with pytest.raises(FaultError):
            FaultPlan.random(0, 0.5, n_pes=0)
        with pytest.raises(FaultError):
            FaultPlan.random(0, 2.0, n_pes=4)
        with pytest.raises(FaultError):
            FaultPlan.random(0, 0.5, n_pes=4, horizon=0)


class TestFaultInjector:
    def test_deals_events_in_cycle_order(self):
        plan = FaultPlan((
            FaultEvent(cycle=2, target=0),
            FaultEvent(cycle=2, target=1),
            FaultEvent(cycle=5, target=2),
        ))
        injector = plan.injector()
        assert injector.due(1) == []
        assert [event.target for event in injector.due(2)] == [0, 1]
        assert injector.delivered == 2
        assert not injector.exhausted
        assert [event.target for event in injector.due(10)] == [2]
        assert injector.exhausted

    def test_reset_replays(self):
        plan = FaultPlan((FaultEvent(cycle=1, target=0),))
        injector = FaultInjector(plan)
        assert injector.due(1)
        injector.reset()
        assert injector.due(1)
