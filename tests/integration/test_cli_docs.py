"""docs/cli.md must match the live argparse tree.

The reference is generated, never hand-edited; this test (and the CI
lint job's ``gen_cli_docs.py --check``) makes drift a failure.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "gen_cli_docs.py"


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_cli_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("gen_cli_docs", module)
    spec.loader.exec_module(module)
    return module


def test_cli_md_is_up_to_date():
    generator = _load_generator()
    expected = generator.generate()
    actual = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    assert actual == expected, (
        "docs/cli.md is stale — regenerate with: python scripts/gen_cli_docs.py"
    )


def test_generated_reference_covers_every_subcommand():
    generator = _load_generator()
    text = generator.generate()
    for command in ("classify", "dse", "costs", "faults", "metrics", "report"):
        assert f"## `repro-taxonomy {command}`" in text
    assert "--trace" in text and "--profile" in text
    assert "DO NOT EDIT BY HAND" in text
