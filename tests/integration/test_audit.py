"""Integration tests for the library self-audit."""

import pytest

from repro.audit import AuditCheck, AuditReport, run_audit


class TestFullAudit:
    def test_everything_passes(self):
        report = run_audit()
        assert report.passed, report.summary()

    def test_all_eight_checks_run(self):
        report = run_audit()
        names = [check.name for check in report.checks]
        assert names == [
            "enumeration", "classification", "scoring", "naming",
            "registry", "models", "morphability", "baselines",
        ]

    def test_summary_format(self):
        text = run_audit().summary()
        assert "[PASS] enumeration" in text
        assert "all checks passed" in text


class TestSelectiveAudit:
    def test_subset(self):
        report = run_audit(only={"scoring", "naming"})
        assert len(report.checks) == 2
        assert report.passed

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown audit"):
            run_audit(only={"nonsense"})


class TestReportMechanics:
    def test_failures_listed(self):
        report = AuditReport(
            checks=[
                AuditCheck("good", True, "ok"),
                AuditCheck("bad", False, "broken"),
            ]
        )
        assert not report.passed
        assert [c.name for c in report.failures] == ["bad"]
        assert "1 check(s) FAILED" in report.summary()
