"""Execute the doctests embedded in the Markdown guides under docs/.

CI also runs ``pytest --doctest-glob="*.md" docs/`` directly; this test
puts the same check inside the default suite so a stale guide snippet
fails `pytest tests/` too, not just the extra CI step.
"""

import doctest
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"
GUIDES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_directory_has_guides():
    assert GUIDES, f"no markdown guides found under {DOCS_DIR}"
    names = {path.name for path in GUIDES}
    assert {"index.md", "cli.md", "observability.md"} <= names


@pytest.mark.parametrize("guide", GUIDES, ids=lambda p: p.name)
def test_guide_snippets_execute(guide):
    from repro.obs import trace

    trace.reset()
    trace.disable()
    try:
        results = doctest.testfile(
            str(guide), module_relative=False, verbose=False, encoding="utf-8"
        )
    finally:
        trace.reset()
        trace.disable()
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {guide.name}"
