"""Execute the doctests embedded in the public modules.

Docstrings with examples are API promises; this test keeps them true.
"""

import doctest

import pytest

import repro
import repro.core.signature
import repro.machine.program
import repro.obs.metrics
import repro.obs.profile
import repro.obs.trace


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.core.signature,
        repro.machine.program,
        repro.obs.metrics,
        repro.obs.profile,
        repro.obs.trace,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
