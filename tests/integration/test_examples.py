"""Smoke-test every example script: they must run clean, start to finish.

Examples are documentation that executes; a broken example is a broken
promise to the first person who tries the library.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "observability_tour.py" in names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{example.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{example.name} printed nothing"
