"""Integration: the full 16-subtype IMP capability matrix, executed.

One test drives every IMP sub-type against the three switch-gated
behaviours (messages, shared memory, task pool) and checks the outcome
grid equals exactly what the Table-I switch bits predict — the complete
operational validation of the IMP ladder.
"""

import pytest

from repro.core import class_by_name
from repro.core.errors import CapabilityError
from repro.machine import Multiprocessor, MultiprocessorSubtype, assemble
from repro.machine.kernels import mimd_ring_reduction


def _try(callable_):
    try:
        callable_()
        return True
    except CapabilityError:
        return False


def _messages_work(subtype) -> bool:
    machine = Multiprocessor(2, subtype)
    machine.cores[0].store(0, 1)
    machine.cores[1].store(0, 2)
    return _try(lambda: machine.run(mimd_ring_reduction(2)))


def _shared_memory_works(subtype) -> bool:
    machine = Multiprocessor(2, subtype, bank_size=64)
    program = assemble("ldi r1, 64\ngld r2, r1, 0\nhalt")
    return _try(lambda: machine.run([program, assemble("halt")]))


def _task_pool_works(subtype) -> bool:
    machine = Multiprocessor(2, subtype)
    tasks = [assemble("halt") for _ in range(4)]
    return _try(lambda: machine.run_task_pool(tasks))


@pytest.mark.parametrize("subtype", list(MultiprocessorSubtype),
                         ids=[s.label for s in MultiprocessorSubtype])
def test_behaviour_matches_switch_bits(subtype):
    assert _messages_work(subtype) == subtype.dp_switched
    assert _shared_memory_works(subtype) == subtype.dm_switched
    assert _task_pool_works(subtype) == subtype.im_switched


def test_matrix_covers_every_combination():
    """The 16 sub-types realise all 8 combinations of the three
    behaviour-visible switches (IP-DP is behaviourally transparent)."""
    seen = {
        (s.im_switched, s.dm_switched, s.dp_switched)
        for s in MultiprocessorSubtype
    }
    assert len(seen) == 8


def test_capability_grid_matches_classifier():
    """The machines' refusals line up with the class capability map used
    by the DSE — no drift between simulator and analysis layers."""
    from repro.analysis import capabilities_of_class
    from repro.machine.base import Capability

    for subtype in MultiprocessorSubtype:
        class_caps = capabilities_of_class(subtype.label)
        assert (Capability.MESSAGE_PASSING in class_caps) == subtype.dp_switched
        assert (Capability.GLOBAL_MEMORY in class_caps) == subtype.dm_switched


def test_flexibility_counts_the_behaviours():
    """Within the IMP family, each behaviour-visible switch contributes
    exactly one Table-II flexibility point."""
    from repro.core import flexibility

    for subtype in MultiprocessorSubtype:
        flex = flexibility(class_by_name(subtype.label).signature)
        switches = sum(
            (
                subtype.ip_dp_switched,
                subtype.im_switched,
                subtype.dm_switched,
                subtype.dp_switched,
            )
        )
        assert flex == 2 + switches
