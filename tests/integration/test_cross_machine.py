"""Integration tests: the same computation across all machine families.

The strongest check of the machine substrate: a dot product (and other
kernels) computed by the IUP, the IAP, the IMP, the DMP and the USP all
agree with the pure-Python reference — five machine organisations, one
answer.
"""


from repro.machine import (
    ArrayProcessor,
    ArraySubtype,
    DataflowMachine,
    DataflowSubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    SpatialMachine,
    Uniprocessor,
    UniversalMachine,
    VliwBundle,
    VliwProgram,
    ins,
)
from repro.machine.kernels import (
    dataflow_dot_product,
    dot_product_reference,
    mimd_ring_reduction,
    reduction_reference,
    scalar_dot_product,
    simd_reduction_shuffle,
)

A = [3, 1, 4, 1, 5, 9, 2, 6]
B = [2, 7, 1, 8, 2, 8, 1, 8]
EXPECTED_DOT = dot_product_reference(A, B)


class TestDotProductEverywhere:
    def test_reference_value(self):
        assert EXPECTED_DOT == 157

    def test_iup(self):
        iup = Uniprocessor(memory_size=2048)
        iup.load_memory(0, A)
        iup.load_memory(256, B)
        result = iup.run(scalar_dot_product(8))
        assert result.outputs["registers"][6] == EXPECTED_DOT

    def test_dataflow(self):
        graph = dataflow_dot_product(8)
        inputs = {f"a{i}": A[i] for i in range(8)} | {f"b{i}": B[i] for i in range(8)}
        for n_dps, subtype in [
            (1, DataflowSubtype.DUP),
            (4, DataflowSubtype.DMP_II),
            (4, DataflowSubtype.DMP_IV),
        ]:
            result = DataflowMachine(n_dps, subtype).run(graph, inputs)
            assert result.outputs["dot"] == EXPECTED_DOT

    def test_iap_product_then_shuffle_reduce(self):
        iap = ArrayProcessor(8, ArraySubtype.IAP_II)
        # lane i holds a_i * b_i, then a shuffle tree reduces.
        for lane, (a, b) in enumerate(zip(A, B)):
            iap.lanes[lane].store(0, a * b)
        result = iap.run(simd_reduction_shuffle(8))
        assert result.outputs["registers"][0][3] == EXPECTED_DOT

    def test_imp_ring_reduce(self):
        imp = Multiprocessor(8, MultiprocessorSubtype.IMP_II)
        for core, (a, b) in enumerate(zip(A, B)):
            imp.cores[core].store(0, a * b)
        result = imp.run(mimd_ring_reduction(8))
        assert result.outputs["registers"][0][6] == EXPECTED_DOT

    def test_usp_gate_level(self):
        usp = UniversalMachine(20_000)
        graph = dataflow_dot_product(8)
        usp.configure_dataflow(graph, width=12)
        inputs = {f"a{i}": A[i] for i in range(8)} | {f"b{i}": B[i] for i in range(8)}
        assert usp.run_dataflow(inputs).outputs["dot"] == EXPECTED_DOT

    def test_isp_fused_vliw(self):
        isp = SpatialMachine(2, MultiprocessorSubtype.IMP_II, bank_size=64)
        # Preload each member's bank with half of the products.
        for index in range(4):
            isp.cores[0].store(index, A[index] * B[index])
            isp.cores[1].store(index, A[index + 4] * B[index + 4])
        gid = isp.fuse([0, 1])
        # Wide program: both members accumulate their bank in lockstep.
        bundles = [
            VliwBundle((ins("ldi", rd=6, imm=0), ins("ldi", rd=6, imm=0))),
        ]
        for index in range(4):
            bundles.append(
                VliwBundle((
                    ins("ld", rd=3, rs1=0, imm=index),
                    ins("ld", rd=3, rs1=0, imm=index),
                ))
            )
            bundles.append(
                VliwBundle((
                    ins("add", rd=6, rs1=6, rs2=3),
                    ins("add", rd=6, rs1=6, rs2=3),
                ))
            )
        result = isp.run_fused(gid, VliwProgram(bundles))
        regs = result.outputs["registers"]
        assert regs[0][6] + regs[1][6] == EXPECTED_DOT


class TestReductionAcrossParadigms:
    VALUES = [11, -4, 9, 3, 7, 2, -1, 5]

    def test_simd_vs_mimd_vs_reference(self):
        expected = reduction_reference(self.VALUES)
        iap = ArrayProcessor(8, ArraySubtype.IAP_II)
        for lane, value in zip(iap.lanes, self.VALUES):
            lane.store(0, value)
        simd = iap.run(simd_reduction_shuffle(8)).outputs["registers"][0][3]

        imp = Multiprocessor(8, MultiprocessorSubtype.IMP_II)
        for core, value in zip(imp.cores, self.VALUES):
            core.store(0, value)
        mimd = imp.run(mimd_ring_reduction(8)).outputs["registers"][0][6]

        assert simd == mimd == expected

    def test_cycle_cost_ordering_is_plausible(self):
        """SIMD tree reduction beats the serial MIMD ring in cycles."""
        iap = ArrayProcessor(8, ArraySubtype.IAP_II)
        for lane, value in zip(iap.lanes, self.VALUES):
            lane.store(0, value)
        simd_cycles = iap.run(simd_reduction_shuffle(8)).cycles

        imp = Multiprocessor(8, MultiprocessorSubtype.IMP_II)
        for core, value in zip(imp.cores, self.VALUES):
            core.store(0, value)
        mimd_cycles = imp.run(mimd_ring_reduction(8)).cycles
        assert simd_cycles < mimd_cycles


class TestFlexibilityIsOperational:
    """Classes refuse exactly the programs their switches cannot carry."""

    def test_subtype_capability_matrix(self):
        from repro.core.errors import CapabilityError

        shuffle = simd_reduction_shuffle(4)
        outcomes = {}
        for subtype in ArraySubtype:
            iap = ArrayProcessor(4, subtype)
            for lane in iap.lanes:
                lane.store(0, 1)
            try:
                iap.run(shuffle)
                outcomes[subtype.label] = "ran"
            except CapabilityError:
                outcomes[subtype.label] = "refused"
        assert outcomes == {
            "IAP-I": "refused",
            "IAP-II": "ran",
            "IAP-III": "refused",
            "IAP-IV": "ran",
        }

    def test_refusals_match_classifier_capabilities(self):
        """The DSE capability map agrees with the simulators."""
        from repro.analysis import capabilities_of_class
        from repro.machine import Capability

        for subtype in ArraySubtype:
            machine_caps = ArrayProcessor(4, subtype).capabilities()
            class_caps = capabilities_of_class(subtype.label)
            assert (Capability.LANE_SHUFFLE in machine_caps) == (
                Capability.LANE_SHUFFLE in class_caps
            )
            assert (Capability.GLOBAL_MEMORY in machine_caps) == (
                Capability.GLOBAL_MEMORY in class_caps
            )
