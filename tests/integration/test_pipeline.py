"""Integration tests: the full registry -> classifier -> reporting pipeline."""

import json

from repro.analysis import evaluate_classes, explore, Requirements
from repro.core import classify, flexibility
from repro.registry import all_architectures
from repro.reporting.export import survey_to_json
from repro.reporting.tables import render_table3, table3_rows


class TestSurveyPipeline:
    def test_registry_to_table_roundtrip(self):
        """Every rendered Table-III row is consistent with a fresh
        classification of the parsed record signature."""
        for rec, row in zip(all_architectures(), table3_rows()):
            fresh = classify(rec.signature)
            assert row[8] == fresh.short_name
            assert int(row[9]) == fresh.flexibility

    def test_json_and_text_reports_agree(self):
        payload = json.loads(survey_to_json())
        text = render_table3()
        for arch in payload["architectures"]:
            assert arch["name"] in text
            assert arch["derived_name"] in text

    def test_flexibility_three_ways(self):
        """Record-derived, signature-scored and class-canonical values
        coincide for every architecture."""
        for rec in all_architectures():
            via_record = rec.derived_flexibility
            via_signature = flexibility(rec.signature)
            canonical = rec.classification.taxonomy_class
            assert via_record == via_signature
            if canonical.implementable:
                assert via_signature == flexibility(canonical.signature)


class TestModelsOverSurvey:
    def test_every_surveyed_architecture_costs_out(self):
        """Eq.1/Eq.2 evaluate cleanly for every record's signature."""
        from repro.models import AreaModel, ConfigBitsModel

        area = AreaModel()
        config = ConfigBitsModel()
        for rec in all_architectures():
            assert area.total_ge(rec.signature, n=8) > 0
            assert config.total(rec.signature, n=8) >= 0

    def test_fpga_has_highest_config_overhead_in_survey(self):
        from repro.models import ConfigBitsModel

        config = ConfigBitsModel()
        costs = {
            rec.name: config.total(rec.signature, n=16)
            for rec in all_architectures()
        }
        assert max(costs, key=costs.get) == "FPGA"


class TestDesignLoop:
    def test_dse_recommendation_is_classifiable(self):
        """The DSE answer names a real class that classifies back onto
        itself — the full loop a designer would run."""
        from repro.core import class_by_name

        recommendation = explore(Requirements(min_flexibility=4))
        best = recommendation.best
        assert best is not None
        cls = class_by_name(best.name)
        again = classify(cls.signature)
        assert again.short_name == best.name
        assert again.flexibility == best.flexibility

    def test_evaluate_classes_consistent_with_direct_models(self):
        from repro.core import class_by_name
        from repro.models import AreaModel, ConfigBitsModel

        points = {p.name: p for p in evaluate_classes(n=16)}
        for name in ("IUP", "IMP-II", "ISP-XVI", "USP"):
            cls = class_by_name(name)
            assert points[name].area_ge == AreaModel().total_ge(cls.signature, n=16)
            assert points[name].config_bits == ConfigBitsModel().total(cls.signature, n=16)
