"""Unit tests for the IUP machine."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import Capability, Uniprocessor, assemble
from repro.machine.kernels import (
    dot_product_reference,
    fir_reference,
    scalar_dot_product,
    scalar_fir,
    scalar_vector_add,
    vector_add_reference,
)


@pytest.fixture
def iup():
    return Uniprocessor(memory_size=2048)


class TestKernels:
    def test_vector_add(self, iup):
        a = [1, -2, 3, -4, 5]
        b = [10, 20, 30, 40, 50]
        iup.load_memory(0, a)
        iup.load_memory(256, b)
        iup.run(scalar_vector_add(5))
        assert iup.read_memory(512, 5) == vector_add_reference(a, b)

    def test_dot_product(self, iup):
        a = [2, 4, 6]
        b = [1, 3, 5]
        iup.load_memory(0, a)
        iup.load_memory(256, b)
        result = iup.run(scalar_dot_product(3))
        assert result.outputs["registers"][6] == dot_product_reference(a, b)

    def test_fir(self, iup):
        signal = [1, 2, 3, 4, 5, 6]
        taps = [2, -1]
        iup.load_memory(0, signal)
        iup.load_memory(256, taps)
        iup.run(scalar_fir(6, 2))
        assert iup.read_memory(512, 6) == fir_reference(signal, taps)


class TestBehaviour:
    def test_one_instruction_per_cycle(self, iup):
        result = iup.run(assemble("ldi r1, 1\nldi r2, 2\nhalt"))
        assert result.cycles == 3
        assert result.operations == 3
        assert result.operations_per_cycle == 1.0

    def test_refuses_simd_programs(self, iup):
        with pytest.raises(CapabilityError, match="missing"):
            iup.run(assemble("shuf r1, r2, r3\nhalt"))

    def test_refuses_message_programs(self, iup):
        with pytest.raises(CapabilityError):
            iup.run(assemble("send r1, r2\nhalt"))

    def test_refuses_global_memory_programs(self, iup):
        with pytest.raises(CapabilityError):
            iup.run(assemble("gld r1, r2, 0\nhalt"))

    def test_laneid_is_zero_on_scalar_machine(self, iup):
        result = iup.run(assemble("laneid r5\nhalt"))
        assert result.outputs["registers"][5] == 0

    def test_capabilities(self, iup):
        assert iup.capabilities() == {Capability.INSTRUCTION_EXECUTION}

    def test_reset_clears_state(self, iup):
        iup.run(assemble("ldi r1, 42\nhalt"))
        iup.reset()
        assert iup.core.registers[1] == 0
        assert not iup.core.halted

    def test_runaway_program_guard(self, iup):
        with pytest.raises(ProgramError, match="exceeded"):
            iup.run(assemble("loop:\njmp loop"), max_cycles=50)

    def test_stats_identify_machine(self, iup):
        result = iup.run(assemble("halt"))
        assert result.stats["machine"] == "IUP"
