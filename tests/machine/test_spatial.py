"""Unit tests for the ISP spatial machine (IP fusion / VLIW issue)."""

import pytest

from repro.core.errors import ProgramError
from repro.machine import (
    Capability,
    MultiprocessorSubtype,
    SpatialMachine,
    VliwBundle,
    VliwProgram,
    assemble,
    ins,
)


@pytest.fixture
def isp():
    return SpatialMachine(4, MultiprocessorSubtype.IMP_II)


class TestFusion:
    def test_fuse_returns_group_id(self, isp):
        assert isp.fuse([0, 1]) == 0
        assert isp.fuse([2, 3]) == 1
        assert isp.groups == [(0, 1), (2, 3)]

    def test_cannot_fuse_twice(self, isp):
        isp.fuse([0, 1])
        with pytest.raises(ProgramError, match="already fused"):
            isp.fuse([1, 2])

    def test_fusion_needs_two_members(self, isp):
        with pytest.raises(ProgramError, match="at least two"):
            isp.fuse([0])

    def test_duplicates_rejected(self, isp):
        with pytest.raises(ProgramError, match="duplicate"):
            isp.fuse([0, 0])

    def test_out_of_range(self, isp):
        with pytest.raises(ProgramError, match="out of range"):
            isp.fuse([0, 9])

    def test_defuse(self, isp):
        isp.fuse([0, 1])
        isp.defuse()
        assert isp.groups == []
        assert isp.fuse([0, 1]) == 0

    def test_capabilities_include_composition(self, isp):
        assert Capability.IP_COMPOSITION in isp.capabilities()

    def test_label_is_isp(self, isp):
        assert isp.label == "ISP-II"


class TestVliwProgram:
    def test_bundle_width_consistency(self):
        with pytest.raises(ProgramError, match="inconsistent"):
            VliwProgram([
                VliwBundle((ins("nop"), ins("nop"))),
                VliwBundle((ins("nop"),)),
            ])

    def test_branches_banned_in_data_slots(self):
        with pytest.raises(ProgramError, match="control slot"):
            VliwBundle((ins("jmp", imm=0),))

    def test_control_entries_validated(self):
        bundles = [VliwBundle((ins("nop"),))]
        with pytest.raises(ProgramError, match="out of range"):
            VliwProgram(bundles, control={5: ins("jmp", imm=0)})
        with pytest.raises(ProgramError, match="branch"):
            VliwProgram(bundles, control={0: ins("nop")})
        with pytest.raises(ProgramError, match="targets"):
            VliwProgram(bundles, control={0: ins("jmp", imm=9)})

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            VliwProgram([])


class TestFusedExecution:
    def test_parallel_slots(self, isp):
        gid = isp.fuse([0, 1])
        program = VliwProgram([
            VliwBundle((ins("ldi", rd=1, imm=5), ins("ldi", rd=1, imm=9))),
            VliwBundle((ins("addi", rd=1, rs1=1, imm=1), ins("addi", rd=1, rs1=1, imm=2))),
        ])
        result = isp.run_fused(gid, program)
        regs = result.outputs["registers"]
        assert (regs[0][1], regs[1][1]) == (6, 11)
        assert result.cycles == 2
        assert result.operations == 4
        assert result.stats["issue_width"] == 2

    def test_idle_slots_allowed(self, isp):
        gid = isp.fuse([0, 1, 2])
        program = VliwProgram([
            VliwBundle((ins("ldi", rd=1, imm=5), None, ins("ldi", rd=1, imm=7))),
        ])
        result = isp.run_fused(gid, program)
        assert result.operations == 2

    def test_control_loop(self, isp):
        gid = isp.fuse([0, 1])
        program = VliwProgram(
            [
                VliwBundle((ins("ldi", rd=2, imm=3), ins("ldi", rd=2, imm=0))),
                VliwBundle((
                    ins("addi", rd=2, rs1=2, imm=-1),
                    ins("addi", rd=2, rs1=2, imm=10),
                )),
            ],
            control={1: ins("bne", rs1=2, rs2=0, imm=1)},
        )
        result = isp.run_fused(gid, program)
        regs = result.outputs["registers"]
        assert regs[0][2] == 0       # counter drained on the lead core
        assert regs[1][2] == 30      # member 1 iterated 3 times

    def test_width_mismatch(self, isp):
        gid = isp.fuse([0, 1, 2])
        program = VliwProgram([VliwBundle((ins("nop"), ins("nop")))])
        with pytest.raises(ProgramError, match="width"):
            isp.run_fused(gid, program)

    def test_unknown_group(self, isp):
        with pytest.raises(ProgramError, match="no fused group"):
            isp.run_fused(3, VliwProgram([VliwBundle((ins("nop"),))]))

    def test_unfused_cores_still_run_mimd(self, isp):
        """Fusing 0-1 leaves 2-3 as an ordinary multiprocessor."""
        isp.fuse([0, 1])
        result = isp.run([
            assemble("halt"),
            assemble("halt"),
            assemble("ldi r1, 40\nhalt"),
            assemble("ldi r1, 41\nhalt"),
        ])
        regs = result.outputs["registers"]
        assert (regs[2][1], regs[3][1]) == (40, 41)

    def test_morph_story_wide_then_narrow(self):
        """One ISP morphs: VLIW pair for a kernel, then independent cores
        — the paper's 'size and dimensions can be changed' claim."""
        isp = SpatialMachine(2, MultiprocessorSubtype.IMP_II)
        gid = isp.fuse([0, 1])
        wide = VliwProgram([
            VliwBundle((ins("ldi", rd=1, imm=2), ins("ldi", rd=1, imm=3))),
            VliwBundle((ins("mul", rd=1, rs1=1, rs2=1), ins("mul", rd=1, rs1=1, rs2=1))),
        ])
        isp.run_fused(gid, wide)
        isp.defuse()
        result = isp.run(assemble("addi r1, r1, 100\nhalt"))
        regs = result.outputs["registers"]
        assert (regs[0][1], regs[1][1]) == (104, 109)

    def test_blocking_ops_banned_in_bundles(self, isp):
        gid = isp.fuse([0, 1])
        program = VliwProgram([
            VliwBundle((ins("recv", rd=1, rs1=0), ins("nop"))),
        ])
        with pytest.raises(ProgramError, match="blocking"):
            isp.run_fused(gid, program)


class TestBundleValidation:
    def test_halt_banned_in_data_slots(self):
        with pytest.raises(ProgramError, match="HALT"):
            VliwBundle((ins("halt"),))


class TestResetPreservesNetwork:
    def test_multiprocessor_reset_keeps_network(self):
        from repro.interconnect import FullCrossbar
        from repro.machine import Multiprocessor

        machine = Multiprocessor(
            4, MultiprocessorSubtype.IMP_II, network=FullCrossbar(4, 4)
        )
        network = machine.network
        machine.reset()
        assert machine.network is network
