"""Unit tests for the kernel library references and builders."""

import pytest

from repro.core.errors import ProgramError
from repro.machine.kernels import (
    dataflow_dot_product,
    dataflow_fir,
    dataflow_polynomial,
    dataflow_vector_add,
    dot_product_reference,
    fir_reference,
    mimd_ring_reduction,
    mimd_shared_memory_sum,
    reduction_reference,
    scalar_dot_product,
    scalar_fir,
    scalar_vector_add,
    simd_gather_reverse,
    simd_reduction_shuffle,
    simd_vector_add,
    vector_add_reference,
)


class TestReferences:
    def test_vector_add(self):
        assert vector_add_reference([1, 2], [3, 4]) == [4, 6]
        with pytest.raises(ProgramError):
            vector_add_reference([1], [1, 2])

    def test_dot_product(self):
        assert dot_product_reference([1, 2, 3], [4, 5, 6]) == 32
        with pytest.raises(ProgramError):
            dot_product_reference([1], [])

    def test_reduction(self):
        assert reduction_reference([5, -2, 7]) == 10
        assert reduction_reference([]) == 0

    def test_fir(self):
        assert fir_reference([1, 0, 0], [2, 3]) == [2, 3, 0]
        assert fir_reference([1, 1, 1], [1, 1, 1]) == [1, 2, 3]


class TestDataflowBuilders:
    def test_vector_add_shape(self):
        g = dataflow_vector_add(4)
        assert len(g.input_names) == 8
        assert len(g.output_names) == 4

    def test_dot_product_tree_depth(self):
        g = dataflow_dot_product(8)
        # 8 muls + 7 adds + 1 output + 16 inputs
        assert len(g) == 8 + 7 + 1 + 16

    def test_dot_product_non_power_of_two(self):
        g = dataflow_dot_product(5)
        inputs = {f"a{i}": i + 1 for i in range(5)} | {f"b{i}": 2 for i in range(5)}
        assert g.evaluate(inputs)["dot"] == 2 * (1 + 2 + 3 + 4 + 5)

    def test_fir_matches_reference(self):
        taps = [1, -2, 3]
        signal = [5, 1, 4, 2, 8]
        g = dataflow_fir(len(signal), taps)
        inputs = {f"x{i}": v for i, v in enumerate(signal)}
        got = g.evaluate(inputs)
        expected = fir_reference(signal, taps)
        assert [got[f"y{i}"] for i in range(len(signal))] == expected

    def test_polynomial_horner(self):
        g = dataflow_polynomial([4, 0, 2])  # 2x^2 + 4
        assert g.evaluate({"x": 3})["y"] == 22

    def test_constant_polynomial(self):
        g = dataflow_polynomial([7])
        assert g.evaluate({"x": 100})["y"] == 7

    def test_invalid_sizes(self):
        with pytest.raises(ProgramError):
            dataflow_vector_add(0)
        with pytest.raises(ProgramError):
            dataflow_dot_product(-1)
        with pytest.raises(ProgramError):
            dataflow_fir(0, [1])
        with pytest.raises(ProgramError):
            dataflow_polynomial([])


class TestProgramBuilders:
    def test_scalar_kernels_assemble(self):
        assert len(scalar_vector_add(8)) > 0
        assert len(scalar_dot_product(8)) > 0
        assert len(scalar_fir(8, 3)) > 0

    def test_simd_kernels_assemble(self):
        assert len(simd_vector_add(4)) > 0
        assert len(simd_reduction_shuffle(8)) > 0
        assert len(simd_gather_reverse(4, 1024)) > 0

    def test_mimd_builders_return_per_core_programs(self):
        programs = mimd_ring_reduction(4)
        assert len(programs) == 4
        programs = mimd_shared_memory_sum(4)
        assert len(programs) == 4

    def test_invalid_parameters(self):
        with pytest.raises(ProgramError):
            scalar_vector_add(0)
        with pytest.raises(ProgramError):
            scalar_dot_product(-2)
        with pytest.raises(ProgramError):
            scalar_fir(4, 0)
        with pytest.raises(ProgramError):
            simd_vector_add(0)
        with pytest.raises(ProgramError):
            simd_gather_reverse(1, 64)
        with pytest.raises(ProgramError):
            mimd_ring_reduction(1)
        with pytest.raises(ProgramError):
            mimd_shared_memory_sum(0)
