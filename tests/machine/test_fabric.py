"""Unit tests for the gate-level LUT fabric."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machine import CellConfig, LutFabric


def cfg(sources, table, registered=False):
    return CellConfig(tuple(sources), table, registered=registered)


class TestCellConfig:
    def test_truth_table_bounds(self):
        with pytest.raises(ConfigurationError, match="truth table"):
            CellConfig((("const", 0),), 4)  # 1 input -> 2 patterns -> max 0b11

    def test_source_validation(self):
        with pytest.raises(ConfigurationError):
            CellConfig((("wire", 3),), 0)
        with pytest.raises(ConfigurationError):
            CellConfig((("const", 2),), 0)
        with pytest.raises(ConfigurationError):
            CellConfig((("cell", -1),), 0)
        with pytest.raises(ConfigurationError):
            CellConfig((), 0)


class TestFabricConfiguration:
    def test_arity_limit(self):
        fabric = LutFabric(4, k=2)
        with pytest.raises(ConfigurationError, match="exceed k"):
            fabric.configure_cell(0, cfg([("const", 0)] * 3, 0))

    def test_cell_index_bounds(self):
        fabric = LutFabric(2)
        with pytest.raises(ConfigurationError, match="outside"):
            fabric.configure_cell(2, cfg([("const", 0)], 1))

    def test_dangling_cell_reference(self):
        fabric = LutFabric(2)
        with pytest.raises(ConfigurationError, match="missing cell"):
            fabric.configure_cell(0, cfg([("cell", 7)], 1))

    def test_output_requires_configured_cell(self):
        fabric = LutFabric(2)
        with pytest.raises(ConfigurationError, match="unconfigured"):
            fabric.name_output("y", 0)

    def test_invalid_fabric_parameters(self):
        with pytest.raises(ConfigurationError):
            LutFabric(0)
        with pytest.raises(ConfigurationError):
            LutFabric(8, k=7)

    def test_utilization(self):
        fabric = LutFabric(10)
        fabric.configure_cell(0, cfg([("const", 1)], 0b10))
        assert fabric.used_cells == 1
        assert fabric.utilization == pytest.approx(0.1)

    def test_clear(self):
        fabric = LutFabric(4)
        fabric.configure_cell(0, cfg([("const", 1)], 0b10))
        fabric.name_output("y", 0)
        fabric.clear()
        assert fabric.used_cells == 0
        assert fabric.output_names == ()


class TestCombinational:
    def test_inverter(self):
        fabric = LutFabric(1)
        # NOT(a): output 1 when input is 0.
        fabric.configure_cell(0, cfg([("input", "a")], 0b01))
        fabric.name_output("y", 0)
        assert fabric.step({"a": 0})["y"] == 1
        assert fabric.step({"a": 1})["y"] == 0

    def test_two_level_logic(self):
        fabric = LutFabric(3)
        AND = 0b1000
        OR = 0b1110
        fabric.configure_cell(0, cfg([("input", "a"), ("input", "b")], AND))
        fabric.configure_cell(1, cfg([("input", "c"), ("input", "d")], AND))
        fabric.configure_cell(2, cfg([("cell", 0), ("cell", 1)], OR))
        fabric.name_output("y", 2)
        assert fabric.step({"a": 1, "b": 1, "c": 0, "d": 0})["y"] == 1
        assert fabric.step({"a": 0, "b": 1, "c": 0, "d": 1})["y"] == 0

    def test_combinational_loop_detected(self):
        fabric = LutFabric(2)
        fabric.configure_cell(0, cfg([("cell", 1)], 0b01))
        fabric.configure_cell(1, cfg([("cell", 0)], 0b01))
        with pytest.raises(ConfigurationError, match="loop"):
            fabric.step()

    def test_unbound_input(self):
        fabric = LutFabric(1)
        fabric.configure_cell(0, cfg([("input", "a")], 0b10))
        fabric.name_output("y", 0)
        with pytest.raises(ConfigurationError, match="unbound"):
            fabric.step({})


class TestSequential:
    def test_registered_cell_delays_one_cycle(self):
        fabric = LutFabric(1)
        fabric.configure_cell(0, cfg([("input", "d")], 0b10, registered=True))
        fabric.name_output("q", 0)
        assert fabric.step({"d": 1})["q"] == 1
        assert fabric.step({"d": 0})["q"] == 0

    def test_toggle_flip_flop(self):
        """A registered inverter fed by itself divides the clock."""
        fabric = LutFabric(1)
        fabric.configure_cell(0, cfg([("cell", 0)], 0b01, registered=True))
        fabric.name_output("q", 0)
        seen = [fabric.step()["q"] for _ in range(4)]
        assert seen == [1, 0, 1, 0]

    def test_register_breaks_comb_loop(self):
        fabric = LutFabric(2)
        fabric.configure_cell(0, cfg([("cell", 1)], 0b01))
        fabric.configure_cell(1, cfg([("cell", 0)], 0b10, registered=True))
        fabric.name_output("y", 0)
        fabric.step()  # must not raise

    def test_counter_from_register_and_xor(self):
        """2-bit ripple counter built by hand."""
        fabric = LutFabric(2)
        NOT = 0b01
        XOR = 0b0110
        fabric.configure_cell(0, cfg([("cell", 0)], NOT, registered=True))  # bit0
        fabric.configure_cell(1, cfg([("cell", 1), ("cell", 0)], XOR, registered=True))  # bit1 ^= bit0
        fabric.name_output("b0", 0)
        fabric.name_output("b1", 1)
        values = []
        for _ in range(5):
            out = fabric.step()
            values.append(out["b1"] * 2 + out["b0"])
        assert values == [1, 2, 3, 0, 1]

    def test_peek_and_run(self):
        fabric = LutFabric(1)
        fabric.configure_cell(0, cfg([("cell", 0)], 0b01, registered=True))
        fabric.name_output("q", 0)
        assert fabric.peek("q") == 0
        fabric.run(3)
        assert fabric.peek("q") == 1
        with pytest.raises(ConfigurationError):
            fabric.peek("missing")
        with pytest.raises(ConfigurationError):
            fabric.run(-1)


class TestCostAccounting:
    def test_config_bits_scale_with_cells(self):
        fabric = LutFabric(100, k=4)
        fabric.configure_cell(0, cfg([("const", 0)], 0))
        one = fabric.config_bits()
        fabric.configure_cell(1, cfg([("const", 0)], 0))
        assert fabric.config_bits() == 2 * one / 1  # linear per cell

    def test_full_bitstream_larger_than_used(self):
        fabric = LutFabric(64, k=4)
        fabric.configure_cell(0, cfg([("const", 0)], 0))
        assert fabric.config_bits_full() == 64 * fabric.config_bits_per_cell()
        assert fabric.config_bits() < fabric.config_bits_full()

    def test_per_cell_bits_include_truth_table(self):
        fabric = LutFabric(8, k=4)
        assert fabric.config_bits_per_cell() >= 16  # 2^4 truth-table bits
