"""Unit tests for the SIMD array processor (IAP sub-types)."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import ArrayProcessor, ArraySubtype, assemble
from repro.machine.kernels import (
    reduction_reference,
    simd_gather_reverse,
    simd_reduction_shuffle,
    simd_vector_add,
    vector_add_reference,
)


class TestConstruction:
    def test_needs_multiple_lanes(self):
        with pytest.raises(ValueError, match="at least 2"):
            ArrayProcessor(1)

    def test_capabilities_by_subtype(self):
        from repro.machine import Capability

        assert Capability.LANE_SHUFFLE not in ArrayProcessor(4, ArraySubtype.IAP_I).capabilities()
        assert Capability.LANE_SHUFFLE in ArrayProcessor(4, ArraySubtype.IAP_II).capabilities()
        assert Capability.GLOBAL_MEMORY in ArrayProcessor(4, ArraySubtype.IAP_III).capabilities()
        caps = ArrayProcessor(4, ArraySubtype.IAP_IV).capabilities()
        assert Capability.LANE_SHUFFLE in caps and Capability.GLOBAL_MEMORY in caps


class TestDataLayout:
    def test_scatter_gather_roundtrip(self):
        iap = ArrayProcessor(4)
        values = list(range(13))
        iap.scatter(0, values)
        assert iap.gather(0, 13) == values

    def test_scatter_layout(self):
        iap = ArrayProcessor(4)
        iap.scatter(0, [10, 11, 12, 13, 14])
        assert iap.lanes[0].load(0) == 10
        assert iap.lanes[1].load(0) == 11
        assert iap.lanes[0].load(1) == 14

    def test_global_address_split(self):
        iap = ArrayProcessor(4, bank_size=256)
        assert iap.split_global_address(256 * 2 + 17) == (2, 17)
        with pytest.raises(ProgramError, match="bank"):
            iap.split_global_address(256 * 4)


class TestSimdExecution:
    def test_vector_add_all_subtypes(self):
        a = list(range(8))
        b = [100] * 8
        for subtype in ArraySubtype:
            iap = ArrayProcessor(4, subtype)
            iap.scatter(0, a)
            iap.scatter(64, b)
            iap.run(simd_vector_add(2))
            assert iap.gather(128, 8) == vector_add_reference(a, b)

    def test_lockstep_operation_count(self):
        iap = ArrayProcessor(4)
        result = iap.run(assemble("ldi r1, 1\nhalt"))
        assert result.cycles == 2
        assert result.operations == 8  # 2 instructions x 4 lanes
        assert result.operations_per_cycle == 4.0

    def test_laneid_differs_per_lane(self):
        iap = ArrayProcessor(4)
        result = iap.run(assemble("laneid r1\nhalt"))
        assert [regs[1] for regs in result.outputs["registers"]] == [0, 1, 2, 3]

    def test_divergent_branch_rejected(self):
        iap = ArrayProcessor(4)
        # Branch on the lane id: lane 0 disagrees with the others.
        with pytest.raises(ProgramError, match="divergent"):
            iap.run(assemble("laneid r1\nbne r1, r0, 0\nhalt"))

    def test_uniform_branch_allowed(self):
        iap = ArrayProcessor(4)
        program = assemble("""
            ldi r1, 3
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        result = iap.run(program)
        assert all(regs[1] == 0 for regs in result.outputs["registers"])


class TestShuffle:
    def test_shuffle_reduction(self):
        iap = ArrayProcessor(8, ArraySubtype.IAP_II)
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        for lane, value in zip(iap.lanes, values):
            lane.store(0, value)
        result = iap.run(simd_reduction_shuffle(8))
        assert result.outputs["registers"][0][3] == reduction_reference(values)

    def test_shuffle_is_simultaneous(self):
        """A full-rotation shuffle must not read half-updated registers."""
        iap = ArrayProcessor(4, ArraySubtype.IAP_II)
        program = assemble("""
            laneid r1
            ldi r2, 1
            add r3, r1, r2   ; partner = lane + 1 (mod 4 via shuf)
            mov r4, r1       ; value to exchange = lane id
            shuf r5, r4, r3
            halt
        """)
        result = iap.run(program)
        got = [regs[5] for regs in result.outputs["registers"]]
        assert got == [1, 2, 3, 0]  # each lane sees its neighbour's id

    def test_shuffle_refused_without_switch(self):
        iap = ArrayProcessor(4, ArraySubtype.IAP_I)
        with pytest.raises(CapabilityError, match="missing"):
            iap.run(simd_reduction_shuffle(4))

    def test_shuffle_reduction_needs_power_of_two(self):
        with pytest.raises(ProgramError, match="power-of-two"):
            simd_reduction_shuffle(6)


class TestGlobalMemory:
    def test_gather_reverse(self):
        iap = ArrayProcessor(4, ArraySubtype.IAP_IV, bank_size=512)
        for lane_id, lane in enumerate(iap.lanes):
            lane.store(0, lane_id * 7)
        iap.run(simd_gather_reverse(4, 512))
        assert [lane.load(1) for lane in iap.lanes] == [21, 14, 7, 0]

    def test_global_refused_on_iap_ii(self):
        iap = ArrayProcessor(4, ArraySubtype.IAP_II)
        with pytest.raises(CapabilityError):
            iap.run(simd_gather_reverse(4, 1024))

    def test_global_store(self):
        iap = ArrayProcessor(2, ArraySubtype.IAP_III, bank_size=128)
        # every lane writes its id into bank 0 at (2 + laneid)
        program = assemble("""
            laneid r1
            ldi r2, 2
            add r3, r1, r2
            gst r3, r1, 0
            halt
        """)
        iap.run(program)
        assert iap.lanes[0].load(2) == 0
        assert iap.lanes[0].load(3) == 1


class TestGuards:
    def test_missing_halt(self):
        iap = ArrayProcessor(2)
        with pytest.raises(ProgramError, match="ran past"):
            iap.run(assemble("nop"))

    def test_cycle_guard(self):
        iap = ArrayProcessor(2)
        with pytest.raises(ProgramError, match="exceeded"):
            iap.run(assemble("loop:\njmp loop"), max_cycles=10)

    def test_reset(self):
        iap = ArrayProcessor(2)
        iap.lanes[0].store(0, 5)
        iap.reset()
        assert iap.lanes[0].load(0) == 0
