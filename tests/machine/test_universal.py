"""Unit tests for the USP universal machine (both personalities)."""

import pytest

from repro.core.errors import CapabilityError, ConfigurationError, ProgramError
from repro.machine import (
    DataflowGraph,
    SoftInstruction,
    SoftOp,
    SoftProgram,
    UniversalMachine,
)
from repro.machine.kernels import dataflow_dot_product, dataflow_polynomial


class TestDataflowPersonality:
    def test_simple_graph(self):
        usp = UniversalMachine(2000)
        g = DataflowGraph()
        g.input("a")
        g.input("b")
        g.add("s", "add", "a", "b")
        g.output("y", "s")
        usp.configure_dataflow(g, width=8)
        result = usp.run_dataflow({"a": 20, "b": 22})
        assert result.outputs["y"] == 42
        assert usp.personality == "dataflow"

    def test_matches_reference_modulo_width(self):
        usp = UniversalMachine(8000)
        g = dataflow_dot_product(4)
        usp.configure_dataflow(g, width=12)
        inputs = {"a0": 3, "a1": -1, "a2": 4, "a3": 1, "b0": 2, "b1": 7, "b2": 1, "b3": 8}
        got = usp.run_dataflow(inputs).outputs["dot"]
        ref = g.evaluate(inputs)["dot"]
        assert got == ((ref + (1 << 11)) % (1 << 12)) - (1 << 11)

    def test_horner_polynomial(self):
        usp = UniversalMachine(8000)
        g = dataflow_polynomial([1, 2, 3])  # 3x^2 + 2x + 1
        usp.configure_dataflow(g, width=12)
        assert usp.run_dataflow({"x": 5}).outputs["y"] == 86

    def test_negative_values_two_complement(self):
        usp = UniversalMachine(2000)
        g = DataflowGraph()
        g.input("a")
        g.add("n", "neg", "a")
        g.output("y", "n")
        usp.configure_dataflow(g, width=8)
        assert usp.run_dataflow({"a": 5}).outputs["y"] == -5

    def test_min_max_synthesis(self):
        usp = UniversalMachine(4000)
        g = DataflowGraph()
        g.input("a")
        g.input("b")
        g.add("lo", "min", "a", "b")
        g.add("hi", "max", "a", "b")
        g.output("ylo", "lo")
        g.output("yhi", "hi")
        usp.configure_dataflow(g, width=8)
        out = usp.run_dataflow({"a": 9, "b": 4}).outputs
        assert (out["ylo"], out["yhi"]) == (4, 9)

    def test_div_not_synthesisable(self):
        usp = UniversalMachine(2000)
        g = DataflowGraph()
        g.input("a")
        g.const("c", 2)
        g.add("q", "div", "a", "c")
        g.output("y", "q")
        with pytest.raises(ConfigurationError, match="not synthesisable"):
            usp.configure_dataflow(g)

    def test_width_bounds(self):
        usp = UniversalMachine(2000)
        g = DataflowGraph()
        g.input("a")
        g.output("y", "a")
        with pytest.raises(ConfigurationError, match="width"):
            usp.configure_dataflow(g, width=1)

    def test_run_without_configuration(self):
        with pytest.raises(CapabilityError, match="not configured"):
            UniversalMachine(100).run_dataflow({})

    def test_unbound_inputs(self):
        usp = UniversalMachine(2000)
        g = DataflowGraph()
        g.input("a")
        g.output("y", "a")
        usp.configure_dataflow(g, width=4)
        with pytest.raises(ProgramError, match="unbound"):
            usp.run_dataflow({})

    def test_config_bits_reported(self):
        usp = UniversalMachine(4000)
        g = dataflow_dot_product(2)
        cells = usp.configure_dataflow(g, width=8)
        assert cells > 0
        assert usp.config_bits_used() > cells * 16  # > truth-table bits alone


class TestSoftProcessorPersonality:
    def test_straightline_program(self):
        usp = UniversalMachine(1000)
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 7),
            SoftInstruction(SoftOp.ADD, 30),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        result = usp.run_soft_processor()
        assert result.outputs["acc"] == 37
        assert usp.personality == "soft-processor"

    def test_loop_matches_reference_cycles(self):
        usp = UniversalMachine(1000)
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 10),
            SoftInstruction(SoftOp.ADD, 255),  # acc -= 1 mod 256
            SoftInstruction(SoftOp.JNZ, 1),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        result = usp.run_soft_processor()
        ref_acc, ref_cycles = program.reference_run()
        assert result.outputs["acc"] == ref_acc == 0
        assert result.cycles == ref_cycles

    def test_jnz_not_taken_when_zero(self):
        usp = UniversalMachine(1000)
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 0),
            SoftInstruction(SoftOp.JNZ, 0),   # never taken
            SoftInstruction(SoftOp.ADD, 5),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        assert usp.run_soft_processor().outputs["acc"] == 5

    def test_accumulator_wraps_mod_256(self):
        usp = UniversalMachine(1000)
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 200),
            SoftInstruction(SoftOp.ADD, 100),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        assert usp.run_soft_processor().outputs["acc"] == 44

    def test_program_validation(self):
        with pytest.raises(ProgramError):
            SoftProgram([])
        with pytest.raises(ProgramError):
            SoftProgram([SoftInstruction(SoftOp.LDI, 0)] * 17)
        with pytest.raises(ProgramError):
            SoftInstruction(SoftOp.LDI, 300)
        with pytest.raises(ProgramError):
            SoftInstruction(SoftOp.JNZ, 20)

    def test_run_without_configuration(self):
        with pytest.raises(CapabilityError):
            UniversalMachine(100).run_soft_processor()

    def test_runaway_guard(self):
        usp = UniversalMachine(1000)
        # Infinite loop: acc stays 1, JNZ to itself... use LDI 1; JNZ 1.
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 1),
            SoftInstruction(SoftOp.JNZ, 1),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        with pytest.raises(ProgramError, match="max_cycles"):
            usp.run_soft_processor(max_cycles=50)


class TestReconfiguration:
    def test_same_fabric_morphs_between_paradigms(self):
        """The USP story: one fabric, both machine types."""
        usp = UniversalMachine(8000)
        g = dataflow_dot_product(2)
        usp.configure_dataflow(g, width=8)
        df = usp.run_dataflow({"a0": 2, "a1": 3, "b0": 4, "b1": 5})
        assert df.outputs["dot"] == 23
        program = SoftProgram([
            SoftInstruction(SoftOp.LDI, 23),
            SoftInstruction(SoftOp.HALT),
        ])
        usp.configure_soft_processor(program)
        cpu = usp.run_soft_processor()
        assert cpu.outputs["acc"] == 23
        # and back again
        usp.configure_dataflow(g, width=8)
        assert usp.run_dataflow({"a0": 1, "a1": 1, "b0": 1, "b1": 1}).outputs["dot"] == 2

    def test_dataflow_run_refused_in_cpu_mode(self):
        usp = UniversalMachine(2000)
        usp.configure_soft_processor(
            SoftProgram([SoftInstruction(SoftOp.HALT)])
        )
        with pytest.raises(CapabilityError):
            usp.run_dataflow({})

    def test_capabilities_are_universal(self):
        from repro.machine import Capability

        assert UniversalMachine(16).capabilities() == set(Capability)

    def test_soft_cpu_overhead_dwarfs_hard_cpu(self):
        """The flexibility/overhead trade, measured: the soft CPU costs
        orders of magnitude more configuration than a hard IUP's Eq.-2
        estimate."""
        from repro.core import class_by_name
        from repro.models.configbits import ConfigBitsModel

        usp = UniversalMachine(1000)
        usp.configure_soft_processor(SoftProgram([SoftInstruction(SoftOp.HALT)]))
        soft_bits = usp.config_bits_used()
        hard_bits = ConfigBitsModel().total(class_by_name("IUP").signature, n=1)
        assert soft_bits > 10 * hard_bits
