"""Unit tests for dataflow graphs and the DUP/DMP machines."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import DataflowGraph, DataflowMachine, DataflowSubtype, DFOp


def diamond() -> DataflowGraph:
    """(a+b) * (a-b) — a diamond-shaped graph."""
    g = DataflowGraph("diamond")
    g.input("a")
    g.input("b")
    g.add("sum", "add", "a", "b")
    g.add("diff", "sub", "a", "b")
    g.add("prod", "mul", "sum", "diff")
    g.output("y", "prod")
    return g


class TestGraphConstruction:
    def test_arity_enforced(self):
        g = DataflowGraph()
        g.input("a")
        with pytest.raises(ProgramError, match="takes 2"):
            g.add("bad", "add", "a")

    def test_const_needs_value(self):
        g = DataflowGraph()
        with pytest.raises(ProgramError, match="needs a value"):
            g.add("c", DFOp.CONST)

    def test_non_const_rejects_value(self):
        g = DataflowGraph()
        g.input("a")
        with pytest.raises(ProgramError, match="literal"):
            g.add("n", DFOp.NEG, "a", value=3)

    def test_unknown_input_reference(self):
        g = DataflowGraph()
        with pytest.raises(ProgramError, match="unknown input"):
            g.add("x", "neg", "ghost")

    def test_duplicate_node_id(self):
        g = DataflowGraph()
        g.input("a")
        with pytest.raises(ProgramError, match="duplicate"):
            g.input("a")

    def test_output_required_for_validation(self):
        g = DataflowGraph()
        g.input("a")
        with pytest.raises(ProgramError, match="OUTPUT"):
            g.validate()

    def test_edges_and_counts(self):
        g = diamond()
        assert len(g) == 6
        assert g.operator_count() == 4  # everything except the 2 inputs
        assert ("a", "sum") in g.edges()


class TestReferenceEvaluation:
    def test_diamond(self):
        assert diamond().evaluate({"a": 7, "b": 3}) == {"y": 40}

    def test_all_operators(self):
        g = DataflowGraph()
        g.input("a")
        g.input("b")
        for op in ("add", "sub", "mul", "min", "max", "and", "or", "xor"):
            g.add(op, op, "a", "b")
            g.output(f"o_{op}", op)
        g.add("neg", "neg", "a")
        g.output("o_neg", "neg")
        got = g.evaluate({"a": 12, "b": 5})
        assert got == {
            "o_add": 17, "o_sub": 7, "o_mul": 60, "o_min": 5, "o_max": 12,
            "o_and": 4, "o_or": 13, "o_xor": 9, "o_neg": -12,
        }

    def test_div_semantics(self):
        g = DataflowGraph()
        g.input("a")
        g.const("c", -2)
        g.add("q", "div", "a", "c")
        g.output("y", "q")
        assert g.evaluate({"a": 7})["y"] == -3  # truncation toward zero

    def test_div_by_zero(self):
        g = DataflowGraph()
        g.input("a")
        g.const("z", 0)
        g.add("q", "div", "a", "z")
        g.output("y", "q")
        with pytest.raises(ProgramError, match="division by zero"):
            g.evaluate({"a": 1})

    def test_unbound_inputs(self):
        with pytest.raises(ProgramError, match="unbound"):
            diamond().evaluate({"a": 1})


class TestMachineExecution:
    @pytest.mark.parametrize(
        "n_dps, subtype",
        [
            (1, DataflowSubtype.DUP),
            (2, DataflowSubtype.DMP_II),
            (3, DataflowSubtype.DMP_III),
            (4, DataflowSubtype.DMP_IV),
        ],
    )
    def test_outputs_match_reference(self, n_dps, subtype):
        machine = DataflowMachine(n_dps, subtype)
        result = machine.run(diamond(), {"a": 9, "b": 4})
        assert result.outputs == diamond().evaluate({"a": 9, "b": 4})
        assert result.operations == diamond().operator_count()

    def test_single_dp_forces_dup(self):
        machine = DataflowMachine(1)
        assert machine.subtype is DataflowSubtype.DUP

    def test_dup_with_many_dps_rejected(self):
        with pytest.raises(ValueError):
            DataflowMachine(4, DataflowSubtype.DUP)

    def test_parallelism_speeds_up_wide_graphs(self):
        from repro.machine.kernels import dataflow_vector_add

        g = dataflow_vector_add(16)
        inputs = {f"a{i}": i for i in range(16)} | {f"b{i}": 1 for i in range(16)}
        serial = DataflowMachine(1).run(g, inputs)
        parallel = DataflowMachine(8, DataflowSubtype.DMP_IV).run(g, inputs)
        assert parallel.cycles < serial.cycles
        assert parallel.outputs == serial.outputs

    def test_dmp1_refuses_cross_partition_graphs(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_I)
        with pytest.raises(CapabilityError, match="no inter-DP path"):
            machine.run(diamond(), {"a": 1, "b": 2})

    def test_dmp1_accepts_partitionable_placement(self):
        from repro.machine.kernels import dataflow_vector_add

        g = dataflow_vector_add(2)
        placement = {
            "a0": 0, "b0": 0, "s0": 0, "y0": 0,
            "a1": 1, "b1": 1, "s1": 1, "y1": 1,
        }
        machine = DataflowMachine(2, DataflowSubtype.DMP_I, placement=placement)
        result = machine.run(g, {"a0": 1, "b0": 2, "a1": 3, "b1": 4})
        assert result.outputs == {"y0": 3, "y1": 7}

    def test_communication_latency_ordering(self):
        """DP-DP tokens (DMP-II) beat memory-mediated ones (DMP-III)."""
        from repro.machine.kernels import dataflow_dot_product

        g = dataflow_dot_product(8)
        inputs = {f"a{i}": 1 for i in range(8)} | {f"b{i}": 2 for i in range(8)}
        via_dp = DataflowMachine(4, DataflowSubtype.DMP_II).run(g, inputs)
        via_dm = DataflowMachine(4, DataflowSubtype.DMP_III).run(g, inputs)
        assert via_dp.cycles <= via_dm.cycles
        assert via_dp.outputs == via_dm.outputs

    def test_placement_validation(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_IV, placement={"ghost": 0})
        with pytest.raises(ProgramError, match="unknown nodes"):
            machine.run(diamond(), {"a": 1, "b": 2})

    def test_placement_must_cover_all_nodes(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_IV, placement={"a": 0})
        with pytest.raises(ProgramError, match="misses"):
            machine.run(diamond(), {"a": 1, "b": 2})

    def test_placement_range_check(self):
        g = diamond()
        full = {node: 5 for node in g.nodes}
        machine = DataflowMachine(2, DataflowSubtype.DMP_IV, placement=full)
        with pytest.raises(ProgramError, match="exceeds"):
            machine.run(g, {"a": 1, "b": 2})

    def test_unbound_inputs_rejected(self):
        with pytest.raises(ProgramError, match="unbound"):
            DataflowMachine(2, DataflowSubtype.DMP_IV).run(diamond(), {"a": 1})

    def test_capabilities(self):
        from repro.machine import Capability

        dmp4 = DataflowMachine(4, DataflowSubtype.DMP_IV)
        caps = dmp4.capabilities()
        assert Capability.DATAFLOW_EXECUTION in caps
        assert Capability.LANE_SHUFFLE in caps
        assert Capability.GLOBAL_MEMORY in caps
        dup = DataflowMachine(1)
        assert Capability.DATA_PARALLEL not in dup.capabilities()

    def test_invalid_machine_size(self):
        with pytest.raises(ValueError):
            DataflowMachine(0)
