"""Tests for streaming dataflow execution and the IMP task pool."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import (
    DataflowMachine,
    DataflowSubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    assemble,
)
from repro.machine.kernels import dataflow_dot_product, dataflow_polynomial


class TestStreamingDataflow:
    def setup_method(self):
        self.graph = dataflow_dot_product(4)
        self.waves = [
            {f"a{i}": w + i for i in range(4)} | {f"b{i}": 2 for i in range(4)}
            for w in range(6)
        ]

    def test_per_wave_outputs_match_references(self):
        machine = DataflowMachine(4, DataflowSubtype.DMP_IV)
        result = machine.run_stream(self.graph, self.waves)
        got = [wave["dot"] for wave in result.outputs["waves"]]
        expected = [self.graph.evaluate(w)["dot"] for w in self.waves]
        assert got == expected

    def test_pipelining_beats_serial_execution(self):
        """Overlapping waves on idle DPs is faster than running them
        back to back — the PipeRench/Colt streaming story."""
        machine = DataflowMachine(4, DataflowSubtype.DMP_IV)
        single = machine.run(self.graph, self.waves[0]).cycles
        pipelined = machine.run_stream(self.graph, self.waves).cycles
        assert pipelined < single * len(self.waves)

    def test_throughput_stat(self):
        machine = DataflowMachine(4, DataflowSubtype.DMP_IV)
        result = machine.run_stream(self.graph, self.waves)
        assert result.stats["waves"] == 6
        assert result.stats["throughput_waves_per_cycle"] == pytest.approx(
            6 / result.cycles
        )

    def test_single_wave_stream_equals_plain_run(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_II)
        plain = machine.run(self.graph, self.waves[0])
        stream = machine.run_stream(self.graph, [self.waves[0]])
        assert stream.outputs["waves"][0] == plain.outputs

    def test_wider_machines_stream_faster(self):
        narrow = DataflowMachine(2, DataflowSubtype.DMP_IV)
        wide = DataflowMachine(8, DataflowSubtype.DMP_IV)
        assert (
            wide.run_stream(self.graph, self.waves).cycles
            <= narrow.run_stream(self.graph, self.waves).cycles
        )

    def test_streaming_works_with_constants(self):
        graph = dataflow_polynomial([1, 2])  # 2x + 1
        machine = DataflowMachine(2, DataflowSubtype.DMP_II)
        result = machine.run_stream(graph, [{"x": 1}, {"x": 5}, {"x": -3}])
        assert [w["y"] for w in result.outputs["waves"]] == [3, 11, -5]

    def test_empty_stream_rejected(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_II)
        with pytest.raises(ProgramError, match="at least one"):
            machine.run_stream(self.graph, [])

    def test_incomplete_wave_rejected(self):
        machine = DataflowMachine(2, DataflowSubtype.DMP_II)
        with pytest.raises(ProgramError, match="wave 1 misses"):
            machine.run_stream(self.graph, [self.waves[0], {"a0": 1}])


class TestTaskPool:
    def _tasks(self, count):
        return [
            assemble(f"ldi r1, {k}\naddi r1, r1, 100\nhalt", name=f"task{k}")
            for k in range(count)
        ]

    def test_pool_needs_im_switch(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        with pytest.raises(CapabilityError, match="IP-IM switch"):
            imp.run_task_pool(self._tasks(4))
        # IMP-IV has rich DP-side switches but still a direct IP-IM.
        imp4 = Multiprocessor(2, MultiprocessorSubtype.IMP_IV)
        with pytest.raises(CapabilityError):
            imp4.run_task_pool(self._tasks(4))

    def test_pool_drains_more_tasks_than_cores(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_V)
        result = imp.run_task_pool(self._tasks(7))
        assert result.stats["tasks"] == 7
        completed = {task for task, _, _ in result.stats["schedule"]}
        assert completed == set(range(7))

    def test_schedule_is_greedy_and_balanced(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_V)
        result = imp.run_task_pool(self._tasks(6))
        per_core = {}
        for task, core, _cycle in result.stats["schedule"]:
            per_core.setdefault(core, []).append(task)
        # Equal-length tasks split evenly across the two cores.
        assert sorted(len(v) for v in per_core.values()) == [3, 3]

    def test_pool_faster_than_sequential_on_one_core(self):
        """The parallel pool's makespan beats any single core."""
        tasks = self._tasks(8)
        imp = Multiprocessor(4, MultiprocessorSubtype.IMP_V)
        pooled = imp.run_task_pool(tasks)
        single_core_cycles = sum(len(t) for t in tasks)
        assert pooled.cycles < single_core_cycles

    def test_fewer_tasks_than_cores(self):
        imp = Multiprocessor(4, MultiprocessorSubtype.IMP_V)
        result = imp.run_task_pool(self._tasks(2))
        assert len(result.stats["schedule"]) == 2

    def test_variable_length_tasks_rebalance(self):
        """A core that finishes a short task immediately takes another."""
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_V)
        short = assemble("halt", name="short")
        long = assemble("\n".join(["nop"] * 10) + "\nhalt", name="long")
        result = imp.run_task_pool([long, short, short, short])
        per_core: dict[int, int] = {}
        for _task, core, _cycle in result.stats["schedule"]:
            per_core[core] = per_core.get(core, 0) + 1
        # The core stuck on the long task runs 1; the other runs 3.
        assert sorted(per_core.values()) == [1, 3]

    def test_blocking_tasks_rejected(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_VI)
        blocking = assemble("barrier\nhalt")
        with pytest.raises(ProgramError, match="non-blocking"):
            imp.run_task_pool([blocking])

    def test_empty_pool_rejected(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_V)
        with pytest.raises(ProgramError, match="empty"):
            imp.run_task_pool([])

    def test_results_left_in_registers(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_V)
        result = imp.run_task_pool(self._tasks(2))
        values = {regs[1] for regs in result.outputs["registers"]}
        assert values == {100, 101}


class TestFullSubtypeLadder:
    def test_sixteen_subtypes_exist(self):
        assert len(MultiprocessorSubtype) == 16

    def test_flags_match_table1_ordinals(self):
        from repro.core import class_by_name

        for subtype in MultiprocessorSubtype:
            cls = class_by_name(subtype.label)
            sig = cls.signature
            from repro.core import LinkSite

            assert subtype.ip_dp_switched == sig.link(LinkSite.IP_DP).is_switched
            assert subtype.im_switched == sig.link(LinkSite.IP_IM).is_switched
            assert subtype.dm_switched == sig.link(LinkSite.DP_DM).is_switched
            assert subtype.dp_switched == sig.link(LinkSite.DP_DP).is_switched

    def test_rich_subtypes_combine_features(self):
        """IMP-VIII (IP-IM + DP-DM + DP-DP) runs a pool of tasks that
        use shared memory."""
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_VIII, bank_size=64)
        tasks = [
            assemble(f"ldi r1, {64 + k}\nldi r2, {k * 5}\ngst r1, r2, 0\nhalt")
            for k in range(4)
        ]
        imp.run_task_pool(tasks)
        assert imp.cores[1].read_block(0, 4) == [0, 5, 10, 15]