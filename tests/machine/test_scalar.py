"""Unit tests for the scalar core and the default extension port."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import assemble, ins
from repro.machine.scalar import ExtensionPort, ScalarCore


@pytest.fixture
def core():
    return ScalarCore(core_id=0, memory_size=64)


@pytest.fixture
def port():
    return ExtensionPort()


class TestMemory:
    def test_load_store(self, core):
        core.store(5, 42)
        assert core.load(5) == 42

    def test_bounds(self, core):
        with pytest.raises(ProgramError, match="address"):
            core.load(64)
        with pytest.raises(ProgramError):
            core.store(-1, 0)

    def test_block_helpers(self, core):
        core.write_block(10, [1, 2, 3])
        assert core.read_block(10, 3) == [1, 2, 3]


class TestExecute:
    def test_arithmetic(self, core, port):
        core.registers[1] = 7
        core.registers[2] = 5
        core.execute(ins("add", rd=3, rs1=1, rs2=2), port)
        assert core.registers[3] == 12
        core.execute(ins("sub", rd=3, rs1=1, rs2=2), port)
        assert core.registers[3] == 2
        core.execute(ins("mul", rd=3, rs1=1, rs2=2), port)
        assert core.registers[3] == 35

    def test_division_truncates_toward_zero(self, core, port):
        core.registers[1] = -7
        core.registers[2] = 2
        core.execute(ins("div", rd=3, rs1=1, rs2=2), port)
        assert core.registers[3] == -3

    def test_division_by_zero(self, core, port):
        with pytest.raises(ProgramError, match="division by zero"):
            core.execute(ins("div", rd=1, rs1=1, rs2=2), port)

    def test_shifts_and_logic(self, core, port):
        core.registers[1] = 0b1010
        core.execute(ins("shl", rd=2, rs1=1, imm=2), port)
        assert core.registers[2] == 0b101000
        core.execute(ins("shr", rd=2, rs1=2, imm=3), port)
        assert core.registers[2] == 0b101
        core.registers[3] = 0b1100
        core.execute(ins("xor", rd=4, rs1=1, rs2=3), port)
        assert core.registers[4] == 0b0110

    def test_branches_update_pc(self, core, port):
        core.registers[1] = 1
        core.registers[2] = 1
        core.execute(ins("beq", rs1=1, rs2=2, imm=10), port)
        assert core.pc == 10
        core.pc = 0
        core.execute(ins("bne", rs1=1, rs2=2, imm=10), port)
        assert core.pc == 1  # not taken

    def test_blt(self, core, port):
        core.registers[1] = -5
        core.execute(ins("blt", rs1=1, rs2=0, imm=7), port)
        assert core.pc == 7

    def test_halt_is_sticky(self, core, port):
        outcome = core.execute(ins("halt"), port)
        assert outcome.halted
        outcome = core.execute(ins("nop"), port)
        assert not outcome.executed

    def test_laneid_defaults_to_argument(self, core, port):
        core.execute(ins("laneid", rd=4), port, lane_id=9)
        assert core.registers[4] == 9

    def test_memory_ops_through_registers(self, core, port):
        core.registers[1] = 5
        core.registers[2] = 99
        core.execute(ins("st", rs1=1, rs2=2, imm=3), port)
        assert core.load(8) == 99
        core.execute(ins("ld", rd=4, rs1=1, imm=3), port)
        assert core.registers[4] == 99


class TestDefaultPortRefusals:
    @pytest.mark.parametrize(
        "instruction",
        [
            ins("shuf", rd=1, rs1=2, rs2=3),
            ins("gld", rd=1, rs1=2),
            ins("gst", rs1=1, rs2=2),
            ins("send", rs1=1, rs2=2),
            ins("recv", rd=1, rs1=2),
            ins("barrier"),
        ],
    )
    def test_extensions_refused(self, core, port, instruction):
        with pytest.raises(CapabilityError):
            core.execute(instruction, port)


class TestRunToHalt:
    def test_counts_cycles_and_instructions(self, port):
        core = ScalarCore(memory_size=16)
        program = assemble("ldi r1, 3\nhalt")
        cycles, executed = core.run_to_halt(program, port)
        assert (cycles, executed) == (2, 2)

    def test_pc_overrun_detected(self, port):
        core = ScalarCore(memory_size=16)
        program = assemble("nop\nnop")  # no halt
        with pytest.raises(ProgramError, match="ran past"):
            core.run_to_halt(program, port)

    def test_infinite_loop_guard(self, port):
        core = ScalarCore(memory_size=16)
        program = assemble("loop:\njmp loop")
        with pytest.raises(ProgramError, match="exceeded"):
            core.run_to_halt(program, port, max_cycles=100)

    def test_register_file_size_enforced(self):
        with pytest.raises(ProgramError):
            ScalarCore(registers=[0] * 8, memory_size=16)

    def test_memory_size_positive(self):
        with pytest.raises(ValueError):
            ScalarCore(memory_size=0)
