"""Property-based tests for the machine substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan, FaultPolicy
from repro.machine import (
    ArrayProcessor,
    ArraySubtype,
    DataflowMachine,
    DataflowSubtype,
    Uniprocessor,
)
from repro.machine.dataflow import DataflowGraph
from repro.machine.kernels import (
    dataflow_dot_product,
    dataflow_polynomial,
    dot_product_reference,
    scalar_dot_product,
    simd_vector_add,
    vector_add_reference,
)


@st.composite
def random_dag(draw) -> tuple[DataflowGraph, dict[str, int]]:
    """A random acyclic dataflow graph with bound inputs."""
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    graph = DataflowGraph("random")
    available = []
    inputs = {}
    for i in range(n_inputs):
        name = f"in{i}"
        graph.input(name)
        inputs[name] = draw(st.integers(min_value=-100, max_value=100))
        available.append(name)
    ops = ["add", "sub", "mul", "min", "max", "and", "or", "xor"]
    for i in range(n_ops):
        op = draw(st.sampled_from(ops))
        a = draw(st.sampled_from(available))
        b = draw(st.sampled_from(available))
        node = f"op{i}"
        graph.add(node, op, a, b)
        available.append(node)
    graph.output("out", available[-1])
    return graph, inputs


@given(random_dag(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_dataflow_machine_matches_reference_on_random_graphs(dag, n_dps):
    """Any DMP-IV execution agrees with functional evaluation."""
    graph, inputs = dag
    machine = DataflowMachine(n_dps, DataflowSubtype.DMP_IV if n_dps > 1 else DataflowSubtype.DUP)
    result = machine.run(graph, inputs)
    assert result.outputs == graph.evaluate(inputs)


@given(random_dag())
@settings(max_examples=30, deadline=None)
def test_dataflow_subtypes_agree_on_results(dag):
    """Sub-types change timing, never values."""
    graph, inputs = dag
    expected = graph.evaluate(inputs)
    for subtype in (DataflowSubtype.DMP_II, DataflowSubtype.DMP_III, DataflowSubtype.DMP_IV):
        assert DataflowMachine(3, subtype).run(graph, inputs).outputs == expected


@given(random_dag())
@settings(max_examples=30, deadline=None)
def test_dup_fires_one_operator_per_cycle(dag):
    """The serial machine retires exactly one operator per cycle."""
    graph, inputs = dag
    result = DataflowMachine(1).run(graph, inputs)
    assert result.cycles == result.operations == graph.operator_count()


@given(random_dag(), st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_dmp_cycle_bounds(dag, n_dps):
    """Parallel execution respects the work lower bound and the
    serial-plus-communication upper bound (each of the E cross edges
    costs at most the subtype's transfer latency)."""
    graph, inputs = dag
    machine = DataflowMachine(n_dps, DataflowSubtype.DMP_IV)
    result = machine.run(graph, inputs)
    ops = graph.operator_count()
    assert result.operations == ops
    assert result.cycles >= -(-ops // n_dps)  # ceil(ops / n)
    assert result.cycles <= ops + len(graph.edges())


@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=24),
)
@settings(max_examples=40, deadline=None)
def test_iup_dot_product_matches_reference(values):
    a = values
    b = [v * 2 + 1 for v in values]
    iup = Uniprocessor(memory_size=2048)
    iup.load_memory(0, a)
    iup.load_memory(256, b)
    result = iup.run(scalar_dot_product(len(values)))
    assert result.outputs["registers"][6] == dot_product_reference(a, b)


@given(
    n_lanes=st.sampled_from([2, 4, 8]),
    per_lane=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_simd_vector_add_matches_reference(n_lanes, per_lane, data):
    length = n_lanes * per_lane
    a = [data.draw(st.integers(min_value=-50, max_value=50)) for _ in range(length)]
    b = [data.draw(st.integers(min_value=-50, max_value=50)) for _ in range(length)]
    iap = ArrayProcessor(n_lanes, ArraySubtype.IAP_I)
    iap.scatter(0, a)
    iap.scatter(64, b)
    iap.run(simd_vector_add(per_lane))
    assert iap.gather(128, length) == vector_add_reference(a, b)


@given(
    coefficients=st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=4),
    x=st.integers(min_value=-4, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_usp_polynomial_matches_reference_mod_width(coefficients, x):
    """Gate-level Horner evaluation equals the reference mod 2^16."""
    from repro.machine import UniversalMachine

    graph = dataflow_polynomial(coefficients)
    usp = UniversalMachine(30_000)
    usp.configure_dataflow(graph, width=16)
    got = usp.run_dataflow({"x": x}).outputs["y"]
    ref = graph.evaluate({"x": x})["y"]
    assert got == ((ref + (1 << 15)) % (1 << 16)) - (1 << 15)


@st.composite
def survivable_fault_plan(draw, n_lanes: int) -> FaultPlan:
    """A seeded plan of permanent PE faults that leaves >= 1 lane alive.

    Lanes are drawn without replacement so the plan can never kill the
    whole array, which would (correctly) raise instead of degrading.
    """
    n_faults = draw(st.integers(min_value=0, max_value=n_lanes - 1))
    lanes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_lanes - 1),
            min_size=n_faults,
            max_size=n_faults,
            unique=True,
        )
    )
    events = tuple(
        FaultEvent(
            cycle=draw(st.integers(min_value=1, max_value=40)), target=lane
        )
        for lane in lanes
    )
    return FaultPlan(events)


def _faulted_run(n_lanes, per_lane, a, b, faults, policy):
    machine = ArrayProcessor(n_lanes, ArraySubtype.IAP_IV)
    machine.scatter(0, a)
    machine.scatter(64, b)
    result = machine.run(simd_vector_add(per_lane), faults=faults, policy=policy)
    return machine, result


@given(
    n_lanes=st.sampled_from([2, 4, 8]),
    per_lane=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_remap_preserves_work_under_any_survivable_plan(n_lanes, per_lane, data):
    """Issue acceptance property: with a remap policy, any seeded fault
    plan that leaves a survivor retires exactly the fault-free operation
    count and produces the fault-free results."""
    length = n_lanes * per_lane
    a = [data.draw(st.integers(min_value=-50, max_value=50)) for _ in range(length)]
    b = [data.draw(st.integers(min_value=-50, max_value=50)) for _ in range(length)]
    plan = data.draw(survivable_fault_plan(n_lanes))
    clean_machine, clean = _faulted_run(
        n_lanes, per_lane, a, b, None, None
    )
    machine, result = _faulted_run(
        n_lanes, per_lane, a, b, plan, FaultPolicy.remap()
    )
    assert result.operations == clean.operations
    assert machine.gather(128, length) == vector_add_reference(a, b)


@given(
    n_lanes=st.sampled_from([2, 4, 8]),
    per_lane=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_cycles_monotone_in_injected_fault_count(n_lanes, per_lane, data):
    """Issue acceptance property: cycles are non-decreasing as the fault
    plan grows one event at a time (truncated prefixes of the same plan)."""
    length = n_lanes * per_lane
    a = list(range(length))
    b = list(range(length, 0, -1))
    plan = data.draw(survivable_fault_plan(n_lanes))
    cycles = []
    for k in range(len(plan) + 1):
        _, result = _faulted_run(
            n_lanes, per_lane, a, b, plan.truncated(k), FaultPolicy.remap()
        )
        cycles.append(result.cycles)
    assert all(x <= y for x, y in zip(cycles, cycles[1:]))


@given(st.integers(min_value=2, max_value=8))
@settings(max_examples=10, deadline=None)
def test_dot_product_machines_cross_agree(length):
    """IUP and DMP compute the same dot product from the same data."""
    a = list(range(1, length + 1))
    b = list(range(length, 0, -1))
    iup = Uniprocessor(memory_size=2048)
    iup.load_memory(0, a)
    iup.load_memory(256, b)
    scalar = iup.run(scalar_dot_product(length)).outputs["registers"][6]
    graph = dataflow_dot_product(length)
    inputs = {f"a{i}": a[i] for i in range(length)}
    inputs |= {f"b{i}": b[i] for i in range(length)}
    dataflow = DataflowMachine(4, DataflowSubtype.DMP_IV).run(graph, inputs)
    assert scalar == dataflow.outputs["dot"] == dot_product_reference(a, b)
