"""Unit tests for the netlist builder macros (gate-level arithmetic)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machine import LutFabric, NetlistBuilder
from repro.machine.netlist import Bus


def make(n_cells=2000):
    fabric = LutFabric(n_cells)
    return fabric, NetlistBuilder(fabric)


def read_bus(fabric, builder, bus, inputs):
    """Expose a bus and read it as an unsigned integer after one settle."""
    for position, bit in enumerate(bus):
        kind, ref = bit
        if kind == "cell":
            fabric.name_output(f"probe[{position}]", int(ref))
        else:
            # materialise consts/inputs through a buffer cell
            buffered = builder.buf(bit)
            fabric.name_output(f"probe[{position}]", int(buffered[1]))
    out = fabric.step(inputs)
    value = 0
    for position in range(bus.width):
        value |= out[f"probe[{position}]"] << position
    return value


class TestPrimitives:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_gates(self, a, b):
        fabric, builder = make(16)
        gates = {
            "and": builder.and_(("input", "a"), ("input", "b")),
            "or": builder.or_(("input", "a"), ("input", "b")),
            "xor": builder.xor_(("input", "a"), ("input", "b")),
            "not": builder.not_(("input", "a")),
        }
        for name, src in gates.items():
            fabric.name_output(name, int(src[1]))
        out = fabric.step({"a": a, "b": b})
        assert out["and"] == (a & b)
        assert out["or"] == (a | b)
        assert out["xor"] == (a ^ b)
        assert out["not"] == (1 - a)

    def test_mux(self):
        fabric, builder = make(8)
        y = builder.mux(("input", "s"), ("const", 0), ("const", 1))
        fabric.name_output("y", int(y[1]))
        assert fabric.step({"s": 0})["y"] == 0
        assert fabric.step({"s": 1})["y"] == 1

    def test_lut_arbitrary_function(self):
        fabric, builder = make(8)
        majority = builder.lut(
            [("input", "a"), ("input", "b"), ("input", "c")],
            lambda a, b, c: a + b + c >= 2,
        )
        fabric.name_output("m", int(majority[1]))
        assert fabric.step({"a": 1, "b": 1, "c": 0})["m"] == 1
        assert fabric.step({"a": 1, "b": 0, "c": 0})["m"] == 0

    def test_allocation_exhaustion(self):
        fabric, builder = make(2)
        builder.and_(("const", 0), ("const", 1))
        builder.and_(("const", 0), ("const", 1))
        with pytest.raises(ConfigurationError, match="exhausted"):
            builder.and_(("const", 0), ("const", 1))


class TestArithmetic:
    @pytest.mark.parametrize("a, b", [(0, 0), (3, 5), (100, 27), (255, 1), (170, 85)])
    def test_adder(self, a, b):
        fabric, builder = make()
        bus_a = builder.input_bus("a", 8)
        bus_b = builder.input_bus("b", 8)
        total, carry = builder.adder(bus_a, bus_b)
        inputs = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
        inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(8)}
        assert read_bus(fabric, builder, total, inputs) == (a + b) & 0xFF

    @pytest.mark.parametrize("a, b", [(10, 3), (3, 10), (0, 0), (255, 255)])
    def test_subtractor(self, a, b):
        fabric, builder = make()
        diff = builder.subtractor(builder.input_bus("a", 8), builder.input_bus("b", 8))
        inputs = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
        inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(8)}
        assert read_bus(fabric, builder, diff, inputs) == (a - b) & 0xFF

    @pytest.mark.parametrize("a, b", [(0, 7), (3, 5), (15, 15), (12, 0)])
    def test_multiplier(self, a, b):
        fabric, builder = make()
        prod = builder.multiplier(builder.input_bus("a", 4), builder.input_bus("b", 4))
        inputs = {f"a[{i}]": (a >> i) & 1 for i in range(4)}
        inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(4)}
        assert read_bus(fabric, builder, prod, inputs) == (a * b) & 0xF

    def test_negate(self):
        fabric, builder = make()
        neg = builder.negate(builder.input_bus("a", 8))
        inputs = {f"a[{i}]": (42 >> i) & 1 for i in range(8)}
        assert read_bus(fabric, builder, neg, inputs) == (-42) & 0xFF

    @pytest.mark.parametrize("a, b", [(3, 7), (7, 3), (5, 5)])
    def test_comparators(self, a, b):
        fabric, builder = make()
        bus_a = builder.input_bus("a", 4)
        bus_b = builder.input_bus("b", 4)
        lt = builder.less_than(bus_a, bus_b)
        eq = builder.equals(bus_a, bus_b)
        fabric.name_output("lt", int(lt[1]))
        fabric.name_output("eq", int(eq[1]))
        inputs = {f"a[{i}]": (a >> i) & 1 for i in range(4)}
        inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(4)}
        out = fabric.step(inputs)
        assert out["lt"] == int(a < b)
        assert out["eq"] == int(a == b)

    def test_min_max(self):
        fabric, builder = make()
        bus_a = builder.input_bus("a", 4)
        bus_b = builder.input_bus("b", 4)
        lo = builder.min_(bus_a, bus_b)
        hi = builder.max_(bus_a, bus_b)
        inputs = {f"a[{i}]": (9 >> i) & 1 for i in range(4)}
        inputs |= {f"b[{i}]": (4 >> i) & 1 for i in range(4)}
        for position, bit in enumerate(lo):
            fabric.name_output(f"lo[{position}]", int(bit[1]))
        for position, bit in enumerate(hi):
            fabric.name_output(f"hi[{position}]", int(bit[1]))
        out = fabric.step(inputs)
        lo_val = sum(out[f"lo[{i}]"] << i for i in range(4))
        hi_val = sum(out[f"hi[{i}]"] << i for i in range(4))
        assert (lo_val, hi_val) == (4, 9)

    def test_width_mismatch_rejected(self):
        _, builder = make()
        with pytest.raises(ConfigurationError, match="width"):
            builder.adder(builder.input_bus("a", 4), builder.input_bus("b", 8))

    def test_shift_left_const(self):
        fabric, builder = make()
        shifted = builder.shift_left_const(builder.input_bus("a", 8), 3)
        inputs = {f"a[{i}]": (0b1011 >> i) & 1 for i in range(8)}
        assert read_bus(fabric, builder, shifted, inputs) == (0b1011 << 3) & 0xFF

    def test_negative_shift_rejected(self):
        _, builder = make()
        with pytest.raises(ConfigurationError):
            builder.shift_left_const(builder.input_bus("a", 4), -1)


class TestRomAndRegisters:
    def test_rom_contents(self):
        fabric, builder = make()
        addr = builder.input_bus("addr", 3)
        words = [5, 9, 0, 255, 17]
        data = builder.rom(addr, words, 8)
        for address, expected in enumerate(words):
            fabric2, builder2 = make()
            addr2 = builder2.input_bus("addr", 3)
            data2 = builder2.rom(addr2, words, 8)
            inputs = {f"addr[{i}]": (address >> i) & 1 for i in range(3)}
            assert read_bus(fabric2, builder2, data2, inputs) == expected

    def test_rom_capacity(self):
        _, builder = make()
        addr = builder.input_bus("addr", 2)
        with pytest.raises(ConfigurationError, match="capacity"):
            builder.rom(addr, list(range(5)), 8)

    def test_rom_address_width_vs_lut_arity(self):
        fabric = LutFabric(64, k=2)
        builder = NetlistBuilder(fabric)
        addr = builder.input_bus("addr", 3)
        with pytest.raises(ConfigurationError, match="arity"):
            builder.rom(addr, [0], 4)

    def test_placeholder_register_feedback(self):
        """A counter: reg <- reg + 1, built via the two-phase API."""
        fabric, builder = make()
        reg = builder.register_placeholder(4)
        one = builder.const_bus(1, 4)
        incremented, _ = builder.adder(reg, one)
        builder.drive_register(reg, incremented)
        for position, bit in enumerate(reg):
            fabric.name_output(f"q[{position}]", int(bit[1]))
        seen = []
        for _ in range(5):
            out = fabric.step()
            seen.append(sum(out[f"q[{i}]"] << i for i in range(4)))
        assert seen == [1, 2, 3, 4, 5]

    def test_drive_register_width_check(self):
        _, builder = make()
        reg = builder.register_placeholder(4)
        with pytest.raises(ConfigurationError):
            builder.drive_register(reg, builder.const_bus(0, 8))

    def test_bus_validation(self):
        with pytest.raises(ConfigurationError):
            Bus(())
