"""Property-based tests for the LUT fabric, netlist macros and soft CPU."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import LutFabric, NetlistBuilder
from repro.machine.fabric import CellConfig
from repro.machine.universal import (
    SoftInstruction,
    SoftOp,
    SoftProgram,
    UniversalMachine,
)


@given(
    arity=st.integers(min_value=1, max_value=4),
    table=st.data(),
)
def test_random_single_lut_matches_truth_table(arity, table):
    """A configured cell computes exactly its truth table."""
    patterns = 1 << arity
    truth = table.draw(st.integers(min_value=0, max_value=(1 << patterns) - 1))
    fabric = LutFabric(1, k=4)
    sources = tuple(("input", f"i{k}") for k in range(arity))
    fabric.configure_cell(0, CellConfig(sources, truth))
    fabric.name_output("y", 0)
    for pattern in range(patterns):
        inputs = {f"i{k}": (pattern >> k) & 1 for k in range(arity)}
        assert fabric.step(inputs)["y"] == (truth >> pattern) & 1


@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_gate_level_adder_exhaustive_fuzz(a, b):
    fabric = LutFabric(200)
    builder = NetlistBuilder(fabric)
    total, carry = builder.adder(builder.input_bus("a", 8), builder.input_bus("b", 8))
    for position, bit in enumerate(total):
        fabric.name_output(f"s[{position}]", int(bit[1]))
    fabric.name_output("carry", int(carry[1]))
    inputs = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
    inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(8)}
    out = fabric.step(inputs)
    value = sum(out[f"s[{i}]"] << i for i in range(8))
    assert value == (a + b) & 0xFF
    assert out["carry"] == (a + b) >> 8


@given(
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
)
@settings(max_examples=30, deadline=None)
def test_gate_level_multiplier_fuzz(a, b):
    width = 6
    fabric = LutFabric(2000)
    builder = NetlistBuilder(fabric)
    product = builder.multiplier(
        builder.input_bus("a", width), builder.input_bus("b", width)
    )
    for position, bit in enumerate(product):
        fabric.name_output(f"p[{position}]", int(bit[1]))
    inputs = {f"a[{i}]": (a >> i) & 1 for i in range(width)}
    inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(width)}
    out = fabric.step(inputs)
    value = sum(out[f"p[{i}]"] << i for i in range(width))
    assert value == (a * b) & ((1 << width) - 1)


@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=30, deadline=None)
def test_gate_level_comparators_fuzz(a, b):
    fabric = LutFabric(300)
    builder = NetlistBuilder(fabric)
    bus_a = builder.input_bus("a", 8)
    bus_b = builder.input_bus("b", 8)
    lt = builder.less_than(bus_a, bus_b)
    eq = builder.equals(bus_a, bus_b)
    fabric.name_output("lt", int(lt[1]))
    fabric.name_output("eq", int(eq[1]))
    inputs = {f"a[{i}]": (a >> i) & 1 for i in range(8)}
    inputs |= {f"b[{i}]": (b >> i) & 1 for i in range(8)}
    out = fabric.step(inputs)
    assert out["lt"] == int(a < b)
    assert out["eq"] == int(a == b)


@st.composite
def soft_programs(draw) -> SoftProgram:
    """Random, guaranteed-terminating soft programs.

    Termination by construction: JNZ only ever targets *forward*
    addresses, so the PC strictly advances; the final slot is HALT.
    """
    length = draw(st.integers(min_value=1, max_value=15))
    instructions: list[SoftInstruction] = []
    for index in range(length):
        kind = draw(st.sampled_from(["ldi", "add", "jnz"]))
        if kind == "ldi":
            instructions.append(
                SoftInstruction(SoftOp.LDI, draw(st.integers(0, 255)))
            )
        elif kind == "add":
            instructions.append(
                SoftInstruction(SoftOp.ADD, draw(st.integers(0, 255)))
            )
        else:
            target = draw(st.integers(min_value=index + 1, max_value=length))
            instructions.append(SoftInstruction(SoftOp.JNZ, target))
    instructions.append(SoftInstruction(SoftOp.HALT))
    return SoftProgram(instructions, name="fuzz")


@given(soft_programs())
@settings(max_examples=40, deadline=None)
def test_soft_cpu_matches_reference_on_random_programs(program):
    """The gate-level CPU is cycle- and value-exact against the
    reference interpreter on arbitrary terminating programs."""
    usp = UniversalMachine(600)
    usp.configure_soft_processor(program)
    result = usp.run_soft_processor(max_cycles=1000)
    ref_acc, ref_cycles = program.reference_run(max_cycles=1000)
    assert result.outputs["acc"] == ref_acc
    assert result.cycles == ref_cycles


@given(
    values=st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=4),
    x=st.integers(min_value=-3, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_usp_polynomial_random_coefficients(values, x):
    from repro.machine.kernels import dataflow_polynomial

    graph = dataflow_polynomial(values)
    usp = UniversalMachine(30_000)
    usp.configure_dataflow(graph, width=16)
    got = usp.run_dataflow({"x": x}).outputs["y"]
    ref = graph.evaluate({"x": x})["y"]
    assert got == ((ref + (1 << 15)) % (1 << 16)) - (1 << 15)
