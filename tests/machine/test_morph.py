"""Unit tests for the morphability relation and executed demonstrations."""


from repro.core import class_by_name, class_by_serial
from repro.machine.morph import can_emulate, demonstrate_morphs


def emulates(a: str, b: str) -> bool:
    return can_emulate(class_by_name(a), class_by_name(b))


class TestPaperArguments:
    def test_imp1_acts_as_array_processor(self):
        """'IMP-I can act as an array processor if all the processors
        are executing the same program.'"""
        assert emulates("IMP-I", "IAP-I")

    def test_iap1_cannot_be_imp1(self):
        """'IAP-I cannot be an IMP-I since IAP-I cannot execute n
        different programs at the same time.'"""
        assert not emulates("IAP-I", "IMP-I")

    def test_iap1_acts_as_uniprocessor(self):
        """'IAP-I can act as a uni-processor by turning off its extra
        DPs.'"""
        assert emulates("IAP-I", "IUP")

    def test_iup_cannot_be_array(self):
        """'IUP cannot act as an IAP-I simply because it doesn't have
        enough DPs.'"""
        assert not emulates("IUP", "IAP-I")

    def test_usp_emulates_everything(self):
        from repro.core import implementable_classes

        usp = class_by_name("USP")
        for cls in implementable_classes():
            assert can_emulate(usp, cls)

    def test_nothing_emulates_usp(self):
        from repro.core import implementable_classes

        usp = class_by_name("USP")
        for cls in implementable_classes():
            if cls.comment != "USP":
                assert not can_emulate(cls, usp)

    def test_paradigms_do_not_substitute(self):
        """Data-flow and instruction-flow machines cannot replace each
        other (their flexibility values are incomparable)."""
        assert not emulates("DMP-IV", "IUP")
        assert not emulates("IMP-XVI", "DMP-I")
        assert not emulates("DUP", "IUP")


class TestRelationStructure:
    def test_reflexive(self):
        for name in ("DUP", "IUP", "IAP-II", "IMP-XIV", "ISP-XVI", "USP"):
            assert emulates(name, name)

    def test_subtype_ladder_within_family(self):
        assert emulates("IMP-XVI", "IMP-I")
        assert emulates("IMP-IV", "IMP-II")
        assert not emulates("IMP-I", "IMP-II")
        assert emulates("IAP-IV", "IAP-I")
        assert emulates("DMP-IV", "DMP-I")

    def test_incomparable_subtypes(self):
        # IMP-II (DP-DP switch) and IMP-III (DP-DM switch): neither
        # dominates the other.
        assert not emulates("IMP-II", "IMP-III")
        assert not emulates("IMP-III", "IMP-II")

    def test_spatial_supersets_multi(self):
        """'Spatial computing system is super set of all the systems
        discussed above in instruction flow paradigm.'"""
        assert emulates("ISP-I", "IMP-I")
        assert emulates("ISP-XVI", "IMP-XVI")
        assert emulates("ISP-XVI", "IAP-IV")
        assert emulates("ISP-XVI", "IUP")
        assert not emulates("IMP-XVI", "ISP-I")

    def test_missing_switch_blocks_emulation(self):
        assert not emulates("IMP-I", "IAP-II")  # no DP-DP switch
        assert emulates("IMP-II", "IAP-II")

    def test_ni_classes_excluded(self):
        ni = class_by_serial(11)
        imp1 = class_by_name("IMP-I")
        assert not can_emulate(ni, imp1)
        assert not can_emulate(imp1, ni)

    def test_antisymmetry(self):
        """Distinct classes never emulate each other both ways."""
        from repro.core import implementable_classes

        classes = implementable_classes()
        for a in classes:
            for b in classes:
                if a.serial != b.serial:
                    assert not (can_emulate(a, b) and can_emulate(b, a)), (
                        a.comment, b.comment,
                    )

    def test_transitivity(self):
        from repro.core import implementable_classes

        classes = implementable_classes()
        rel = {
            (a.serial, b.serial)
            for a in classes
            for b in classes
            if can_emulate(a, b)
        }
        for a, b in rel:
            for c, d in rel:
                if b == c:
                    assert (a, d) in rel


class TestDemonstrations:
    def test_all_executed_morphs_succeed(self):
        demos = demonstrate_morphs()
        assert len(demos) >= 6
        failures = [d for d in demos if not d.succeeded]
        assert not failures, failures

    def test_demonstrations_cover_both_directions(self):
        demos = demonstrate_morphs()
        behaviours = [d.target_behaviour for d in demos]
        assert any("must refuse" in b for b in behaviours)
        assert any("must refuse" not in b for b in behaviours)

    def test_usp_demonstrations_report_config_bits(self):
        demos = demonstrate_morphs()
        usp_demos = [d for d in demos if d.emulator == "USP"]
        assert len(usp_demos) == 2
        assert all("config bits" in d.evidence for d in usp_demos)
