"""The NumPy lane-dispatch path must be bit-identical to the interpreter.

Vectorization is a dispatch optimisation, not a semantics change: for
every kernel and every failure mode the two paths must agree on results,
cycle counts, lane state and error text.
"""

import pytest

from repro.core.errors import ProgramError
from repro.machine.array_processor import (
    ArrayProcessor,
    ArraySubtype,
    vectorizable,
)
from repro.machine.kernels import (
    simd_gather_reverse,
    simd_reduction_shuffle,
    simd_vector_add,
)
from repro.machine.program import Opcode, Program, ins


def _pair(n_lanes=16, subtype=ArraySubtype.IAP_IV, **kwargs):
    return (
        ArrayProcessor(n_lanes, subtype, **kwargs),
        ArrayProcessor(n_lanes, subtype, **kwargs),
    )


def _assert_same_run(interpreted, vectorized, program, **kwargs):
    result_i = interpreted.run(program, vectorize=False, **kwargs)
    result_v = vectorized.run(program, vectorize=True, **kwargs)
    assert result_i.cycles == result_v.cycles
    assert result_i.operations == result_v.operations
    assert result_i.outputs == result_v.outputs
    assert result_i.stats == result_v.stats
    for lane_i, lane_v in zip(interpreted.lanes, vectorized.lanes):
        assert lane_i.registers == lane_v.registers
        assert lane_i.memory == lane_v.memory
        assert lane_i.pc == lane_v.pc
        assert lane_i.halted == lane_v.halted


def test_vector_add_matches_interpreter():
    interpreted, vectorized = _pair()
    for machine in (interpreted, vectorized):
        machine.scatter(0, list(range(16 * 8)))
        machine.scatter(64, list(range(0, 2 * 16 * 8, 2)))
    _assert_same_run(interpreted, vectorized, simd_vector_add(8))


def test_shuffle_reduction_matches_interpreter():
    interpreted, vectorized = _pair()
    for machine in (interpreted, vectorized):
        machine.scatter(0, [3 * i + 1 for i in range(16)])
    _assert_same_run(interpreted, vectorized, simd_reduction_shuffle(16))


def test_arbitrary_precision_is_preserved():
    """Chained MULs overflow int64 fast; both paths must stay exact."""
    program = Program(
        [
            ins(Opcode.LDI, rd=1, imm=2**30 + 7),
            ins(Opcode.MUL, rd=1, rs1=1, rs2=1),
            ins(Opcode.MUL, rd=1, rs1=1, rs2=1),
            ins(Opcode.SHR, rd=2, rs1=1, imm=100),
            ins(Opcode.HALT),
        ],
        "bigint",
    )
    interpreted, vectorized = _pair(8, ArraySubtype.IAP_I)
    _assert_same_run(interpreted, vectorized, program)
    value = vectorized.lanes[0].registers[1]
    assert value == (2**30 + 7) ** 4  # > 2**120: far past any fixed width


@pytest.mark.parametrize(
    "program",
    [
        Program(
            [
                ins(Opcode.LANEID, rd=1),
                ins(Opcode.LDI, rd=2, imm=0),
                ins(Opcode.BEQ, rs1=1, rs2=2, imm=4),
                ins(Opcode.NOP),
                ins(Opcode.HALT),
            ],
            "divergent",
        ),
        Program(
            [
                ins(Opcode.LDI, rd=1, imm=5),
                ins(Opcode.LANEID, rd=2),
                ins(Opcode.DIV, rd=3, rs1=1, rs2=2),
                ins(Opcode.HALT),
            ],
            "divzero",
        ),
        Program(
            [
                ins(Opcode.LDI, rd=1, imm=4000),
                ins(Opcode.LD, rd=2, rs1=1, imm=0),
                ins(Opcode.HALT),
            ],
            "out-of-bounds",
        ),
    ],
)
def test_program_errors_match_interpreter(program):
    interpreted, vectorized = _pair(8, ArraySubtype.IAP_I)
    with pytest.raises(ProgramError) as error_i:
        interpreted.run(program, vectorize=False)
    with pytest.raises(ProgramError) as error_v:
        vectorized.run(program, vectorize=True)
    assert str(error_i.value) == str(error_v.value)


def test_vectorizable_predicate():
    assert vectorizable(simd_vector_add(4))
    assert vectorizable(simd_reduction_shuffle(8))
    assert not vectorizable(simd_gather_reverse(8, 1024))  # GLD is port-mediated


def test_forcing_vectorization_of_port_ops_is_an_error():
    machine = ArrayProcessor(8, ArraySubtype.IAP_IV)
    with pytest.raises(ValueError, match="non-vectorizable"):
        machine.run(simd_gather_reverse(8, 1024), vectorize=True)


def test_forcing_vectorization_with_faults_is_an_error():
    from repro.faults import FaultPlan

    machine = ArrayProcessor(8, ArraySubtype.IAP_IV)
    plan = FaultPlan.random(0, 0.1, n_pes=8)
    with pytest.raises(ValueError, match="faults"):
        machine.run(simd_vector_add(2), vectorize=True, faults=plan)


def test_auto_dispatch_falls_back_below_width_threshold():
    """Narrow arrays take the interpreter; results stay identical."""
    interpreted, auto = _pair(4)
    for machine in (interpreted, auto):
        machine.scatter(0, list(range(4 * 4)))
        machine.scatter(64, list(range(4 * 4)))
    result_i = interpreted.run(simd_vector_add(4), vectorize=False)
    result_a = auto.run(simd_vector_add(4))
    assert result_i.outputs == result_a.outputs


def test_auto_dispatch_handles_faulty_runs():
    from repro.faults import FaultPlan, FaultPolicy

    machine = ArrayProcessor(16, ArraySubtype.IAP_IV)
    machine.scatter(0, list(range(16 * 4)))
    machine.scatter(64, list(range(16 * 4)))
    plan = FaultPlan.random(1, 0.05, n_pes=16)
    result = machine.run(
        simd_vector_add(4), faults=plan, policy=FaultPolicy.parse("remap")
    )
    assert result.operations > 0
