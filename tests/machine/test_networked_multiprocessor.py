"""Tests for the multiprocessor with a concrete DP-DP network.

This is where the taxonomy's 'x' cell meets its implementation: the
same IMP-II program runs on a crossbar, a 3-hop sliding window, a mesh
and a hierarchical network — identical results, topology-dependent
timing.
"""

import pytest

from repro.core.errors import ProgramError
from repro.interconnect import (
    FullCrossbar,
    HierarchicalNetwork,
    Mesh2D,
    SlidingWindow,
)
from repro.machine import Multiprocessor, MultiprocessorSubtype, assemble
from repro.machine.kernels import mimd_ring_reduction


def _ring_result(machine):
    for core_id, core in enumerate(machine.cores):
        core.store(0, core_id + 1)
    return machine.run(mimd_ring_reduction(machine.n_cores))


class TestNetworkedMessaging:
    def test_results_identical_across_topologies(self):
        n = 8
        expected = sum(range(1, n + 1))
        machines = [
            Multiprocessor(n, MultiprocessorSubtype.IMP_II),
            Multiprocessor(
                n, MultiprocessorSubtype.IMP_II, network=FullCrossbar(n, n)
            ),
            Multiprocessor(
                n, MultiprocessorSubtype.IMP_II,
                network=SlidingWindow(n, hops=1),
            ),
            Multiprocessor(
                n, MultiprocessorSubtype.IMP_II, network=Mesh2D(2, 4)
            ),
            Multiprocessor(
                n, MultiprocessorSubtype.IMP_II,
                network=HierarchicalNetwork(n, cluster_size=4),
            ),
        ]
        for machine in machines:
            result = _ring_result(machine)
            assert result.outputs["registers"][0][6] == expected

    def test_topology_shapes_latency(self):
        """A ring reduction's neighbours are 1 apart, so the window is
        as fast as the crossbar — but a far-hop pattern is not."""
        n = 8
        crossbar = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=FullCrossbar(n, n)
        )
        window = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=SlidingWindow(n, hops=1)
        )
        xbar_cycles = _ring_result(crossbar).cycles
        window_cycles = _ring_result(window).cycles
        # Neighbour traffic: within one hop except the wrap-around link
        # (core n-1 -> core 0 relays across the whole array).
        assert window_cycles >= xbar_cycles

    def test_far_messages_cost_window_relays(self):
        n = 8
        sender = assemble("ldi r1, 7\nldi r2, 42\nsend r1, r2\nhalt")
        receiver = assemble("ldi r1, 0\nrecv r3, r1\nhalt")
        idle = assemble("halt")
        programs = [sender] + [idle] * 6 + [receiver]

        fast = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=FullCrossbar(n, n)
        )
        slow = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=SlidingWindow(n, hops=1)
        )
        fast_result = fast.run(programs)
        slow_result = slow.run(programs)
        assert fast_result.outputs["registers"][7][3] == 42
        assert slow_result.outputs["registers"][7][3] == 42
        # 0 -> 7 is one crossbar cycle but seven window relays.
        assert slow_result.cycles > fast_result.cycles

    def test_message_latency_accessor(self):
        n = 8
        machine = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=SlidingWindow(n, hops=3)
        )
        assert machine.message_latency(0, 3) == 1
        assert machine.message_latency(0, 7) == 3  # ceil(7/3) relays
        default = Multiprocessor(n, MultiprocessorSubtype.IMP_II)
        assert default.message_latency(0, 7) == 1

    def test_in_flight_messages_do_not_deadlock(self):
        """A receiver stalled on an in-flight message is not a deadlock."""
        n = 8
        sender = assemble("ldi r1, 7\nldi r2, 5\nsend r1, r2\nhalt")
        receiver = assemble("ldi r1, 0\nrecv r3, r1\nhalt")
        idle = assemble("halt")
        machine = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=SlidingWindow(n, hops=1)
        )
        result = machine.run([sender] + [idle] * 6 + [receiver])
        assert result.outputs["registers"][7][3] == 5

    def test_fifo_order_preserved_with_latency(self):
        machine = Multiprocessor(
            2, MultiprocessorSubtype.IMP_II, network=FullCrossbar(2, 2)
        )
        sender = assemble("""
            ldi r1, 1
            ldi r2, 10
            send r1, r2
            ldi r2, 20
            send r1, r2
            halt
        """)
        receiver = assemble("""
            ldi r1, 0
            recv r3, r1
            recv r4, r1
            halt
        """)
        result = machine.run([sender, receiver])
        regs = result.outputs["registers"][1]
        assert (regs[3], regs[4]) == (10, 20)


class TestNetworkValidation:
    def test_port_count_must_match(self):
        with pytest.raises(ValueError, match="ports"):
            Multiprocessor(
                4, MultiprocessorSubtype.IMP_II, network=FullCrossbar(8, 8)
            )

    def test_network_requires_dp_switch(self):
        with pytest.raises(ValueError, match="DP-DP switch"):
            Multiprocessor(
                4, MultiprocessorSubtype.IMP_I, network=FullCrossbar(4, 4)
            )

    def test_true_deadlock_still_detected(self):
        machine = Multiprocessor(
            2, MultiprocessorSubtype.IMP_II, network=FullCrossbar(2, 2)
        )
        a = assemble("ldi r1, 1\nrecv r2, r1\nhalt")
        b = assemble("ldi r1, 0\nrecv r2, r1\nhalt")
        with pytest.raises(ProgramError, match="deadlock"):
            machine.run([a, b])
