"""Unit tests for the MIMD multiprocessor (IMP sub-types)."""

import pytest

from repro.core.errors import CapabilityError, ProgramError
from repro.machine import Multiprocessor, MultiprocessorSubtype, assemble
from repro.machine.kernels import mimd_ring_reduction, mimd_shared_memory_sum


class TestConstruction:
    def test_needs_multiple_cores(self):
        with pytest.raises(ValueError, match="at least 2"):
            Multiprocessor(1)

    def test_capabilities(self):
        from repro.machine import Capability

        imp1 = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        assert Capability.MESSAGE_PASSING not in imp1.capabilities()
        assert Capability.MULTIPLE_STREAMS in imp1.capabilities()
        imp2 = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        assert Capability.MESSAGE_PASSING in imp2.capabilities()
        imp3 = Multiprocessor(2, MultiprocessorSubtype.IMP_III)
        assert Capability.GLOBAL_MEMORY in imp3.capabilities()


class TestMimdExecution:
    def test_independent_programs(self):
        imp = Multiprocessor(3, MultiprocessorSubtype.IMP_I)
        programs = [
            assemble(f"ldi r1, {10 * (core + 1)}\nhalt") for core in range(3)
        ]
        result = imp.run(programs)
        assert [regs[1] for regs in result.outputs["registers"]] == [10, 20, 30]

    def test_spmd_broadcast_of_single_program(self):
        imp = Multiprocessor(4, MultiprocessorSubtype.IMP_I)
        result = imp.run(assemble("ldi r2, 7\nhalt"))
        assert all(regs[2] == 7 for regs in result.outputs["registers"])

    def test_program_count_must_match(self):
        imp = Multiprocessor(2)
        with pytest.raises(ProgramError, match="expected 2"):
            imp.run([assemble("halt")] * 3)

    def test_cycle_interleaving(self):
        """Cores progress together: total ops = sum of per-core lengths,
        cycles = longest program."""
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        programs = [
            assemble("ldi r1, 1\nhalt"),
            assemble("ldi r1, 1\nldi r2, 2\nldi r3, 3\nhalt"),
        ]
        result = imp.run(programs)
        assert result.cycles == 4
        assert result.operations == 6


class TestMessagePassing:
    def test_ring_reduction(self):
        imp = Multiprocessor(4, MultiprocessorSubtype.IMP_II)
        for core_id, core in enumerate(imp.cores):
            core.store(0, core_id + 1)
        result = imp.run(mimd_ring_reduction(4))
        assert result.outputs["registers"][0][6] == 10

    def test_send_recv_pairs(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        sender = assemble("ldi r1, 1\nldi r2, 99\nsend r1, r2\nhalt")
        receiver = assemble("ldi r1, 0\nrecv r3, r1\nhalt")
        result = imp.run([sender, receiver])
        assert result.outputs["registers"][1][3] == 99

    def test_fifo_preserves_order(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        sender = assemble("""
            ldi r1, 1
            ldi r2, 10
            send r1, r2
            ldi r2, 20
            send r1, r2
            halt
        """)
        receiver = assemble("""
            ldi r1, 0
            recv r3, r1
            recv r4, r1
            halt
        """)
        result = imp.run([sender, receiver])
        regs = result.outputs["registers"][1]
        assert (regs[3], regs[4]) == (10, 20)

    def test_refused_without_dp_switch(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        with pytest.raises(CapabilityError, match="missing"):
            imp.run(mimd_ring_reduction(2))

    def test_deadlock_detected(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        # Both cores RECV first: classic deadlock.
        program = assemble("ldi r1, 0\nrecv r2, r1\nhalt")
        other = assemble("ldi r1, 1\nrecv r2, r1\nhalt")
        with pytest.raises(ProgramError, match="deadlock"):
            imp.run([other, program])

    def test_send_bounds_checked(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        with pytest.raises(ProgramError, match="SEND to core"):
            imp.run([assemble("ldi r1, 7\nsend r1, r2\nhalt"), assemble("halt")])


class TestSharedMemory:
    def test_shared_sum(self):
        imp = Multiprocessor(4, MultiprocessorSubtype.IMP_III)
        for core_id, core in enumerate(imp.cores):
            core.store(0, (core_id + 1) * 11)
        imp.run(mimd_shared_memory_sum(4))
        assert imp.cores[0].load(1) == 11 + 22 + 33 + 44

    def test_gld_refused_without_dm_switch(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_II)
        with pytest.raises(CapabilityError):
            imp.run(assemble("gld r1, r0, 0\nhalt"))

    def test_global_store_visible_to_other_core(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_IV, bank_size=64)
        writer = assemble("""
            ldi r1, 64      ; bank 1, offset 0
            ldi r2, 123
            gst r1, r2, 0
            barrier
            halt
        """)
        reader = assemble("""
            barrier
            ld r3, r0, 0
            halt
        """)
        result = imp.run([writer, reader])
        assert result.outputs["registers"][1][3] == 123

    def test_global_address_bounds(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_III, bank_size=64)
        with pytest.raises(ProgramError, match="bank"):
            imp.run(assemble("ldi r1, 999\ngld r2, r1, 0\nhalt"))


class TestBarrier:
    def test_barrier_synchronises(self):
        imp = Multiprocessor(3, MultiprocessorSubtype.IMP_I)
        # Core 2 is slow; all must leave the barrier after it arrives.
        fast = assemble("barrier\nldi r1, 1\nhalt")
        slow = assemble("nop\nnop\nnop\nnop\nbarrier\nldi r1, 1\nhalt")
        result = imp.run([fast, fast, slow])
        assert all(regs[1] == 1 for regs in result.outputs["registers"])

    def test_double_barrier(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        program = assemble("barrier\nbarrier\nhalt")
        result = imp.run(program)
        assert result.cycles < 20  # terminates promptly

    def test_halted_cores_do_not_block_barrier(self):
        imp = Multiprocessor(2, MultiprocessorSubtype.IMP_I)
        early_exit = assemble("halt")
        waiter = assemble("barrier\nhalt")
        result = imp.run([early_exit, waiter])
        assert result.cycles < 20
