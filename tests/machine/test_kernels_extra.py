"""Unit + cross-machine tests for the extended kernel library."""

import pytest

from repro.core.errors import ProgramError
from repro.machine import (
    ArrayProcessor,
    ArraySubtype,
    DataflowMachine,
    DataflowSubtype,
    Uniprocessor,
)
from repro.machine.kernels_extra import (
    dataflow_matmul,
    dataflow_prefix_sum,
    dataflow_stencil3,
    matmul_reference,
    prefix_sum_reference,
    scalar_matmul,
    scalar_prefix_sum,
    scalar_stencil3,
    simd_matmul_rowwise,
    simd_prefix_scan,
    stencil3_reference,
)

A3 = [1, 2, 3, 4, 5, 6, 7, 8, 9]
B3 = [9, 8, 7, 6, 5, 4, 3, 2, 1]


class TestReferences:
    def test_matmul_identity(self):
        identity = [1, 0, 0, 0, 1, 0, 0, 0, 1]
        assert matmul_reference(A3, identity, 3) == A3
        assert matmul_reference(identity, B3, 3) == B3

    def test_matmul_known_product(self):
        assert matmul_reference(A3, B3, 3) == [
            30, 24, 18, 84, 69, 54, 138, 114, 90,
        ]

    def test_matmul_shape_check(self):
        with pytest.raises(ProgramError):
            matmul_reference([1, 2], [1, 2], 3)

    def test_prefix_sum(self):
        assert prefix_sum_reference([3, 1, 4, 1, 5]) == [3, 4, 8, 9, 14]
        assert prefix_sum_reference([]) == []

    def test_stencil3(self):
        assert stencil3_reference([1, 2, 3], (1, 10, 100)) == [
            210, 321, 32,
        ]


class TestScalarKernels:
    def test_matmul_on_iup(self):
        iup = Uniprocessor(memory_size=2048)
        iup.load_memory(0, A3)
        iup.load_memory(256, B3)
        iup.run(scalar_matmul(3), max_cycles=100_000)
        assert iup.read_memory(512, 9) == matmul_reference(A3, B3, 3)

    def test_prefix_sum_on_iup(self):
        values = [5, -2, 7, 1, 1, -9, 4]
        iup = Uniprocessor()
        iup.load_memory(0, values)
        iup.run(scalar_prefix_sum(len(values)))
        assert iup.read_memory(256, len(values)) == prefix_sum_reference(values)

    def test_stencil_on_iup(self):
        values = [4, 8, 15, 16, 23, 42]
        weights = (1, -2, 1)
        iup = Uniprocessor()
        iup.load_memory(0, values)
        iup.run(scalar_stencil3(len(values), weights))
        assert iup.read_memory(256, len(values)) == stencil3_reference(values, weights)

    def test_invalid_sizes(self):
        with pytest.raises(ProgramError):
            scalar_matmul(0)
        with pytest.raises(ProgramError):
            scalar_prefix_sum(-1)
        with pytest.raises(ProgramError):
            scalar_stencil3(0, (1, 1, 1))


class TestSimdKernels:
    def test_rowwise_matmul_runs_on_iap1(self):
        """All accesses lane-local: the least flexible array suffices."""
        n = 3
        iap = ArrayProcessor(n, ArraySubtype.IAP_I, bank_size=1024)
        for i in range(n):
            iap.lanes[i].write_block(0, A3[i * n:(i + 1) * n])  # own A row
            iap.lanes[i].write_block(64, B3)                     # full B copy
        iap.run(simd_matmul_rowwise(n), max_cycles=100_000)
        expected = matmul_reference(A3, B3, n)
        for i in range(n):
            assert iap.lanes[i].read_block(640, n) == expected[i * n:(i + 1) * n]

    @pytest.mark.parametrize("n_lanes", [2, 4, 8])
    def test_prefix_scan_matches_reference(self, n_lanes):
        values = [(i * 3 + 1) % 7 for i in range(n_lanes)]
        iap = ArrayProcessor(n_lanes, ArraySubtype.IAP_II)
        for lane, value in zip(iap.lanes, values):
            lane.store(0, value)
        iap.run(simd_prefix_scan(n_lanes))
        got = [lane.load(1) for lane in iap.lanes]
        assert got == prefix_sum_reference(values)

    def test_prefix_scan_needs_shuffle(self):
        from repro.core.errors import CapabilityError

        iap = ArrayProcessor(4, ArraySubtype.IAP_I)
        with pytest.raises(CapabilityError):
            iap.run(simd_prefix_scan(4))

    def test_scan_logarithmic_in_lanes(self):
        """The SIMD scan's cycle count grows ~log2(lanes), not linearly."""
        cycles = {}
        for n_lanes in (4, 16):
            iap = ArrayProcessor(n_lanes, ArraySubtype.IAP_II)
            for lane in iap.lanes:
                lane.store(0, 1)
            cycles[n_lanes] = iap.run(simd_prefix_scan(n_lanes)).cycles
        # 4x lanes adds a constant number of butterfly stages (2 here).
        assert cycles[16] - cycles[4] <= 20
        assert cycles[16] < 4 * cycles[4]

    def test_invalid_scan_size(self):
        with pytest.raises(ProgramError):
            simd_prefix_scan(1)


class TestDataflowKernels:
    def test_matmul_graph(self):
        graph = dataflow_matmul(2)
        inputs = {
            "a0_0": 1, "a0_1": 2, "a1_0": 3, "a1_1": 4,
            "b0_0": 5, "b0_1": 6, "b1_0": 7, "b1_1": 8,
        }
        got = graph.evaluate(inputs)
        assert [got["c0_0"], got["c0_1"], got["c1_0"], got["c1_1"]] == [
            19, 22, 43, 50,
        ]

    def test_matmul_on_machine(self):
        graph = dataflow_matmul(2)
        inputs = {
            "a0_0": 2, "a0_1": 0, "a1_0": 1, "a1_1": 3,
            "b0_0": 4, "b0_1": 1, "b1_0": 2, "b1_1": 2,
        }
        result = DataflowMachine(4, DataflowSubtype.DMP_IV).run(graph, inputs)
        assert result.outputs == graph.evaluate(inputs)

    def test_stencil_graph_matches_reference(self):
        values = [2, 4, 6, 8]
        weights = (1, -1, 2)
        graph = dataflow_stencil3(len(values), weights)
        got = graph.evaluate({f"x{i}": v for i, v in enumerate(values)})
        expected = stencil3_reference(values, weights)
        assert [got[f"y{i}"] for i in range(len(values))] == expected

    def test_prefix_graph_matches_reference(self):
        values = [1, 2, 3, 4, 5]
        graph = dataflow_prefix_sum(len(values))
        got = graph.evaluate({f"x{i}": v for i, v in enumerate(values)})
        assert [got[f"y{i}"] for i in range(len(values))] == prefix_sum_reference(values)

    def test_scan_critical_path_is_serial(self):
        """The naive scan graph gains nothing from more DPs — its
        dependency chain is the whole point of the SIMD scan above."""
        graph = dataflow_prefix_sum(8)
        inputs = {f"x{i}": 1 for i in range(8)}
        serial = DataflowMachine(1).run(graph, inputs)
        parallel = DataflowMachine(8, DataflowSubtype.DMP_II).run(graph, inputs)
        # Communication makes the wide machine no faster (chain-bound).
        assert parallel.cycles >= serial.cycles - 1

    def test_invalid_sizes(self):
        with pytest.raises(ProgramError):
            dataflow_matmul(0)
        with pytest.raises(ProgramError):
            dataflow_stencil3(0, (1, 1, 1))
        with pytest.raises(ProgramError):
            dataflow_prefix_sum(0)


class TestCrossMachineAgreement:
    def test_matmul_three_ways(self):
        n = 3
        expected = matmul_reference(A3, B3, n)

        iup = Uniprocessor(memory_size=2048)
        iup.load_memory(0, A3)
        iup.load_memory(256, B3)
        iup.run(scalar_matmul(n), max_cycles=100_000)
        scalar = iup.read_memory(512, n * n)

        iap = ArrayProcessor(n, ArraySubtype.IAP_I, bank_size=1024)
        for i in range(n):
            iap.lanes[i].write_block(0, A3[i * n:(i + 1) * n])
            iap.lanes[i].write_block(64, B3)
        iap.run(simd_matmul_rowwise(n), max_cycles=100_000)
        simd = []
        for i in range(n):
            simd.extend(iap.lanes[i].read_block(640, n))

        graph = dataflow_matmul(n)
        inputs = {}
        for i in range(n):
            for j in range(n):
                inputs[f"a{i}_{j}"] = A3[i * n + j]
                inputs[f"b{i}_{j}"] = B3[i * n + j]
        dataflow = DataflowMachine(6, DataflowSubtype.DMP_IV).run(graph, inputs)
        df = [dataflow.outputs[f"c{i}_{j}"] for i in range(n) for j in range(n)]

        assert scalar == simd == df == expected

    def test_prefix_sum_three_ways(self):
        values = [2, -1, 5, 0, 3, 3, -4, 7]
        expected = prefix_sum_reference(values)

        iup = Uniprocessor()
        iup.load_memory(0, values)
        iup.run(scalar_prefix_sum(len(values)))
        scalar = iup.read_memory(256, len(values))

        iap = ArrayProcessor(len(values), ArraySubtype.IAP_II)
        for lane, value in zip(iap.lanes, values):
            lane.store(0, value)
        iap.run(simd_prefix_scan(len(values)))
        simd = [lane.load(1) for lane in iap.lanes]

        graph = dataflow_prefix_sum(len(values))
        df_out = DataflowMachine(4, DataflowSubtype.DMP_IV).run(
            graph, {f"x{i}": v for i, v in enumerate(values)}
        ).outputs
        dataflow = [df_out[f"y{i}"] for i in range(len(values))]

        assert scalar == simd == dataflow == expected
