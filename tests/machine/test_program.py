"""Unit tests for the ISA, instruction validation and the assembler."""

import pytest

from repro.core.errors import ProgramError
from repro.machine import Capability, Instruction, Opcode, Program, assemble, ins
from repro.machine.program import required_capabilities


class TestInstruction:
    def test_register_bounds(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.ADD, rd=16)
        with pytest.raises(ProgramError):
            Instruction(Opcode.ADD, rs1=-1)

    def test_render_shapes(self):
        assert ins("add", rd=1, rs1=2, rs2=3).render() == "add r1, r2, r3"
        assert ins("ldi", rd=5, imm=-7).render() == "ldi r5, -7"
        assert ins("ld", rd=1, rs1=2, imm=64).render() == "ld r1, r2, 64"
        assert ins("halt").render() == "halt"
        assert ins("barrier").render() == "barrier"

    def test_branch_detection(self):
        assert ins("beq", rs1=0, rs2=1, imm=0).is_branch
        assert ins("jmp", imm=0).is_branch
        assert not ins("add").is_branch

    def test_ins_accepts_opcode_and_string(self):
        assert ins(Opcode.NOP).op is Opcode.NOP
        assert ins("nop").op is Opcode.NOP


class TestProgram:
    def test_empty_rejected(self):
        with pytest.raises(ProgramError):
            Program([])

    def test_branch_targets_validated(self):
        with pytest.raises(ProgramError, match="branches to"):
            Program([ins("jmp", imm=5), ins("halt")])

    def test_valid_backward_branch(self):
        program = Program([ins("nop"), ins("jmp", imm=0)])
        assert len(program) == 2

    def test_iteration_and_indexing(self):
        program = Program([ins("nop"), ins("halt")])
        assert program[1].op is Opcode.HALT
        assert [i.op for i in program] == [Opcode.NOP, Opcode.HALT]

    def test_render_includes_labels(self):
        program = assemble("""
        start:
            nop
            jmp start
        """)
        text = program.render()
        assert "start:" in text
        assert "jmp 0" in text


class TestAssembler:
    def test_basic_program(self):
        program = assemble("""
            ldi r1, 10       ; a comment
        loop:
            addi r1, r1, -1  # another comment
            bne r1, r0, loop
            halt
        """)
        assert len(program) == 4
        assert program[2].imm == 1  # label resolved to instruction index

    def test_hex_immediates(self):
        program = assemble("ldi r1, 0x10\nhalt")
        assert program[0].imm == 16

    def test_unknown_mnemonic(self):
        with pytest.raises(ProgramError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(ProgramError, match="expects"):
            assemble("add r1, r2")

    def test_non_register_operand(self):
        with pytest.raises(ProgramError, match="not a register"):
            assemble("add r1, r2, 7")

    def test_bad_immediate(self):
        with pytest.raises(ProgramError, match="cannot parse"):
            assemble("ldi r1, banana")

    def test_duplicate_label(self):
        with pytest.raises(ProgramError, match="duplicate label"):
            assemble("x:\nnop\nx:\nhalt")

    def test_empty_source(self):
        with pytest.raises(ProgramError, match="no instructions"):
            assemble("; only a comment\n")

    def test_all_opcodes_roundtrip_through_assembler(self):
        """Every opcode's rendered form re-assembles to itself."""
        samples = [
            ins("nop"), ins("halt"), ins("ldi", rd=1, imm=3),
            ins("mov", rd=1, rs1=2), ins("ld", rd=1, rs1=2, imm=0),
            ins("st", rs1=1, rs2=2, imm=4), ins("add", rd=1, rs1=2, rs2=3),
            ins("sub", rd=1, rs1=2, rs2=3), ins("mul", rd=1, rs1=2, rs2=3),
            ins("div", rd=1, rs1=2, rs2=3), ins("and", rd=1, rs1=2, rs2=3),
            ins("or", rd=1, rs1=2, rs2=3), ins("xor", rd=1, rs1=2, rs2=3),
            ins("shl", rd=1, rs1=2, imm=3), ins("shr", rd=1, rs1=2, imm=1),
            ins("addi", rd=1, rs1=1, imm=-1), ins("slt", rd=1, rs1=2, rs2=3),
            ins("beq", rs1=1, rs2=2, imm=0), ins("bne", rs1=1, rs2=2, imm=0),
            ins("blt", rs1=1, rs2=2, imm=0), ins("jmp", imm=0),
            ins("laneid", rd=3), ins("shuf", rd=1, rs1=2, rs2=3),
            ins("gld", rd=1, rs1=2, imm=0), ins("gst", rs1=1, rs2=2, imm=0),
            ins("send", rs1=1, rs2=2), ins("recv", rd=1, rs1=2),
            ins("barrier"),
        ]
        source = "\n".join(i.render() for i in samples)
        program = assemble(source)
        assert list(program) == samples


class TestRequiredCapabilities:
    def test_scalar_program_needs_only_execution(self):
        program = assemble("ldi r1, 1\nhalt")
        assert required_capabilities(program) == {Capability.INSTRUCTION_EXECUTION}

    def test_extension_detection(self):
        program = assemble("shuf r1, r2, r3\ngld r1, r2, 0\nsend r1, r2\nbarrier\nhalt")
        caps = required_capabilities(program)
        assert Capability.LANE_SHUFFLE in caps
        assert Capability.GLOBAL_MEMORY in caps
        assert Capability.MESSAGE_PASSING in caps
        assert Capability.MULTIPLE_STREAMS in caps
