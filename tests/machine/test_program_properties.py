"""Property-based fuzzing of the ISA, assembler and scalar execution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Program, Uniprocessor, assemble, ins

#: Non-branch, non-extension opcodes safe for random straight-line code.
_STRAIGHT_OPS = (
    "nop", "ldi", "mov", "add", "sub", "mul", "and", "or", "xor",
    "shl", "shr", "addi", "slt", "ld", "st", "laneid",
)

_MEM = 64  # memory size used by the fuzz machine


@st.composite
def straight_line_instruction(draw):
    """Only the fields an opcode actually uses are randomised, so the
    instruction is in canonical (render/assemble-stable) form."""
    op = draw(st.sampled_from(_STRAIGHT_OPS))
    # rd never targets r0: the prologue pins r0 to zero as the ld/st
    # base register, so random writes must not clobber it.
    rd = draw(st.integers(1, 15))
    rs1 = draw(st.integers(0, 15))
    rs2 = draw(st.integers(0, 15))
    if op == "nop":
        return ins(op)
    if op == "laneid":
        return ins(op, rd=rd)
    if op == "mov":
        return ins(op, rd=rd, rs1=rs1)
    if op == "ldi":
        return ins(op, rd=rd, imm=draw(st.integers(-1000, 1000)))
    if op == "addi":
        return ins(op, rd=rd, rs1=rs1, imm=draw(st.integers(-1000, 1000)))
    if op in ("ld", "st"):
        # Keep the effective address in range: pin the base to r0 (the
        # prologue zeroes it) and use a safe immediate.
        imm = draw(st.integers(0, _MEM - 1))
        if op == "ld":
            return ins(op, rd=rd, rs1=0, imm=imm)
        return ins(op, rs1=0, rs2=rs2, imm=imm)
    if op in ("shl", "shr"):
        return ins(op, rd=rd, rs1=rs1, imm=draw(st.integers(0, 8)))
    return ins(op, rd=rd, rs1=rs1, rs2=rs2)


@st.composite
def straight_line_program(draw) -> Program:
    body = draw(st.lists(straight_line_instruction(), min_size=1, max_size=40))
    # Prologue zeroes r0 so ld/st base addressing stays in bounds even
    # after random writes to other registers.
    prologue = [ins("ldi", rd=0, imm=0)]
    return Program(prologue + body + [ins("halt")], name="fuzz")


@given(straight_line_program())
@settings(max_examples=80, deadline=None)
def test_random_straight_line_programs_run_clean(program):
    """Any straight-line scalar program halts in exactly len(program)
    cycles with integer register state — no crashes, no stalls."""
    iup = Uniprocessor(memory_size=_MEM)
    result = iup.run(program)
    assert result.cycles == len(program)
    assert result.operations == len(program)
    assert all(isinstance(v, int) for v in result.outputs["registers"])


@given(straight_line_program())
@settings(max_examples=60, deadline=None)
def test_render_assemble_roundtrip(program):
    """render() output re-assembles into an identical program."""
    source = "\n".join(i.render() for i in program)
    recovered = assemble(source)
    assert list(recovered) == list(program)


@given(straight_line_program())
@settings(max_examples=40, deadline=None)
def test_execution_is_deterministic(program):
    a = Uniprocessor(memory_size=_MEM)
    b = Uniprocessor(memory_size=_MEM)
    result_a = a.run(program)
    result_b = b.run(program)
    assert result_a.outputs == result_b.outputs
    assert a.core.memory == b.core.memory


@given(
    program=straight_line_program(),
    lanes=st.sampled_from([2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_simd_broadcast_equals_scalar_when_uniform(program, lanes):
    """Straight-line code with identical lane state behaves identically
    on every lane — and matches the uniprocessor (LANEID aside)."""
    from repro.machine import ArrayProcessor, ArraySubtype, Opcode as Op

    if any(i.op is Op.LANEID for i in program):
        return  # lane-variant by construction
    iup = Uniprocessor(memory_size=_MEM)
    scalar = iup.run(program)
    iap = ArrayProcessor(lanes, ArraySubtype.IAP_I, bank_size=_MEM)
    simd = iap.run(program)
    for lane_regs in simd.outputs["registers"]:
        assert lane_regs == scalar.outputs["registers"]
