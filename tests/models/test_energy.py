"""Unit tests for the energy model."""

import pytest

from repro.core import class_by_name
from repro.models.energy import EnergyModel, EnergyParameters


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParameters(dp_op_pj=-1)
        with pytest.raises(ValueError):
            EnergyParameters(wire_traversal_pj=3.0, switch_traversal_pj=1.0)

    def test_defaults_order_wire_below_switch(self):
        params = EnergyParameters()
        assert params.wire_traversal_pj < params.switch_traversal_pj


class TestEstimate:
    def test_breakdown_totals(self, model):
        breakdown = model.estimate(
            class_by_name("IUP").signature, operations=100, n=1
        )
        assert breakdown.total_pj == pytest.approx(
            breakdown.compute_pj
            + breakdown.instruction_pj
            + breakdown.memory_pj
            + breakdown.interconnect_pj
            + breakdown.leakage_pj
        )
        assert breakdown.dynamic_pj == breakdown.total_pj - breakdown.leakage_pj

    def test_dataflow_pays_no_instruction_energy(self, model):
        breakdown = model.estimate(
            class_by_name("DMP-I").signature, operations=100, n=8
        )
        assert breakdown.instruction_pj == 0.0
        assert breakdown.compute_pj > 0

    def test_instruction_flow_pays_issue_energy(self, model):
        breakdown = model.estimate(
            class_by_name("IMP-I").signature, operations=100, n=8
        )
        assert breakdown.instruction_pj > 0

    def test_switched_paths_cost_more(self, model):
        rigid = model.estimate(class_by_name("IAP-I").signature, operations=1000, n=8)
        flexible = model.estimate(class_by_name("IAP-III").signature, operations=1000, n=8)
        assert flexible.interconnect_pj > rigid.interconnect_pj

    def test_leakage_scales_with_area_and_cycles(self, model):
        sig = class_by_name("IMP-I").signature
        short = model.estimate(sig, operations=100, cycles=10, n=8)
        long = model.estimate(sig, operations=100, cycles=1000, n=8)
        assert long.leakage_pj == pytest.approx(100 * short.leakage_pj)

    def test_memory_accesses_default_to_operations(self, model):
        sig = class_by_name("IUP").signature
        default = model.estimate(sig, operations=50, n=1)
        explicit = model.estimate(sig, operations=50, memory_accesses=50, n=1)
        assert default.memory_pj == explicit.memory_pj
        fewer = model.estimate(sig, operations=50, memory_accesses=10, n=1)
        assert fewer.memory_pj < default.memory_pj

    def test_validation(self, model):
        sig = class_by_name("IUP").signature
        with pytest.raises(ValueError):
            model.estimate(sig, operations=-1)
        with pytest.raises(ValueError):
            model.estimate(sig, operations=1, memory_accesses=-1)
        with pytest.raises(ValueError):
            model.estimate(sig, operations=1, cycles=0)

    def test_explain(self, model):
        text = model.estimate(
            class_by_name("IAP-II").signature, operations=10, n=4
        ).explain()
        assert "compute" in text and "total" in text


class TestPaperShapedClaims:
    def test_flexibility_costs_energy_within_family(self, model):
        """Per-op energy rises along the IMP switch ladder (switched
        traversals + leakage of the bigger fabric)."""
        ladder = ["IMP-I", "IMP-II", "IMP-IV", "IMP-VIII", "IMP-XVI"]
        values = [
            model.energy_per_op(class_by_name(name).signature, n=16)
            for name in ladder
        ]
        assert values == sorted(values)

    def test_usp_is_least_energy_efficient(self, model):
        """The FPGA's flexibility costs energy as well as bits."""
        usp = model.energy_per_op(class_by_name("USP").signature, n=16)
        for name in ("IUP", "IAP-IV", "IMP-XVI", "DMP-IV"):
            assert usp > model.energy_per_op(class_by_name(name).signature, n=16)

    def test_dataflow_beats_instruction_flow_per_op(self, model):
        """No instruction fetch per operation: the data-flow advantage."""
        dmp = model.energy_per_op(class_by_name("DMP-I").signature, n=16)
        imp = model.energy_per_op(class_by_name("IMP-I").signature, n=16)
        assert dmp < imp
