"""Unit tests for the Eq.-2 configuration-bit estimator."""

import pytest

from repro.core import LinkSite, class_by_name
from repro.models.configbits import (
    ComponentConfigWords,
    ConfigBitsModel,
    estimate_config_bits,
)
from repro.models.switches import LimitedCrossbarModel


class TestEquationStructure:
    def test_dataflow_skips_ip_terms(self):
        breakdown = ConfigBitsModel().breakdown(class_by_name("DMP-II").signature, n=8)
        assert breakdown.ip_bits == 0
        assert breakdown.im_bits == 0
        assert breakdown.dp_bits > 0

    def test_direct_links_cost_nothing(self):
        breakdown = ConfigBitsModel().breakdown(class_by_name("IMP-I").signature, n=8)
        assert breakdown.switch_bits == {}

    def test_switched_links_cost_bits(self):
        breakdown = ConfigBitsModel().breakdown(class_by_name("IMP-II").signature, n=8)
        assert set(breakdown.switch_bits) == {LinkSite.DP_DP}
        assert breakdown.switch_bits[LinkSite.DP_DP] > 0

    def test_total_is_sum_of_terms(self):
        breakdown = ConfigBitsModel().breakdown(class_by_name("ISP-XVI").signature, n=8)
        assert breakdown.total == (
            breakdown.ip_bits + breakdown.dp_bits + breakdown.im_bits
            + breakdown.dm_bits + sum(breakdown.switch_bits.values())
        )


class TestPaperClaims:
    def test_config_overhead_grows_with_flexibility(self):
        """§III-B: flexibility and configuration overhead trade off —
        more x switches, more bits."""
        model = ConfigBitsModel()
        ladder = ["IMP-I", "IMP-II", "IMP-IV", "IMP-VIII", "IMP-XVI"]
        values = [
            model.total(class_by_name(name).signature, n=16) for name in ladder
        ]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_usp_has_largest_overhead(self):
        """An FPGA is most flexible at the cost of enormous
        reconfiguration overhead."""
        model = ConfigBitsModel()
        usp = model.total(class_by_name("USP").signature, n=16)
        for name in ("IUP", "IAP-IV", "IMP-XVI", "ISP-XVI", "DMP-IV"):
            assert usp > model.total(class_by_name(name).signature, n=16)

    def test_limited_crossbar_needs_fewer_bits(self):
        """'a full cross bar switch will require more bits than a
        limited crossbar'."""
        sig = class_by_name("IAP-II").signature
        full = ConfigBitsModel()
        limited = ConfigBitsModel(
            switch_models={LinkSite.DP_DP: LimitedCrossbarModel(window=3)}
        )
        assert limited.total(sig, n=64) < full.total(sig, n=64)

    def test_hardwired_machines_pay_zero_component_words(self):
        """An ASIC-style machine (nothing reconfigurable) has CB only
        from switches; IMP-I then configures with zero bits."""
        asic = ConfigBitsModel(reconfigurable_components=False)
        assert asic.total(class_by_name("IMP-I").signature, n=8) == 0
        assert asic.total(class_by_name("IMP-II").signature, n=8) > 0


class TestConfiguration:
    def test_custom_words(self):
        fat = ConfigBitsModel(words=ComponentConfigWords(dp_cw=1024))
        thin = ConfigBitsModel()
        sig = class_by_name("IAP-I").signature
        assert fat.total(sig, n=8) > thin.total(sig, n=8)

    def test_lut_cell_cw(self):
        words = ComponentConfigWords(lut_inputs=4, lut_routing_cw=24)
        assert words.lut_cell_cw == 16 + 24

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentConfigWords(ip_cw=-1)
        with pytest.raises(ValueError):
            ComponentConfigWords(lut_inputs=0)
        with pytest.raises(ValueError):
            ConfigBitsModel().breakdown(class_by_name("IUP").signature, n=-4)

    def test_estimate_shortcut(self):
        sig = class_by_name("IMP-II").signature
        assert estimate_config_bits(sig) == ConfigBitsModel().total(sig, n=16)

    def test_explain(self):
        text = ConfigBitsModel().breakdown(class_by_name("IMP-II").signature, n=8).explain()
        assert "DP-DP switch" in text and "total" in text
