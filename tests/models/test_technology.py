"""Unit tests for technology nodes."""

import pytest

from repro.models.technology import NODE_28NM, NODE_45NM, NODE_65NM, NODE_90NM, NODES, TechnologyNode


class TestNodes:
    def test_builtin_nodes_registered(self):
        assert set(NODES) == {"90nm", "65nm", "45nm", "28nm"}

    def test_density_improves_with_scaling(self):
        assert NODE_90NM.ge_area_um2 > NODE_65NM.ge_area_um2 > NODE_45NM.ge_area_um2 > NODE_28NM.ge_area_um2

    def test_sram_denser_than_logic(self):
        for node in NODES.values():
            assert node.sram_bit_um2 < node.ge_area_um2

    def test_logic_and_memory_area(self):
        assert NODE_65NM.logic_area(1000) == pytest.approx(1000 * NODE_65NM.ge_area_um2)
        assert NODE_65NM.memory_area(8192) == pytest.approx(8192 * NODE_65NM.sram_bit_um2)

    def test_negative_amounts_rejected(self):
        with pytest.raises(ValueError):
            NODE_65NM.logic_area(-1)
        with pytest.raises(ValueError):
            NODE_65NM.memory_area(-1)


class TestScaling:
    def test_quadratic_area_scaling(self):
        scaled = NODE_90NM.scaled(45.0)
        assert scaled.ge_area_um2 == pytest.approx(NODE_90NM.ge_area_um2 / 4)
        assert scaled.feature_nm == 45.0

    def test_upscaling_also_works(self):
        scaled = NODE_45NM.scaled(90.0)
        assert scaled.ge_area_um2 == pytest.approx(NODE_45NM.ge_area_um2 * 4)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            NODE_65NM.scaled(0)

    def test_validation_on_construction(self):
        with pytest.raises(ValueError):
            TechnologyNode("bad", -1, 1.0, 0.5)
        with pytest.raises(ValueError):
            TechnologyNode("bad", 65, 0, 0.5)
