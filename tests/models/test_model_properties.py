"""Property-based tests for the Eq.-1/Eq.-2 estimators."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import LinkSite, all_classes, flexibility
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel
from repro.models.switches import FullCrossbarModel, LimitedCrossbarModel

_IMPLEMENTABLE = [cls for cls in all_classes() if cls.implementable]


@given(
    cls=st.sampled_from(_IMPLEMENTABLE),
    n_small=st.integers(min_value=2, max_value=32),
    factor=st.integers(min_value=2, max_value=8),
)
def test_area_monotone_in_n(cls, n_small, factor):
    model = AreaModel()
    small = model.total_ge(cls.signature, n=n_small)
    large = model.total_ge(cls.signature, n=n_small * factor)
    assert large >= small
    # Strictly increasing whenever n actually enters the formula
    # (single-processor classes like DUP/IUP are n-independent).
    if cls.signature.ips.multiplicity.is_plural or cls.signature.dps.multiplicity.is_plural:
        assert large > small


@given(
    cls=st.sampled_from(_IMPLEMENTABLE),
    n_small=st.integers(min_value=2, max_value=32),
    factor=st.integers(min_value=2, max_value=8),
)
def test_config_bits_monotone_in_n(cls, n_small, factor):
    model = ConfigBitsModel()
    assert model.total(cls.signature, n=n_small * factor) >= model.total(
        cls.signature, n=n_small
    )


@given(
    cls=st.sampled_from(_IMPLEMENTABLE),
    site=st.sampled_from(list(LinkSite)),
    n=st.integers(min_value=2, max_value=64),
)
def test_upgrading_links_never_reduces_cost(cls, site, n):
    """Structural version of the area/flexibility trade: an upgraded
    signature costs at least as much area and configuration."""
    try:
        upgraded = cls.signature.upgraded(site)
    except Exception:
        return
    area = AreaModel()
    config = ConfigBitsModel()
    assert area.total_ge(upgraded, n=n) >= area.total_ge(cls.signature, n=n)
    assert config.total(upgraded, n=n) >= config.total(cls.signature, n=n)


@given(
    inputs=st.integers(min_value=1, max_value=512),
    outputs=st.integers(min_value=1, max_value=512),
    window=st.integers(min_value=1, max_value=64),
)
def test_limited_crossbar_never_exceeds_full(inputs, outputs, window):
    full = FullCrossbarModel()
    limited = LimitedCrossbarModel(window=window)
    assert limited.area_ge(inputs, outputs) <= full.area_ge(inputs, outputs)
    assert limited.config_bits(inputs, outputs) <= full.config_bits(inputs, outputs)


@given(
    ports=st.integers(min_value=1, max_value=256),
    width=st.integers(min_value=1, max_value=128),
)
def test_crossbar_costs_scale_sensibly(ports, width):
    model = FullCrossbarModel(width_bits=width)
    area = model.area_ge(ports, ports)
    bits = model.config_bits(ports, ports)
    assert area >= 0 and bits >= 0
    if ports > 1:
        assert area > 0 and bits > 0


@given(cls=st.sampled_from(_IMPLEMENTABLE), n=st.integers(min_value=2, max_value=64))
def test_flexibility_cost_correlation_within_coarse_families(cls, n):
    """Within instruction flow, any class strictly more flexible than
    IMP-I (same family, superset switches) costs at least as many
    configuration bits."""
    from repro.core import class_by_name

    if cls.name is None or not cls.name.short.startswith("IMP"):
        return
    base = class_by_name("IMP-I")
    model = ConfigBitsModel()
    if flexibility(cls.signature) > flexibility(base.signature):
        assert model.total(cls.signature, n=n) >= model.total(base.signature, n=n)
