"""Unit tests for the reconfiguration-overhead model."""

import pytest

from repro.core import class_by_name
from repro.models.reconfiguration import (
    ReconfigurationModel,
    ReconfigurationPort,
)


@pytest.fixture(scope="module")
def model():
    return ReconfigurationModel()


class TestPort:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReconfigurationPort(bandwidth_bits_per_cycle=0)
        with pytest.raises(ValueError):
            ReconfigurationPort(write_energy_pj_per_bit=-1)


class TestCost:
    def test_cycles_are_ceil_of_bits_over_bandwidth(self, model):
        cost = model.cost(class_by_name("IUP").signature, n=1)
        expected = -(-cost.config_bits // 32)
        assert cost.cycles == expected

    def test_energy_proportional_to_bits(self, model):
        a = model.cost(class_by_name("IAP-II").signature, n=16)
        b = model.cost(class_by_name("IMP-XVI").signature, n=16)
        assert a.energy_pj == pytest.approx(a.config_bits * 1.2)
        assert b.energy_pj > a.energy_pj

    def test_wider_port_reloads_faster(self):
        narrow = ReconfigurationModel(port=ReconfigurationPort(bandwidth_bits_per_cycle=8))
        wide = ReconfigurationModel(port=ReconfigurationPort(bandwidth_bits_per_cycle=128))
        sig = class_by_name("IMP-XVI").signature
        assert wide.cost(sig, n=16).cycles < narrow.cost(sig, n=16).cycles

    def test_usp_reload_dwarfs_coarse_classes(self, model):
        """The paper's FPGA story in cycles: reloading the fine-grained
        fabric takes orders of magnitude longer."""
        usp = model.cost(class_by_name("USP").signature, n=16)
        isp = model.cost(class_by_name("ISP-XVI").signature, n=16)
        assert usp.cycles > 100 * isp.cycles


class TestBreakEven:
    def test_amortisation_threshold(self, model):
        cost = model.cost(class_by_name("IAP-IV").signature, n=16)
        assert cost.amortisation_ops() == cost.cycles
        assert cost.amortisation_ops(useful_op_cycles=2.0) == cost.cycles / 2

    def test_amortisation_validation(self, model):
        cost = model.cost(class_by_name("IUP").signature, n=1)
        with pytest.raises(ValueError):
            cost.amortisation_ops(useful_op_cycles=0)

    def test_break_even_table_orders_like_flexibility(self, model):
        """More flexible classes demand longer-lived configurations —
        the quantitative form of 'flexibility is inversely proportional
        to configuration overhead'."""
        signatures = {
            name: class_by_name(name).signature
            for name in ("IUP", "IAP-I", "IAP-IV", "IMP-XVI", "USP")
        }
        table = model.break_even_table(signatures, n=16)
        assert (
            table["IUP"] < table["IAP-I"] < table["IAP-IV"]
            < table["IMP-XVI"] < table["USP"]
        )
