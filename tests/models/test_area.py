"""Unit tests for the Eq.-1 area estimator."""

import pytest

from repro.core import LinkSite, class_by_name
from repro.models.area import AreaModel, ComponentAreas, estimate_area
from repro.models.switches import LimitedCrossbarModel
from repro.models.technology import NODE_28NM, NODE_65NM


class TestEquationStructure:
    def test_dataflow_ignores_ip_and_im_terms(self):
        """Eq. 1: 'In a data flow machine, the first part involving IP
        and IM will be ignored.'"""
        model = AreaModel()
        breakdown = model.breakdown(class_by_name("DMP-IV").signature, n=8)
        assert breakdown.ip_logic_ge == 0
        assert breakdown.im_bits == 0
        assert breakdown.dp_logic_ge > 0
        assert breakdown.dm_bits > 0

    def test_instruction_flow_pays_all_terms(self):
        breakdown = AreaModel().breakdown(class_by_name("IMP-I").signature, n=8)
        assert breakdown.ip_logic_ge > 0
        assert breakdown.dp_logic_ge > 0
        assert breakdown.im_bits > 0
        assert breakdown.dm_bits > 0

    def test_switch_terms_tracked_per_site(self):
        breakdown = AreaModel().breakdown(class_by_name("IMP-XVI").signature, n=8)
        switched = set(breakdown.switch_ge)
        assert {LinkSite.IP_DP, LinkSite.IP_IM, LinkSite.DP_DM, LinkSite.DP_DP} <= switched

    def test_n_scales_processor_terms(self):
        model = AreaModel()
        sig = class_by_name("IMP-I").signature
        small = model.breakdown(sig, n=4)
        large = model.breakdown(sig, n=8)
        assert large.ip_logic_ge == pytest.approx(2 * small.ip_logic_ge)
        assert large.dm_bits == pytest.approx(2 * small.dm_bits)


class TestPaperClaims:
    def test_area_grows_with_flexibility_within_family(self):
        """'The area of an architecture increases by increased
        flexibility, because the switch of type x takes more area than a
        switch of type -'."""
        model = AreaModel()
        imp_areas = [
            model.total_ge(class_by_name(f"IMP-{numeral}").signature, n=16)
            for numeral in ("I", "II", "IV", "VIII", "XVI")
        ]
        assert imp_areas == sorted(imp_areas)
        assert imp_areas[0] < imp_areas[-1]

    def test_crossbar_growth_is_superlinear_direct_is_linear(self):
        model = AreaModel()
        flexible = class_by_name("IMP-XVI").signature
        rigid = class_by_name("IMP-I").signature
        ratio_flexible = model.total_ge(flexible, n=64) / model.total_ge(flexible, n=16)
        ratio_rigid = model.total_ge(rigid, n=64) / model.total_ge(rigid, n=16)
        assert ratio_flexible > ratio_rigid
        assert ratio_rigid == pytest.approx(4.0, rel=0.05)  # linear in n

    def test_isp_costs_more_than_same_subtype_imp(self):
        model = AreaModel()
        assert model.total_ge(
            class_by_name("ISP-I").signature, n=16
        ) > model.total_ge(class_by_name("IMP-I").signature, n=16)


class TestConfiguration:
    def test_custom_component_areas(self):
        huge = AreaModel(areas=ComponentAreas(ip_ge=1e6, dp_ge=1e6))
        default = AreaModel()
        sig = class_by_name("IMP-I").signature
        assert huge.total_ge(sig, n=4) > default.total_ge(sig, n=4)

    def test_component_areas_validated(self):
        with pytest.raises(ValueError):
            ComponentAreas(ip_ge=-1)
        with pytest.raises(ValueError):
            ComponentAreas(dm_bits=-5)

    def test_per_site_switch_override(self):
        sig = class_by_name("IAP-II").signature
        full = AreaModel()
        limited = AreaModel(
            switch_models={LinkSite.DP_DP: LimitedCrossbarModel(window=3)}
        )
        assert limited.total_ge(sig, n=64) < full.total_ge(sig, n=64)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            AreaModel().breakdown(class_by_name("IUP").signature, n=0)


class TestAbsoluteArea:
    def test_technology_node_conversion(self):
        sig = class_by_name("IMP-I").signature
        at_65 = AreaModel().total_um2(sig, n=8, node=NODE_65NM)
        at_28 = AreaModel().total_um2(sig, n=8, node=NODE_28NM)
        assert at_28 < at_65

    def test_estimate_area_shortcut(self):
        sig = class_by_name("IUP").signature
        assert estimate_area(sig) == AreaModel().total_ge(sig, n=16)
        assert estimate_area(sig, node=NODE_65NM) > 0

    def test_breakdown_explain(self):
        text = AreaModel().breakdown(class_by_name("IMP-II").signature, n=8).explain()
        assert "IP logic" in text and "DP-DP switch" in text and "total logic" in text


class TestUniversalFlow:
    def test_usp_uses_lut_cell_model(self):
        sig = class_by_name("USP").signature
        breakdown = AreaModel().breakdown(sig, n=4)
        assert breakdown.ip_logic_ge > 0  # soft IPs occupy cells
        assert breakdown.switch_ge  # the vxv fabric is all switches
