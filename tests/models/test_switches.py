"""Unit tests for the switch cost models."""

import pytest

from repro.core.connectivity import LinkKind
from repro.models.switches import (
    DirectLinkModel,
    FullCrossbarModel,
    LimitedCrossbarModel,
    SharedBusModel,
    default_switch_model,
)


class TestDirectLink:
    def test_zero_config_bits(self):
        model = DirectLinkModel()
        assert model.config_bits(16, 16) == 0

    def test_area_linear_in_ports(self):
        model = DirectLinkModel()
        assert model.area_ge(32, 32) == pytest.approx(2 * model.area_ge(16, 16))

    def test_kind(self):
        assert DirectLinkModel().kind is LinkKind.DIRECT

    def test_negative_ports_rejected(self):
        with pytest.raises(ValueError):
            DirectLinkModel().area_ge(-1, 4)


class TestFullCrossbar:
    def test_area_quadratic_in_ports(self):
        model = FullCrossbarModel()
        small = model.area_ge(8, 8)
        large = model.area_ge(16, 16)
        # (16 outputs * 15 mux cells) / (8 outputs * 7 mux cells)
        assert large / small == pytest.approx((16 * 15) / (8 * 7))

    def test_config_bits_formula(self):
        model = FullCrossbarModel()
        # 16 outputs, each selecting among 16 inputs + "unconnected".
        assert model.config_bits(16, 16) == 16 * 5
        assert model.config_bits(8, 4) == 4 * 4  # ceil(log2(9)) = 4

    def test_degenerate_ports(self):
        model = FullCrossbarModel()
        assert model.area_ge(0, 8) == 0
        assert model.config_bits(8, 0) == 0

    def test_wider_datapath_costs_more_area_not_bits(self):
        narrow = FullCrossbarModel(width_bits=16)
        wide = FullCrossbarModel(width_bits=64)
        assert wide.area_ge(8, 8) == pytest.approx(4 * narrow.area_ge(8, 8))
        assert wide.config_bits(8, 8) == narrow.config_bits(8, 8)

    def test_more_than_direct(self):
        xbar = FullCrossbarModel()
        direct = DirectLinkModel()
        assert xbar.area_ge(16, 16) > direct.area_ge(16, 16)
        assert xbar.config_bits(16, 16) > direct.config_bits(16, 16)


class TestLimitedCrossbar:
    def test_cheaper_than_full(self):
        """The paper: a full crossbar needs more bits than a limited one."""
        full = FullCrossbarModel()
        limited = LimitedCrossbarModel(window=7)
        assert limited.config_bits(64, 64) < full.config_bits(64, 64)
        assert limited.area_ge(64, 64) < full.area_ge(64, 64)

    def test_degenerates_to_full_when_window_covers_inputs(self):
        full = FullCrossbarModel()
        limited = LimitedCrossbarModel(window=64)
        assert limited.config_bits(16, 16) == full.config_bits(16, 16)
        assert limited.area_ge(16, 16) == full.area_ge(16, 16)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LimitedCrossbarModel(window=0)

    def test_config_bits_grow_with_window(self):
        narrow = LimitedCrossbarModel(window=3)
        wide = LimitedCrossbarModel(window=15)
        assert narrow.config_bits(64, 64) < wide.config_bits(64, 64)


class TestSharedBus:
    def test_kind_is_switched(self):
        assert SharedBusModel().kind is LinkKind.SWITCHED

    def test_config_bits_logarithmic(self):
        model = SharedBusModel()
        assert model.config_bits(16, 16) == 5  # ceil(log2(17))
        assert model.config_bits(64, 64) == 7

    def test_area_linear(self):
        model = SharedBusModel()
        assert model.area_ge(32, 32) < FullCrossbarModel().area_ge(32, 32)


class TestDefaults:
    def test_default_model_selection(self):
        assert default_switch_model(LinkKind.NONE) is None
        assert isinstance(default_switch_model(LinkKind.DIRECT), DirectLinkModel)
        assert isinstance(default_switch_model(LinkKind.SWITCHED), FullCrossbarModel)

    def test_width_passthrough(self):
        model = default_switch_model(LinkKind.SWITCHED, width_bits=64)
        assert model.width_bits == 64

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            DirectLinkModel(width_bits=0)
