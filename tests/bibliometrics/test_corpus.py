"""Unit tests for the synthetic publication corpus."""

import pytest

from repro.bibliometrics import DEFAULT_TOPICS, PublicationCorpus, Topic


class TestTopics:
    def test_default_topics_cover_fig1_fields(self):
        names = {t.name for t in DEFAULT_TOPICS}
        assert "multicore architecture" in names
        assert "reconfigurable computing" in names
        assert "fpga" in names

    def test_logistic_rate_is_increasing(self):
        topic = DEFAULT_TOPICS[1]  # multicore
        rates = [topic.expected_count(year) for year in range(1995, 2011)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_rate_saturates_near_base_plus_scale(self):
        topic = Topic("t", ("t",), base_rate=10, scale=100, midpoint=2000, width=1)
        assert topic.expected_count(2010) == pytest.approx(110, abs=1)
        assert topic.expected_count(1990) == pytest.approx(10, abs=1)


class TestCorpusGeneration:
    def test_deterministic_per_seed(self):
        a = PublicationCorpus(seed=7)
        b = PublicationCorpus(seed=7)
        assert len(a) == len(b)
        assert a.generate()[0].title == b.generate()[0].title

    def test_different_seeds_differ(self):
        a = PublicationCorpus(seed=1)
        b = PublicationCorpus(seed=2)
        assert len(a) != len(b) or a.generate()[10].title != b.generate()[10].title

    def test_generation_cached(self):
        corpus = PublicationCorpus()
        assert corpus.generate() is corpus.generate()

    def test_year_range_respected(self):
        corpus = PublicationCorpus(start_year=2000, end_year=2005)
        years = {p.year for p in corpus.generate()}
        assert years <= set(range(2000, 2006))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            PublicationCorpus(start_year=2010, end_year=2000)

    def test_empty_topics_rejected(self):
        with pytest.raises(ValueError):
            PublicationCorpus(topics=())

    def test_record_ids_unique(self):
        corpus = PublicationCorpus()
        ids = [p.pub_id for p in corpus.generate()]
        assert len(ids) == len(set(ids))


class TestSearch:
    def test_keyword_search_hits_only_matching_topics(self):
        corpus = PublicationCorpus()
        hits = corpus.search("cgra")
        assert hits
        assert all("reconfigurable" in " ".join(p.keywords) for p in hits)

    def test_search_is_case_insensitive(self):
        corpus = PublicationCorpus()
        assert len(corpus.search("FPGA")) == len(corpus.search("fpga"))

    def test_year_filter(self):
        corpus = PublicationCorpus()
        hits = corpus.search("multicore", year=2008)
        assert hits
        assert all(p.year == 2008 for p in hits)

    def test_count_by_year_sums_to_search_totals(self):
        corpus = PublicationCorpus()
        counts = corpus.count_by_year("gpu")
        assert sum(counts.values()) == len(corpus.search("gpu"))
        assert set(counts) == set(corpus.years)

    def test_title_matching(self):
        corpus = PublicationCorpus()
        publication = corpus.generate()[0]
        assert publication.matches(publication.title[:12])
        assert not publication.matches("zzzznotfound")


class TestVenueAndCumulative:
    def test_venue_distribution_sums_to_search_total(self):
        corpus = PublicationCorpus()
        dist = corpus.venue_distribution("fpga")
        assert sum(dist.values()) == len(corpus.search("fpga"))
        counts = list(dist.values())
        assert counts == sorted(counts, reverse=True)

    def test_cumulative_counts_monotone_and_total(self):
        corpus = PublicationCorpus()
        cumulative = corpus.cumulative_counts("multicore")
        values = [cumulative[y] for y in sorted(cumulative)]
        assert values == sorted(values)
        assert values[-1] == len(corpus.search("multicore"))

    def test_cumulative_of_unmatched_query_is_zero(self):
        corpus = PublicationCorpus()
        cumulative = corpus.cumulative_counts("zzz-no-such-topic")
        assert all(v == 0 for v in cumulative.values())
