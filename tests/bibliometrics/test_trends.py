"""Unit tests for trend extraction (the Fig.-1 analytics)."""

import pytest

from repro.bibliometrics import PublicationCorpus, TopicTrend, compute_trends


@pytest.fixture(scope="module")
def report():
    return compute_trends(PublicationCorpus(seed=2012))


class TestTrendSeries:
    def test_one_series_per_topic(self, report):
        assert len(report.trends) == 5

    def test_series_cover_the_window(self, report):
        for trend in report.trends:
            assert trend.years[0] == 1995
            assert trend.years[-1] == 2010
            assert len(trend.years) == 16

    def test_by_topic_lookup(self, report):
        trend = report.by_topic("fpga")
        assert trend.topic == "fpga"
        with pytest.raises(KeyError):
            report.by_topic("quantum")

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            TopicTrend("t", (2000, 2001), (1,))


class TestPaperNarrative:
    def test_multicore_surges_in_last_five_years(self, report):
        """The paper: interest 'has increased significantly in the last
        five years' for multicore and reconfigurable computing."""
        multicore = report.by_topic("multicore architecture")
        assert multicore.recent_growth_factor(recent_years=5) > 5.0

    def test_reconfigurable_also_surges(self, report):
        reconf = report.by_topic("reconfigurable computing")
        assert reconf.recent_growth_factor(recent_years=5) > 2.0

    def test_classic_parallel_programming_grows_slower(self, report):
        baseline = report.by_topic("parallel programming")
        multicore = report.by_topic("multicore architecture")
        assert (
            multicore.recent_growth_factor(recent_years=5)
            > baseline.recent_growth_factor(recent_years=5)
        )

    def test_growth_ranking_puts_surging_topics_first(self, report):
        ranking = report.growth_ranking(recent_years=5)
        top_names = [name for name, _ in ranking[:3]]
        assert "multicore architecture" in top_names
        assert ranking[0][1] >= ranking[-1][1]


class TestStatistics:
    def test_window_mean(self, report):
        trend = report.by_topic("fpga")
        early = trend.window_mean(1995, 1999)
        late = trend.window_mean(2006, 2010)
        assert late > early

    def test_window_outside_series(self, report):
        with pytest.raises(ValueError):
            report.by_topic("fpga").window_mean(1980, 1985)

    def test_moving_average_smooths(self, report):
        trend = report.by_topic("multicore architecture")
        smooth = trend.moving_average(3)
        assert len(smooth) == len(trend.counts)
        # smoothing reduces total variation
        def variation(series):
            return sum(abs(b - a) for a, b in zip(series, series[1:]))
        assert variation(smooth) <= variation(trend.counts)

    def test_moving_average_window_validation(self, report):
        trend = report.trends[0]
        with pytest.raises(ValueError):
            trend.moving_average(2)
        with pytest.raises(ValueError):
            trend.moving_average(0)

    def test_growth_factor_window_validation(self):
        short = TopicTrend("t", (2000, 2001), (1, 2))
        with pytest.raises(ValueError):
            short.recent_growth_factor(recent_years=5)

    def test_zero_early_series_growth(self):
        trend = TopicTrend("t", tuple(range(2000, 2010)), (0,) * 5 + (3,) * 5)
        assert trend.recent_growth_factor(recent_years=5) == float("inf")

    def test_total(self, report):
        for trend in report.trends:
            assert trend.total == sum(trend.counts)
