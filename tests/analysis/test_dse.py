"""Unit tests for design-space exploration (§V use case)."""

import pytest

from repro.analysis import Objective, Requirements, capabilities_of_class, explore
from repro.core.naming import MachineType
from repro.machine.base import Capability


class TestRequirements:
    def test_flexibility_floor(self):
        rec = explore(Requirements(min_flexibility=6))
        assert rec.feasible
        assert all(p.flexibility >= 6 for p in rec.feasible)

    def test_impossible_requirements(self):
        rec = explore(Requirements(min_flexibility=99))
        assert rec.best is None
        assert "no class satisfies" in rec.explain()

    def test_budget_constraints(self):
        rec = explore(Requirements(min_flexibility=2, max_config_bits=2000))
        assert rec.feasible
        assert all(p.config_bits <= 2000 for p in rec.feasible)

    def test_area_budget(self):
        tight = explore(Requirements(max_area_ge=50_000))
        loose = explore(Requirements(max_area_ge=10_000_000))
        assert len(tight.feasible) < len(loose.feasible)

    def test_machine_type_restriction(self):
        rec = explore(Requirements(machine_type=MachineType.DATA_FLOW))
        names = {p.name for p in rec.feasible}
        # universal-flow is always admissible (it can become anything)
        assert names <= {"DUP", "DMP-I", "DMP-II", "DMP-III", "DMP-IV", "USP"}

    def test_capability_requirements(self):
        rec = explore(
            Requirements(
                required_capabilities=frozenset(
                    {Capability.MESSAGE_PASSING, Capability.GLOBAL_MEMORY}
                )
            )
        )
        assert rec.feasible
        for point in rec.feasible:
            caps = capabilities_of_class(point.name)
            assert Capability.MESSAGE_PASSING in caps
            assert Capability.GLOBAL_MEMORY in caps


class TestObjectives:
    def test_config_objective_minimises_bits(self):
        rec = explore(Requirements(min_flexibility=3), objective=Objective.CONFIG_BITS)
        bits = [p.config_bits for p in rec.feasible]
        assert bits == sorted(bits)

    def test_area_objective_minimises_area(self):
        rec = explore(Requirements(min_flexibility=3), objective=Objective.AREA)
        areas = [p.area_ge for p in rec.feasible]
        assert areas == sorted(areas)

    def test_flex_per_area_prefers_lean_flexibility(self):
        rec = explore(Requirements(), objective=Objective.FLEXIBILITY_PER_AREA)
        best = rec.best
        assert best is not None
        ratios = [p.flexibility / p.area_ge for p in rec.feasible]
        assert best.flexibility / best.area_ge == pytest.approx(max(ratios))

    def test_paper_use_case_story(self):
        """'which computer class offers the required flexibility with
        minimum configuration overhead' — ask for flexibility >= 5 and
        get the cheapest class providing it."""
        rec = explore(Requirements(min_flexibility=5), objective=Objective.CONFIG_BITS)
        assert rec.best is not None
        assert rec.best.flexibility >= 5
        # The recommendation beats every other feasible class on bits.
        assert all(rec.best.config_bits <= p.config_bits for p in rec.feasible)


class TestCapabilitiesOfClass:
    def test_usp_provides_everything(self):
        assert capabilities_of_class("USP") == frozenset(Capability)

    def test_iup_minimal(self):
        caps = capabilities_of_class("IUP")
        assert caps == frozenset({Capability.INSTRUCTION_EXECUTION})

    def test_iap_subtype_switches(self):
        assert Capability.LANE_SHUFFLE in capabilities_of_class("IAP-II")
        assert Capability.LANE_SHUFFLE not in capabilities_of_class("IAP-I")
        assert Capability.GLOBAL_MEMORY in capabilities_of_class("IAP-III")

    def test_imp_messages_need_dp_switch(self):
        assert Capability.MESSAGE_PASSING in capabilities_of_class("IMP-II")
        assert Capability.MESSAGE_PASSING not in capabilities_of_class("IMP-I")

    def test_dataflow_classes(self):
        caps = capabilities_of_class("DMP-IV")
        assert Capability.DATAFLOW_EXECUTION in caps
        assert Capability.INSTRUCTION_EXECUTION not in caps

    def test_isp_composition(self):
        assert Capability.IP_COMPOSITION in capabilities_of_class("ISP-I")
        assert Capability.IP_COMPOSITION not in capabilities_of_class("IMP-XVI")


class TestReporting:
    def test_explain_mentions_recommendation(self):
        rec = explore(Requirements(min_flexibility=4))
        text = rec.explain()
        assert "recommended:" in text
        assert rec.best.name in text

    def test_feasible_infeasible_partition(self):
        rec = explore(Requirements(min_flexibility=4))
        assert len(rec.feasible) + len(rec.infeasible) == 43
