"""Unit tests for the survey similarity analytics."""

import numpy as np
import pytest

from repro.analysis import nearest_neighbours, survey_similarity
from repro.analysis.similarity import SimilarityMatrix


@pytest.fixture(scope="module")
def matrix():
    return survey_similarity()


class TestMatrix:
    def test_shape_and_labels(self, matrix):
        assert len(matrix.labels) == 25
        assert matrix.values.shape == (25, 25)

    def test_symmetric_with_unit_diagonal(self, matrix):
        assert np.allclose(matrix.values, matrix.values.T)
        assert np.allclose(np.diag(matrix.values), 1.0)

    def test_bounds(self, matrix):
        assert matrix.values.min() >= 0.0
        assert matrix.values.max() <= 1.0

    def test_same_class_pairs_score_one(self, matrix):
        assert matrix.value("MorphoSys", "REMARC") == pytest.approx(1.0)
        assert matrix.value("ARM7TDMI", "AT89C51") == pytest.approx(1.0)
        assert matrix.value("Cortex-A9 (Quad)", "Core2Duo") == pytest.approx(1.0)

    def test_cross_paradigm_pairs_score_low(self, matrix):
        assert matrix.value("REDEFINE", "ARM7TDMI") < 0.5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SimilarityMatrix(labels=("a", "b"), values=np.ones((3, 3)))


class TestQueries:
    def test_most_similar_pairs_are_same_class(self, matrix):
        pairs = matrix.most_similar_pairs(top=10)
        assert all(score == pytest.approx(1.0) for _, _, score in pairs)

    def test_nearest_neighbours_of_drra(self):
        neighbours = nearest_neighbours("DRRA", top=1)
        assert neighbours[0][0] == "MATRIX"  # the other ISP

    def test_nearest_neighbours_excludes_self(self):
        for name, _ in nearest_neighbours("FPGA", top=5):
            assert name != "FPGA"

    def test_row_lookup(self, matrix):
        row = matrix.row("GARP")
        assert row["GARP"] == pytest.approx(1.0)
        assert row["Montium"] == pytest.approx(1.0)  # both IAP-IV
