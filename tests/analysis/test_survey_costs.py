"""Tests for the survey cost analysis (Table III meets the models)."""

import pytest

from repro.analysis import evaluate_survey, survey_cost_table


@pytest.fixture(scope="module")
def points():
    return evaluate_survey(default_n=16)


class TestEvaluation:
    def test_covers_the_whole_survey(self, points):
        assert len(points) == 25
        assert len({p.name for p in points}) == 25

    def test_concrete_sizes_used_where_known(self, points):
        by_name = {p.name: p for p in points}
        assert by_name["MorphoSys"].n_effective == 64
        assert by_name["IMAGINE"].n_effective == 6
        assert by_name["PADDI-2"].n_effective == 48
        assert by_name["ARM7TDMI"].n_effective == 1
        # Template architectures fall back to the default n.
        assert by_name["RICA"].n_effective == 16
        assert by_name["FPGA"].n_effective == 16

    def test_same_class_same_size_same_cost(self, points):
        by_name = {p.name: p for p in points}
        # MorphoSys / REMARC / ADRES: identical class at identical size.
        assert by_name["MorphoSys"].area_ge == by_name["REMARC"].area_ge
        assert by_name["MorphoSys"].config_bits == by_name["ADRES"].config_bits

    def test_fpga_has_extreme_overheads(self, points):
        by_name = {p.name: p for p in points}
        fpga = by_name["FPGA"]
        others = [p for p in points if p.name != "FPGA"]
        assert fpga.config_bits > 10 * max(p.config_bits for p in others)
        assert fpga.reconfig_cycles > 10 * max(p.reconfig_cycles for p in others)
        assert fpga.energy_per_op_pj == max(p.energy_per_op_pj for p in points)

    def test_microcontrollers_are_the_smallest(self, points):
        smallest = min(points, key=lambda p: p.area_ge)
        assert smallest.name in ("ARM7TDMI", "AT89C51")

    def test_within_instruction_flow_flexibility_costs_energy(self, points):
        """At equal n=16, the instruction-flow flexibility ladder
        (IMP-I surrogate Cortex vs RaPiD vs MATRIX) orders by pJ/op."""
        by_name = {p.name: p for p in points}
        # all at n=16 and instruction flow:
        ladder = [by_name["RICA"], by_name["RaPiD"], by_name["MATRIX"]]
        flexes = [p.flexibility for p in ladder]
        energies = [p.energy_per_op_pj for p in ladder]
        assert flexes == sorted(flexes)
        assert energies == sorted(energies)

    def test_default_n_changes_template_sizes_only(self):
        small = {p.name: p for p in evaluate_survey(default_n=8)}
        large = {p.name: p for p in evaluate_survey(default_n=32)}
        assert small["MorphoSys"].area_ge == large["MorphoSys"].area_ge
        assert small["RICA"].area_ge < large["RICA"].area_ge


class TestRendering:
    def test_table_renders_all_rows(self):
        text = survey_cost_table()
        for name in ("ARM7TDMI", "MorphoSys", "DRRA", "FPGA"):
            assert name in text
        assert "reload cycles" in text
