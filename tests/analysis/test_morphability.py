"""Unit tests for the graph-level morphability order."""

import networkx as nx
import pytest

from repro.analysis import build_morphability_order
from repro.core import class_by_name, flexibility


@pytest.fixture(scope="module")
def order():
    return build_morphability_order()


class TestOrderStructure:
    def test_covers_all_implementable_classes(self, order):
        assert order.graph.number_of_nodes() == 43

    def test_acyclic(self, order):
        assert nx.is_directed_acyclic_graph(order.graph)

    def test_usp_is_the_unique_maximum(self, order):
        assert order.maximal_elements() == ["USP"]
        assert order.coverage("USP") == 1.0

    def test_minimal_elements_are_the_uniprocessors(self, order):
        assert order.minimal_elements() == ["DUP", "IUP"]

    def test_can_morph_reflexive(self, order):
        assert order.can_morph("IMP-I", "IMP-I")


class TestQueries:
    def test_emulatable_by_imp1(self, order):
        targets = order.emulatable_by("IMP-I")
        assert "IAP-I" in targets
        assert "IUP" in targets
        assert "IAP-II" not in targets  # needs a DP-DP switch

    def test_emulators_of_iup(self, order):
        emulators = order.emulators_of("IUP")
        assert "IAP-I" in emulators
        assert "IMP-I" in emulators
        assert "USP" in emulators
        assert "DMP-I" not in emulators  # wrong paradigm

    def test_coverage_monotone_with_flexibility_in_imp_family(self, order):
        """Within the IMP ladder, more flexibility never means fewer
        reachable classes — the operational justification of the score."""
        from repro.core import roman

        coverages = {}
        for ordinal in range(1, 17):
            name = f"IMP-{roman(ordinal)}"
            coverages[name] = (
                flexibility(class_by_name(name).signature),
                order.coverage(name),
            )
        for name_a, (flex_a, cov_a) in coverages.items():
            for name_b, (flex_b, cov_b) in coverages.items():
                if order.can_morph(name_a, name_b) and name_a != name_b:
                    assert flex_a >= flex_b
                    assert cov_a > cov_b


class TestHasse:
    def test_hasse_is_a_reduction(self, order):
        hasse = order.hasse_edges()
        assert len(hasse) < order.graph.number_of_edges()

    def test_hasse_preserves_reachability(self, order):
        reduced = nx.DiGraph(order.hasse_edges())
        reduced.add_nodes_from(order.graph.nodes())
        original = nx.transitive_closure(order.graph)
        recovered = nx.transitive_closure(reduced)
        assert set(original.edges()) == set(recovered.edges())

    def test_usp_hasse_neighbours_are_the_family_maxima(self, order):
        hasse = nx.DiGraph(order.hasse_edges())
        direct = set(hasse.successors("USP"))
        # USP directly covers the top of each paradigm, not e.g. IUP.
        assert "ISP-XVI" in direct
        assert "DMP-IV" in direct
        assert "IUP" not in direct
