"""Interrupt-and-resume must be invisible in the analysis outputs.

Each test interrupts a checkpointed analysis sweep partway (a
``KeyboardInterrupt`` from the point worker, exactly what Ctrl-C
delivers), then re-runs it with ``resume=True`` and asserts the result
equals an uninterrupted run — the engine restores journalled points
bit-identically, so downstream artifacts cannot tell the difference.
"""

import pytest

from repro.analysis import pareto, resilience
from repro.analysis.resilience import resilience_sweep
from repro.analysis.survey_costs import survey_cost_table


def _interrupt_after(monkeypatch, module, name, calls_before_interrupt):
    """Replace ``module.name`` with a bomb that interrupts after N calls."""
    real = getattr(module, name)
    state = {"calls": 0}

    def bomb(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] > calls_before_interrupt:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    monkeypatch.setattr(module, name, bomb)
    return real


def test_dse_classes_resume_is_identical(tmp_path, monkeypatch):
    clean = pareto.evaluate_classes(n=8)
    real = _interrupt_after(monkeypatch, pareto, "_design_point", 5)
    with pytest.raises(KeyboardInterrupt):
        pareto.evaluate_classes(n=8, resume=True, checkpoint_dir=tmp_path)
    monkeypatch.setattr(pareto, "_design_point", real)
    resumed = pareto.evaluate_classes(n=8, resume=True, checkpoint_dir=tmp_path)
    assert resumed == clean


def test_resilience_resume_is_identical(tmp_path, monkeypatch):
    rates = (0.01, 0.1)
    clean = resilience_sweep(rates, n=8)
    real = _interrupt_after(monkeypatch, resilience, "_resilience_point", 7)
    with pytest.raises(KeyboardInterrupt):
        resilience_sweep(rates, n=8, resume=True, checkpoint_dir=tmp_path)
    monkeypatch.setattr(resilience, "_resilience_point", real)
    resumed = resilience_sweep(rates, n=8, resume=True, checkpoint_dir=tmp_path)
    assert resumed == clean


def test_survey_costs_resume_is_identical(tmp_path, monkeypatch):
    from repro.analysis import survey_costs

    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
    clean = survey_cost_table(default_n=8)
    real = _interrupt_after(monkeypatch, survey_costs, "cost_point", 4)
    with pytest.raises(KeyboardInterrupt):
        survey_cost_table(default_n=8, resume=True)
    monkeypatch.setattr(survey_costs, "cost_point", real)
    resumed = survey_cost_table(default_n=8, resume=True)
    assert resumed == clean


def test_skip_policy_drops_the_failing_architecture(monkeypatch):
    real = resilience._resilience_point

    def flaky(entry, **kwargs):
        if entry.name == "MorphoSys":
            raise RuntimeError("model blew up")
        return real(entry, **kwargs)

    monkeypatch.setattr(resilience, "_resilience_point", flaky)
    points = resilience_sweep((0.05,), n=8, on_error="skip")
    names = {point.name for point in points}
    assert "MorphoSys" not in names
    from repro.registry.survey import survey_table

    assert len(names) == len(survey_table()) - 1


def test_raise_policy_still_propagates(monkeypatch):
    def broken(entry, **kwargs):
        raise RuntimeError("model blew up")

    monkeypatch.setattr(resilience, "_resilience_point", broken)
    with pytest.raises(RuntimeError, match="model blew up"):
        resilience_sweep((0.05,), n=8)
