"""Kernel-vs-scalar parity for the analysis entry points.

``evaluate_classes``, ``evaluate_survey``, ``survey_cost_table`` and
``explore`` all route single-job default-model runs through the batch
kernel; every one of them must produce results equal (``==`` on every
field) to the scalar sweep it replaces.
"""

from repro.analysis.dse import Objective, Requirements, explore
from repro.analysis.pareto import evaluate_classes, pareto_frontier
from repro.analysis.survey_costs import evaluate_survey, survey_cost_table
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel


class TestEvaluateClasses:
    def test_matches_scalar_at_several_sizes(self):
        for n in (1, 16, 64):
            kernel = evaluate_classes(n=n, batch_kernel=True)
            scalar = evaluate_classes(n=n, batch_kernel=False)
            assert kernel == scalar

    def test_custom_models_match_scalar(self):
        area = AreaModel(width_bits=48)
        config = ConfigBitsModel(reconfigurable_components=False)
        kernel = evaluate_classes(
            n=16, area_model=area, config_model=config, batch_kernel=True
        )
        scalar = evaluate_classes(
            n=16, area_model=area, config_model=config, batch_kernel=False
        )
        assert kernel == scalar

    def test_frontier_is_flag_independent(self):
        frontier_on = pareto_frontier(evaluate_classes(batch_kernel=True))
        frontier_off = pareto_frontier(evaluate_classes(batch_kernel=False))
        assert frontier_on == frontier_off


class TestEvaluateSurvey:
    def test_matches_scalar(self):
        for default_n in (1, 16):
            kernel = evaluate_survey(default_n=default_n, batch_kernel=True)
            scalar = evaluate_survey(default_n=default_n, batch_kernel=False)
            assert kernel == scalar

    def test_table_bytes_identical(self):
        assert survey_cost_table(batch_kernel=True) == survey_cost_table(
            batch_kernel=False
        )


class TestExplore:
    def test_recommendation_is_flag_independent(self):
        requirements = Requirements(min_flexibility=3, max_config_bits=100_000)
        for objective in Objective:
            kernel = explore(
                requirements, objective=objective, batch_kernel=True
            )
            scalar = explore(
                requirements, objective=objective, batch_kernel=False
            )
            assert kernel == scalar
