"""Parallel analysis sweeps must be indistinguishable from serial ones.

The acceptance bar for the sweep engine: ``--jobs N`` is a wall-clock
knob, never a results knob. Every rewired analysis is checked for exact
equality between its serial and parallel forms, including the rendered
artifacts the CLI writes to disk.
"""

import pytest

from repro.analysis.dse import Objective, Requirements, explore
from repro.analysis.pareto import evaluate_classes, pareto_frontier
from repro.analysis.resilience import (
    render_resilience_table,
    resilience_csv_rows,
    resilience_sweep,
)
from repro.analysis.survey_costs import evaluate_survey, survey_cost_table


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_resilience_sweep_parity(executor):
    serial = resilience_sweep(jobs=1)
    parallel = resilience_sweep(jobs=4, executor=executor)
    assert serial == parallel


def test_resilience_artifact_bytes_are_jobs_invariant():
    serial = resilience_sweep(n=32, spares=1, jobs=1)
    parallel = resilience_sweep(n=32, spares=1, jobs=3)
    assert resilience_csv_rows(serial) == resilience_csv_rows(parallel)
    assert render_resilience_table(serial) == render_resilience_table(parallel)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_survey_costs_parity(executor):
    serial = evaluate_survey(jobs=1)
    parallel = evaluate_survey(jobs=4, executor=executor)
    assert serial == parallel


def test_survey_cost_table_is_jobs_invariant():
    assert survey_cost_table(default_n=16, jobs=1) == survey_cost_table(
        default_n=16, jobs=2
    )


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_evaluate_classes_parity(executor):
    serial = evaluate_classes(n=16, jobs=1)
    parallel = evaluate_classes(n=16, jobs=4, executor=executor)
    assert serial == parallel
    assert pareto_frontier(serial) == pareto_frontier(parallel)


def test_dse_recommendation_parity():
    requirements = Requirements(min_flexibility=4)
    serial = explore(requirements, objective=Objective.AREA, jobs=1)
    parallel = explore(requirements, objective=Objective.AREA, jobs=4)
    assert serial.feasible == parallel.feasible
    assert serial.infeasible == parallel.infeasible
    assert serial.explain() == parallel.explain()
