"""Unit tests for the Pareto trade-off analysis."""

import pytest

from repro.analysis import DesignPoint, evaluate_classes, pareto_frontier
from repro.core.naming import MachineType


@pytest.fixture(scope="module")
def points():
    return evaluate_classes(n=16)


class TestEvaluation:
    def test_covers_all_implementable_classes(self, points):
        assert len(points) == 43
        assert len({p.name for p in points}) == 43

    def test_point_fields(self, points):
        usp = next(p for p in points if p.name == "USP")
        assert usp.flexibility == 8
        assert usp.area_ge > 0
        assert usp.config_bits > 0
        assert usp.machine_type is MachineType.UNIVERSAL_FLOW

    def test_rows_render(self, points):
        assert len(points[0].row()) == 4

    def test_restricted_class_set(self):
        from repro.core import class_by_name

        chosen = (class_by_name("IUP"), class_by_name("IMP-I"))
        points = evaluate_classes(n=8, classes=chosen)
        assert [p.name for p in points] == ["IUP", "IMP-I"]


class TestDominance:
    def test_dominates_requires_strict_improvement(self):
        a = DesignPoint("a", 1, MachineType.INSTRUCTION_FLOW, 3, 100.0, 10, 16)
        same = DesignPoint("b", 2, MachineType.INSTRUCTION_FLOW, 3, 100.0, 10, 16)
        better = DesignPoint("c", 3, MachineType.INSTRUCTION_FLOW, 4, 100.0, 10, 16)
        assert not a.dominates(same)
        assert better.dominates(a)
        assert not a.dominates(better)

    def test_tradeoff_points_incomparable(self):
        cheap = DesignPoint("cheap", 1, MachineType.INSTRUCTION_FLOW, 1, 10.0, 1, 16)
        flexible = DesignPoint("flex", 2, MachineType.INSTRUCTION_FLOW, 9, 1000.0, 99, 16)
        assert not cheap.dominates(flexible)
        assert not flexible.dominates(cheap)


class TestFrontier:
    def test_frontier_is_subset_sorted_by_flexibility(self, points):
        frontier = pareto_frontier(points)
        assert 0 < len(frontier) <= len(points)
        flexes = [p.flexibility for p in frontier]
        assert flexes == sorted(flexes)

    def test_frontier_members_are_mutually_non_dominated(self, points):
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in frontier:
                if a is not b and a.machine_type is b.machine_type:
                    assert not a.dominates(b)

    def test_cheapest_classes_survive(self, points):
        """DUP and IUP anchor the low end (flexibility 0, minimal cost)."""
        names = {p.name for p in pareto_frontier(points)}
        assert "DUP" in names
        assert "IUP" in names

    def test_usp_survives_via_flexibility(self, points):
        """Nothing dominates the USP: it is the unique flexibility-8 point."""
        names = {p.name for p in pareto_frontier(points)}
        assert "USP" in names

    def test_subtype_I_dominates_nothing_cross_paradigm(self, points):
        """Data-flow points never knock instruction-flow points off the
        frontier (incommensurable flexibility)."""
        frontier = pareto_frontier(points)
        # IUP costs more than DUP at equal flexibility but must survive,
        # because DMP/DUP cannot dominate across machine types.
        assert "IUP" in {p.name for p in frontier}

    def test_dominated_subtype_is_removed(self, points):
        """IMP-XVI can never be on the frontier together with every
        cheaper IMP at lower flexibility — but specifically, any point
        strictly worse on all axes is gone."""
        frontier = pareto_frontier(points)
        by_name = {p.name: p for p in points}
        # ISP-I has the same flexibility as IMP-II but strictly more area
        # and bits, so it must not survive.
        isp1 = by_name["ISP-I"]
        dominators = [p for p in points if p.dominates(isp1)]
        if dominators:
            assert "ISP-I" not in {p.name for p in frontier}
