"""The sweep engine's contracts: ordering, errors, timing, executors.

The engine's whole value is that parallel sweeps are *drop-in*: same
results, same order, same failures as the serial loop. Each contract is
tested against every executor.
"""

import pytest

from repro.perf import EXECUTORS, SweepResult, resolve_jobs, sweep


def _square(x):
    return x * x


def _explode_on_seven(x):
    if x == 7:
        raise RuntimeError(f"point {x} exploded")
    return x


def _explode_if_negative(x):
    if x < 0:
        raise ValueError(f"negative point {x}")
    return x


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("chunksize", [1, 3, 100])
def test_results_come_back_in_input_order(executor, chunksize):
    points = list(range(23))
    result = sweep(_square, points, executor=executor, jobs=4, chunksize=chunksize)
    assert list(result) == [p * p for p in points]
    assert len(result) == 23
    assert result[5] == 25


@pytest.mark.parametrize("executor", EXECUTORS)
def test_parallel_equals_serial(executor):
    points = list(range(40))
    serial = sweep(_square, points, executor="serial")
    parallel = sweep(_square, points, executor=executor, jobs=3)
    assert serial.values == parallel.values


@pytest.mark.parametrize("executor", EXECUTORS)
def test_exceptions_propagate(executor):
    with pytest.raises(RuntimeError, match="point 7 exploded"):
        sweep(_explode_on_seven, range(10), executor=executor, jobs=2)


def test_lowest_indexed_failure_wins():
    # Both -1 and -5 raise; the engine must deterministically surface
    # the earlier point's error regardless of worker scheduling.
    points = [1, -1, 2, -5, 3]
    for _ in range(5):
        with pytest.raises(ValueError, match="negative point -1"):
            sweep(_explode_if_negative, points, executor="process", jobs=2)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_per_point_timing_is_captured(executor):
    result = sweep(_square, range(8), executor=executor, jobs=2)
    assert len(result.timings) == 8
    assert all(t >= 0.0 for t in result.timings)
    assert result.point_s == pytest.approx(sum(result.timings))
    assert result.wall_s > 0.0


def test_empty_sweep():
    result = sweep(_square, [], executor="process", jobs=4)
    assert result.values == ()
    assert result.timings == ()


def test_serial_executor_reports_one_job():
    result = sweep(_square, range(4), executor="process", jobs=1)
    assert result.jobs == 1


def test_jobs_capped_by_point_count():
    result = sweep(_square, range(2), executor="thread", jobs=64)
    assert result.jobs == 2


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        sweep(_square, range(3), executor="gpu")


def test_bad_chunksize_rejected():
    with pytest.raises(ValueError, match="chunksize"):
        sweep(_square, range(3), chunksize=0)


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_result_is_a_value_object():
    result = sweep(_square, range(3))
    assert isinstance(result, SweepResult)
    assert 0.0 <= result.parallel_efficiency
