"""Module-level point functions for the fabric tests.

The fabric ships functions to workers by pickling them *by reference*,
so anything a worker subprocess evaluates must live in an importable
module — lambdas and test-local closures cannot cross the wire. The
subprocess tests add this directory to the worker's ``PYTHONPATH``.
"""

import os
import signal
import time

from repro.perf.fabric import WORKER_ENV


def square(x):
    """The canonical pure point function."""
    return x * x


def flaky(x):
    """Fails deterministically on one point."""
    if x == 3:
        raise ValueError("boom at 3")
    return x * x


def slow_square(x, delay_s=0.2):
    """A throttled point, giving kill scenarios a window to land in."""
    time.sleep(delay_s)
    return x * x


def worker_assassin(x):
    """SIGKILLs whatever *worker* evaluates point 5.

    Guarded by the ``sweep-worker`` environment marker so the same
    function is perfectly well behaved when the coordinator's poison
    drain or local fallback evaluates it in-process.
    """
    if x == 5 and os.environ.get(WORKER_ENV) == "1":
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x
