"""Chaos tests: sweeps must survive workers dying mid-flight.

The point functions here genuinely SIGKILL (or ``os._exit``) their own
worker process — not a raised exception, an abrupt death the pool
reports as :class:`BrokenProcessPool`. The engine's contract is that
the sweep still completes with every point accounted for.
"""

import functools
import os
import signal

from repro.perf import sweep
from repro.perf.engine import _DEFAULT_SPEC, _EvalSpec, _sweep_last_resort


def _kill_worker_once(x, *, marker):
    """SIGKILL this worker the first time point 5 is attempted."""
    if x == 5:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return x * x  # second attempt: the crash is not repeated
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _poison(x):
    """Point 3 always kills whatever worker hosts it."""
    if x == 3:
        os._exit(17)
    return x * x


def test_sigkilled_worker_mid_sweep_recovers_fully(tmp_path):
    fn = functools.partial(_kill_worker_once, marker=str(tmp_path / "killed"))
    result = sweep(fn, range(12), executor="process", jobs=2, chunksize=1)
    assert list(result) == [x * x for x in range(12)]
    assert result.respawns >= 1
    assert all(o.status == "ok" for o in result.outcomes)
    assert len(result.outcomes) == 12


def test_sigkill_recovery_degrades_to_serial_when_respawns_run_out(tmp_path):
    # max_respawns=0: the first crash already exhausts the budget, so the
    # survivors (and the once-crashing point, now marked) run in-parent.
    fn = functools.partial(_kill_worker_once, marker=str(tmp_path / "killed"))
    result = sweep(fn, range(12), executor="process", jobs=2, chunksize=1, max_respawns=0)
    assert list(result) == [x * x for x in range(12)]
    assert result.respawns == 1
    assert all(o.status == "ok" for o in result.outcomes)


def test_poison_point_is_identified_not_fatal():
    # A point that reliably kills its worker must end up isolated in its
    # own single-worker pool and reported as "crashed" — every other
    # point still computes.
    result = sweep(
        _poison,
        range(8),
        executor="process",
        jobs=2,
        chunksize=1,
        on_error="skip",
        max_respawns=1,
    )
    statuses = {o.index: o.status for o in result.outcomes}
    assert statuses[3] == "crashed"
    assert all(status == "ok" for index, status in statuses.items() if index != 3)
    assert result[3] is None
    assert [result[x] for x in range(8) if x != 3] == [x * x for x in range(8) if x != 3]
    assert result.status_counts()["crashed"] == 1


def test_crashes_are_journalled_for_the_post_mortem(tmp_path):
    from repro.perf import SweepCheckpoint

    spec = {"points": 8}
    with SweepCheckpoint.open("chaos", spec, directory=tmp_path) as checkpoint:
        sweep(
            _poison,
            range(8),
            executor="process",
            jobs=2,
            chunksize=1,
            on_error="skip",
            max_respawns=0,
            checkpoint=checkpoint,
        )
        lines = checkpoint.path.read_text().splitlines()
    records = [line for line in lines[1:] if '"crashed"' in line]
    assert len(records) == 1
    # Crashed points do not count as done: a resume recomputes them.
    reopened = SweepCheckpoint.open("chaos", spec, directory=tmp_path)
    try:
        assert 3 not in reopened.load()
        assert reopened.completed == 7
    finally:
        reopened.close()


class _SpanStub:
    """Just enough span surface for calling engine internals directly."""

    def add_event(self, name, **attrs):
        pass


def test_last_resort_isolation_completes_healthy_points():
    results = _sweep_last_resort(
        _poison,
        [(2, 2), (3, 3), (4, 4)],
        _EvalSpec(on_error="skip"),
        _SpanStub(),
        None,
    )
    by_index = {r.index: r for r in results}
    assert by_index[2].value == 4 and by_index[2].status == "ok"
    assert by_index[3].status == "crashed" and by_index[3].value is None
    assert by_index[4].value == 16 and by_index[4].status == "ok"


def test_last_resort_serial_mode_runs_in_parent():
    results = _sweep_last_resort(
        lambda x: x + 1, [(0, 10), (1, 11)], _DEFAULT_SPEC, _SpanStub(), None
    )
    assert [r.value for r in results] == [11, 12]
    assert all(r.status == "ok" for r in results)
