"""The model cache's contracts: correctness, keying, invalidation, LRU."""

import pytest

from repro.core.taxonomy import implementable_classes
from repro.models.area import AreaModel, ComponentAreas
from repro.models.configbits import ConfigBitsModel
from repro.models.energy import EnergyModel
from repro.models.reconfiguration import ReconfigurationModel
from repro.models.technology import NODE_28NM, NODE_65NM, TechnologyNode
from repro.perf import ModelCache, evaluate_models


@pytest.fixture()
def signature():
    # The all-switched single-IP array class: every model term is active.
    for cls in implementable_classes():
        if cls.name is not None and cls.name.short == "IAP-IV":
            return cls.signature
    raise AssertionError("IAP-IV not found")


def test_cached_values_match_direct_model_evaluation(signature):
    cache = ModelCache()
    estimates = cache.evaluate(signature, n=16)
    area = AreaModel()
    config = ConfigBitsModel()
    assert estimates.area_ge == area.total_ge(signature, n=16)
    assert estimates.area_um2 == area.total_um2(signature, n=16, node=NODE_65NM)
    assert estimates.config_bits == config.total(signature, n=16)
    assert estimates.energy_per_op_pj == EnergyModel(area_model=area).energy_per_op(
        signature, n=16
    )
    assert estimates.reconfig_cycles == ReconfigurationModel(
        config_model=config
    ).cost(signature, n=16).cycles


def test_repeat_lookup_hits(signature):
    cache = ModelCache()
    first = cache.evaluate(signature, n=16)
    second = cache.evaluate(signature, n=16)
    assert first is second
    stats = cache.stats
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5


def test_different_n_misses(signature):
    cache = ModelCache()
    cache.evaluate(signature, n=16)
    cache.evaluate(signature, n=32)
    assert cache.stats.misses == 2


def test_technology_parameter_change_invalidates(signature):
    """Retuning a node's numbers must miss even under the same name."""
    cache = ModelCache()
    baseline = cache.evaluate(signature, n=16, technology=NODE_65NM)
    retuned = TechnologyNode("65nm", 65.0, 2.5, 0.6)
    fresh = cache.evaluate(signature, n=16, technology=retuned)
    assert cache.stats.misses == 2
    assert fresh.area_um2 != baseline.area_um2
    # The GE figure is node-independent; only silicon conversion moved.
    assert fresh.area_ge == baseline.area_ge


def test_distinct_nodes_get_distinct_entries(signature):
    cache = ModelCache()
    at_65 = cache.evaluate(signature, n=16, technology=NODE_65NM)
    at_28 = cache.evaluate(signature, n=16, technology=NODE_28NM)
    assert at_28.area_um2 < at_65.area_um2
    assert cache.stats.misses == 2


def test_clear_resets_entries_and_counters(signature):
    cache = ModelCache()
    cache.evaluate(signature, n=16)
    cache.evaluate(signature, n=16)
    cache.clear()
    stats = cache.stats
    assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
    cache.evaluate(signature, n=16)
    assert cache.stats.misses == 1


def test_lru_eviction(signature):
    cache = ModelCache(maxsize=2)
    cache.evaluate(signature, n=8)
    cache.evaluate(signature, n=16)
    cache.evaluate(signature, n=8)    # refresh n=8: n=16 is now oldest
    cache.evaluate(signature, n=32)   # evicts n=16
    cache.evaluate(signature, n=8)    # still cached
    stats = cache.stats
    assert stats.evictions == 1
    assert stats.size == 2
    cache.evaluate(signature, n=16)   # was evicted: a miss again
    assert cache.stats.misses == 4


def test_custom_models_flow_through(signature):
    doubled = AreaModel(areas=ComponentAreas(dp_ge=16_000.0))
    cache = ModelCache(area_model=doubled)
    estimates = cache.evaluate(signature, n=16)
    assert estimates.area_ge == doubled.total_ge(signature, n=16)
    assert estimates.area_ge > AreaModel().total_ge(signature, n=16)


def test_module_level_entry_point_uses_shared_cache(signature):
    private = ModelCache()
    via_private = evaluate_models(signature, n=16, cache=private)
    direct = private.evaluate(signature, n=16)
    assert via_private is direct
    shared = evaluate_models(signature, n=16)
    assert shared.area_ge == via_private.area_ge


def test_bad_maxsize_rejected():
    with pytest.raises(ValueError, match="maxsize"):
        ModelCache(maxsize=0)
