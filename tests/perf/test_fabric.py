"""The distributed sweep fabric, driven with in-process workers.

Workers here are :class:`FabricWorker` instances served from threads in
the test process — real sockets, real wire protocol, no subprocesses —
which keeps every contract (parity with the local engine, failure
policies, stealing, lease expiry, local fallback, checkpoint resume)
fast enough for the tier-1 suite. Process-level chaos (SIGKILL) lives
in ``test_fabric_chaos.py`` and ``scripts/chaos_fabric.py``.
"""

import pickle
import threading

import pytest

from repro.core.errors import FabricError
from repro.perf import (
    PointResult,
    RetryPolicy,
    ShardedCheckpoint,
    fabric_sweep,
    parse_endpoints,
    sweep,
)
from repro.perf.fabric import (
    _LOCAL_FALLBACKS,
    _POINTS_STOLEN,
    _WORKERS_LOST,
    FabricWorker,
    _recv,
)


def square(x):
    return x * x


def flaky(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x * x


def sluggish(x):
    import time

    time.sleep(0.25)
    return x * x


@pytest.fixture
def fleet():
    """Two in-thread workers; yields the ``HOST:PORT,HOST:PORT`` string."""
    workers = [FabricWorker(), FabricWorker()]
    threads = [
        threading.Thread(target=worker.serve_forever, daemon=True)
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    yield ",".join(f"{w.address[0]}:{w.address[1]}" for w in workers)
    for worker in workers:
        worker.close()


class TestParseEndpoints:
    def test_comma_separated_string(self):
        assert parse_endpoints("a:1,b:2, c:3") == (("a", 1), ("b", 2), ("c", 3))

    def test_iterables_and_pairs(self):
        assert parse_endpoints([("h", 9), "i:10"]) == (("h", 9), ("i", 10))

    @pytest.mark.parametrize("bad", ["", "hostonly", "host:", ":7070", "h:x"])
    def test_malformed_endpoints_raise(self, bad):
        with pytest.raises(FabricError):
            parse_endpoints(bad)


class TestFabricSweepParity:
    def test_values_match_local_sweep_exactly(self, fleet):
        local = sweep(square, range(25))
        distributed = fabric_sweep(square, range(25), workers=fleet, heartbeat_s=0.1)
        assert pickle.dumps(tuple(local.values)) == pickle.dumps(
            tuple(distributed.values)
        )
        assert distributed.executor == "fabric"
        assert distributed.jobs == 2
        assert distributed.resumed == 0
        assert [o.index for o in distributed.outcomes] == list(range(25))
        assert all(o.status == "ok" for o in distributed.outcomes)

    def test_empty_grid(self, fleet):
        result = fabric_sweep(square, [], workers=fleet, heartbeat_s=0.1)
        assert list(result.values) == []

    def test_lease_size_batches_points(self, fleet):
        result = fabric_sweep(
            square, range(10), workers=fleet, lease_size=4, heartbeat_s=0.1
        )
        assert list(result.values) == [x * x for x in range(10)]
        assert result.chunksize == 4


class TestFailurePolicies:
    def test_raise_reports_the_lowest_failing_index(self, fleet):
        with pytest.raises(FabricError, match="point 3"):
            fabric_sweep(flaky, range(8), workers=fleet, heartbeat_s=0.1)

    def test_skip_keeps_going_with_structured_outcomes(self, fleet):
        result = fabric_sweep(
            flaky, range(8), workers=fleet, on_error="skip", heartbeat_s=0.1
        )
        assert result.values[3] is None
        assert result.outcomes[3].status == "failed"
        assert "boom at 3" in result.outcomes[3].error
        assert [result.values[i] for i in (0, 1, 2, 4, 5, 6, 7)] == [
            x * x for x in (0, 1, 2, 4, 5, 6, 7)
        ]

    def test_retry_policy_travels_to_the_worker(self, fleet):
        result = fabric_sweep(
            flaky,
            range(5),
            workers=fleet,
            on_error="retry",
            retry=RetryPolicy(max_retries=2, backoff_s=0.0),
            heartbeat_s=0.1,
        )
        assert result.outcomes[3].status == "failed"
        assert result.outcomes[3].attempts == 3  # retried on the worker

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_size": 0},
            {"on_error": "explode"},
            {"retry": RetryPolicy()},
            {"timeout_s": 0.0},
            {"heartbeat_s": 0.0},
            {"max_point_crashes": -1},
            {"lease_ttl_s": 0.01},
        ],
    )
    def test_invalid_arguments_are_rejected(self, fleet, kwargs):
        with pytest.raises(ValueError):
            fabric_sweep(square, range(3), workers=fleet, **kwargs)


class TestDegradation:
    def test_no_workers_falls_back_to_local_sweep(self):
        before = _LOCAL_FALLBACKS.value
        result = fabric_sweep(
            square,
            range(6),
            workers="127.0.0.1:1",  # nothing listens there
            join_deadline_s=0.2,
            connect_timeout_s=0.1,
        )
        assert list(result.values) == [x * x for x in range(6)]
        assert result.executor != "fabric"  # the plain engine served it
        assert _LOCAL_FALLBACKS.value == before + 1

    def test_heartbeat_expiry_loses_the_worker_but_not_the_sweep(self):
        # The worker never heartbeats (override far above the TTL) and
        # evaluates slowly, so the coordinator must expire its lease and
        # finish the points elsewhere — here, locally.
        worker = FabricWorker(throttle_s=0.0, heartbeat_override_s=60.0)
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        lost_before = _WORKERS_LOST.value
        try:
            result = fabric_sweep(
                sluggish,
                range(3),
                workers=[worker.address],
                heartbeat_s=0.02,
                lease_ttl_s=0.1,
            )
        finally:
            worker.close()
        assert list(result.values) == [0, 1, 4]
        assert all(o.status == "ok" for o in result.outcomes)
        assert _WORKERS_LOST.value == lost_before + 1


class TestWorkStealing:
    def test_idle_worker_steals_from_the_straggler(self):
        # Worker A is throttled to a crawl; worker B finishes the queue
        # and must start duplicating A's outstanding leases.
        slow = FabricWorker(throttle_s=0.4)
        fast = FabricWorker()
        for worker in (slow, fast):
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        stolen_before = _POINTS_STOLEN.value
        try:
            result = fabric_sweep(
                square,
                range(8),
                workers=[slow.address, fast.address],
                heartbeat_s=0.1,
            )
        finally:
            slow.close()
            fast.close()
        assert list(result.values) == [x * x for x in range(8)]
        assert _POINTS_STOLEN.value > stolen_before


class TestCheckpointResume:
    def test_sharded_journal_resumes_bit_identically(self, tmp_path):
        spec = {"grid": list(range(12))}
        workers = [FabricWorker(), FabricWorker()]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        endpoints = [w.address for w in workers]
        try:
            with ShardedCheckpoint.open("fab", spec, directory=tmp_path) as first:
                uninterrupted = fabric_sweep(
                    square,
                    range(12),
                    workers=endpoints,
                    heartbeat_s=0.1,
                    checkpoint=first,
                )
            with ShardedCheckpoint.open("fab", spec, directory=tmp_path) as again:
                resumed = fabric_sweep(
                    square,
                    range(12),
                    workers=endpoints,
                    heartbeat_s=0.1,
                    checkpoint=again,
                )
        finally:
            for worker in workers:
                worker.close()
        assert resumed.resumed == 12  # every point restored, none recomputed
        assert pickle.dumps(tuple(uninterrupted.values)) == pickle.dumps(
            tuple(resumed.values)
        )

    def test_partial_journal_restores_and_computes_the_rest(self, tmp_path):
        spec = {"grid": 6}
        with ShardedCheckpoint.open("part", spec, directory=tmp_path) as seed:
            for index in (0, 2, 4):
                seed.record(
                    PointResult(
                        index=index, point=index, value=index * index, elapsed_s=0.1
                    )
                )
        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            with ShardedCheckpoint.open("part", spec, directory=tmp_path) as journal:
                result = fabric_sweep(
                    square,
                    range(6),
                    workers=[worker.address],
                    heartbeat_s=0.1,
                    checkpoint=journal,
                )
        finally:
            worker.close()
        assert result.resumed == 3
        assert list(result.values) == [x * x for x in range(6)]
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["skipped", "ok", "skipped", "ok", "skipped", "ok"]


class TestWorkerLifecycle:
    def test_max_sessions_bounds_the_worker(self):
        worker = FabricWorker(max_sessions=1)
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        try:
            fabric_sweep(square, range(4), workers=[worker.address], heartbeat_s=0.1)
            thread.join(timeout=5.0)
            assert not thread.is_alive()  # served its one session and returned
        finally:
            worker.close()

    def test_worker_survives_a_vanishing_coordinator(self):
        import socket as _socket

        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            # A client that connects and hangs up mid-handshake.
            drive_by = _socket.create_connection(worker.address, timeout=2.0)
            drive_by.close()
            # The worker must still serve a real sweep afterwards.
            result = fabric_sweep(
                square, range(5), workers=[worker.address], heartbeat_s=0.1
            )
        finally:
            worker.close()
        assert list(result.values) == [x * x for x in range(5)]

    def test_invalid_worker_construction(self):
        with pytest.raises(ValueError):
            FabricWorker(throttle_s=-1.0)
        with pytest.raises(ValueError):
            FabricWorker(max_sessions=0)


class TestWireProtocol:
    def test_malformed_frame_raises_fabric_error(self):
        import io

        with pytest.raises(FabricError, match="malformed"):
            _recv(io.StringIO("this is not json\n"))
        with pytest.raises(FabricError, match="without a type"):
            _recv(io.StringIO('{"no": "type"}\n'))
        assert _recv(io.StringIO("")) is None
