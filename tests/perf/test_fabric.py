"""The distributed sweep fabric, driven with in-process workers.

Workers here are :class:`FabricWorker` instances served from threads in
the test process — real sockets, real wire protocol, no subprocesses —
which keeps every contract (parity with the local engine, failure
policies, stealing, lease expiry, local fallback, checkpoint resume)
fast enough for the tier-1 suite. Process-level chaos (SIGKILL) lives
in ``test_fabric_chaos.py`` and ``scripts/chaos_fabric.py``.
"""

import pickle
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FabricError
from repro.perf import (
    MembershipPolicy,
    PointResult,
    RetryPolicy,
    ShardedCheckpoint,
    fabric_sweep,
    fleet_health,
    parse_endpoints,
    sweep,
)
from repro.perf import engine as _engine
from repro.perf.fabric import (
    _LATE_JOINS,
    _LOCAL_FALLBACKS,
    _POINTS_STOLEN,
    _WORKERS_EJECTED,
    _WORKERS_LOST,
    _WORKERS_QUARANTINED,
    _WORKERS_REJOINED,
    FabricWorker,
    _Coordinator,
    _EndpointHealth,
    _Link,
    _pack,
    _recv,
    _unpack,
)


def square(x):
    return x * x


def flaky(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x * x


def sluggish(x):
    import time

    time.sleep(0.25)
    return x * x


@pytest.fixture
def fleet():
    """Two in-thread workers; yields the ``HOST:PORT,HOST:PORT`` string."""
    workers = [FabricWorker(), FabricWorker()]
    threads = [
        threading.Thread(target=worker.serve_forever, daemon=True)
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    yield ",".join(f"{w.address[0]}:{w.address[1]}" for w in workers)
    for worker in workers:
        worker.close()


class TestParseEndpoints:
    def test_comma_separated_string(self):
        assert parse_endpoints("a:1,b:2, c:3") == (("a", 1), ("b", 2), ("c", 3))

    def test_iterables_and_pairs(self):
        assert parse_endpoints([("h", 9), "i:10"]) == (("h", 9), ("i", 10))

    @pytest.mark.parametrize("bad", ["", "hostonly", "host:", ":7070", "h:x"])
    def test_malformed_endpoints_raise(self, bad):
        with pytest.raises(FabricError):
            parse_endpoints(bad)


class TestFabricSweepParity:
    def test_values_match_local_sweep_exactly(self, fleet):
        local = sweep(square, range(25))
        distributed = fabric_sweep(square, range(25), workers=fleet, heartbeat_s=0.1)
        assert pickle.dumps(tuple(local.values)) == pickle.dumps(
            tuple(distributed.values)
        )
        assert distributed.executor == "fabric"
        assert distributed.jobs == 2
        assert distributed.resumed == 0
        assert [o.index for o in distributed.outcomes] == list(range(25))
        assert all(o.status == "ok" for o in distributed.outcomes)

    def test_empty_grid(self, fleet):
        result = fabric_sweep(square, [], workers=fleet, heartbeat_s=0.1)
        assert list(result.values) == []

    def test_lease_size_batches_points(self, fleet):
        result = fabric_sweep(
            square, range(10), workers=fleet, lease_size=4, heartbeat_s=0.1
        )
        assert list(result.values) == [x * x for x in range(10)]
        assert result.chunksize == 4


class TestFailurePolicies:
    def test_raise_reports_the_lowest_failing_index(self, fleet):
        with pytest.raises(FabricError, match="point 3"):
            fabric_sweep(flaky, range(8), workers=fleet, heartbeat_s=0.1)

    def test_skip_keeps_going_with_structured_outcomes(self, fleet):
        result = fabric_sweep(
            flaky, range(8), workers=fleet, on_error="skip", heartbeat_s=0.1
        )
        assert result.values[3] is None
        assert result.outcomes[3].status == "failed"
        assert "boom at 3" in result.outcomes[3].error
        assert [result.values[i] for i in (0, 1, 2, 4, 5, 6, 7)] == [
            x * x for x in (0, 1, 2, 4, 5, 6, 7)
        ]

    def test_retry_policy_travels_to_the_worker(self, fleet):
        result = fabric_sweep(
            flaky,
            range(5),
            workers=fleet,
            on_error="retry",
            retry=RetryPolicy(max_retries=2, backoff_s=0.0),
            heartbeat_s=0.1,
        )
        assert result.outcomes[3].status == "failed"
        assert result.outcomes[3].attempts == 3  # retried on the worker

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_size": 0},
            {"on_error": "explode"},
            {"retry": RetryPolicy()},
            {"timeout_s": 0.0},
            {"heartbeat_s": 0.0},
            {"max_point_crashes": -1},
            {"lease_ttl_s": 0.01},
        ],
    )
    def test_invalid_arguments_are_rejected(self, fleet, kwargs):
        with pytest.raises(ValueError):
            fabric_sweep(square, range(3), workers=fleet, **kwargs)


class TestDegradation:
    def test_no_workers_falls_back_to_local_sweep(self):
        before = _LOCAL_FALLBACKS.value
        result = fabric_sweep(
            square,
            range(6),
            workers="127.0.0.1:1",  # nothing listens there
            join_deadline_s=0.2,
            connect_timeout_s=0.1,
        )
        assert list(result.values) == [x * x for x in range(6)]
        assert result.executor != "fabric"  # the plain engine served it
        assert _LOCAL_FALLBACKS.value == before + 1

    def test_heartbeat_expiry_loses_the_worker_but_not_the_sweep(self):
        # The worker never heartbeats (override far above the TTL) and
        # evaluates slowly, so the coordinator must expire its lease and
        # finish the points elsewhere — here, locally.
        worker = FabricWorker(throttle_s=0.0, heartbeat_override_s=60.0)
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        lost_before = _WORKERS_LOST.value
        try:
            result = fabric_sweep(
                sluggish,
                range(3),
                workers=[worker.address],
                heartbeat_s=0.02,
                lease_ttl_s=0.1,
            )
        finally:
            worker.close()
        assert list(result.values) == [0, 1, 4]
        assert all(o.status == "ok" for o in result.outcomes)
        assert _WORKERS_LOST.value == lost_before + 1


class TestWorkStealing:
    def test_idle_worker_steals_from_the_straggler(self):
        # Worker A is throttled to a crawl; worker B finishes the queue
        # and must start duplicating A's outstanding leases.
        slow = FabricWorker(throttle_s=0.4)
        fast = FabricWorker()
        for worker in (slow, fast):
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        stolen_before = _POINTS_STOLEN.value
        try:
            result = fabric_sweep(
                square,
                range(8),
                workers=[slow.address, fast.address],
                heartbeat_s=0.1,
            )
        finally:
            slow.close()
            fast.close()
        assert list(result.values) == [x * x for x in range(8)]
        assert _POINTS_STOLEN.value > stolen_before


class TestCheckpointResume:
    def test_sharded_journal_resumes_bit_identically(self, tmp_path):
        spec = {"grid": list(range(12))}
        workers = [FabricWorker(), FabricWorker()]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        endpoints = [w.address for w in workers]
        try:
            with ShardedCheckpoint.open("fab", spec, directory=tmp_path) as first:
                uninterrupted = fabric_sweep(
                    square,
                    range(12),
                    workers=endpoints,
                    heartbeat_s=0.1,
                    checkpoint=first,
                )
            with ShardedCheckpoint.open("fab", spec, directory=tmp_path) as again:
                resumed = fabric_sweep(
                    square,
                    range(12),
                    workers=endpoints,
                    heartbeat_s=0.1,
                    checkpoint=again,
                )
        finally:
            for worker in workers:
                worker.close()
        assert resumed.resumed == 12  # every point restored, none recomputed
        assert pickle.dumps(tuple(uninterrupted.values)) == pickle.dumps(
            tuple(resumed.values)
        )

    def test_partial_journal_restores_and_computes_the_rest(self, tmp_path):
        spec = {"grid": 6}
        with ShardedCheckpoint.open("part", spec, directory=tmp_path) as seed:
            for index in (0, 2, 4):
                seed.record(
                    PointResult(
                        index=index, point=index, value=index * index, elapsed_s=0.1
                    )
                )
        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            with ShardedCheckpoint.open("part", spec, directory=tmp_path) as journal:
                result = fabric_sweep(
                    square,
                    range(6),
                    workers=[worker.address],
                    heartbeat_s=0.1,
                    checkpoint=journal,
                )
        finally:
            worker.close()
        assert result.resumed == 3
        assert list(result.values) == [x * x for x in range(6)]
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["skipped", "ok", "skipped", "ok", "skipped", "ok"]


class TestWorkerLifecycle:
    def test_max_sessions_bounds_the_worker(self):
        worker = FabricWorker(max_sessions=1)
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        try:
            fabric_sweep(square, range(4), workers=[worker.address], heartbeat_s=0.1)
            thread.join(timeout=5.0)
            assert not thread.is_alive()  # served its one session and returned
        finally:
            worker.close()

    def test_worker_survives_a_vanishing_coordinator(self):
        import socket as _socket

        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            # A client that connects and hangs up mid-handshake.
            drive_by = _socket.create_connection(worker.address, timeout=2.0)
            drive_by.close()
            # The worker must still serve a real sweep afterwards.
            result = fabric_sweep(
                square, range(5), workers=[worker.address], heartbeat_s=0.1
            )
        finally:
            worker.close()
        assert list(result.values) == [x * x for x in range(5)]

    def test_invalid_worker_construction(self):
        with pytest.raises(ValueError):
            FabricWorker(throttle_s=-1.0)
        with pytest.raises(ValueError):
            FabricWorker(max_sessions=0)


class CrashySessionWorker(FabricWorker):
    """A worker whose first ``crash_sessions`` sessions die mid-handshake.

    The listener stays up throughout, so the coordinator's re-dial
    loop reconnects to the *same* worker — the in-process stand-in for
    SIGKILLing a worker process and relaunching it on the same port.
    """

    def __init__(self, *args, crash_sessions=1, **kwargs):
        super().__init__(*args, **kwargs)
        self.crash_sessions = crash_sessions
        self.sessions = 0

    def _work_loop(self, rfile, wfile, wlock, fn, spec):
        self.sessions += 1
        if self.sessions <= self.crash_sessions:
            raise FabricError("simulated worker crash")
        super()._work_loop(rfile, wfile, wlock, fn, spec)


class TestElasticMembership:
    def test_crashed_worker_rejoins_and_serves_the_sweep(self):
        # Session 1 dies immediately; the membership loop must re-dial
        # the same endpoint and finish the sweep over session 2 — no
        # local fallback, no lost points.
        worker = CrashySessionWorker(crash_sessions=1)
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        rejoined_before = _WORKERS_REJOINED.value
        try:
            result = fabric_sweep(
                square,
                range(10),
                workers=[worker.address],
                heartbeat_s=0.1,
                membership=MembershipPolicy(rejoin_backoff_s=0.05, seed=1),
            )
        finally:
            worker.close()
        assert list(result.values) == [x * x for x in range(10)]
        assert result.executor == "fabric"
        assert worker.sessions >= 2  # the rejoin really served points
        assert _WORKERS_REJOINED.value >= rejoined_before + 1

    def test_worker_registers_into_a_listening_sweep_mid_flight(self):
        # The coordinator listens on a pre-bound socket; a second
        # worker dials in with register() while the sweep is running
        # and must be admitted as a late join.
        listener = socket.create_server(("127.0.0.1", 0), backlog=4)
        host, port = listener.getsockname()[:2]
        plodder = FabricWorker(throttle_s=0.05)
        threading.Thread(target=plodder.serve_forever, daemon=True).start()
        joiner = FabricWorker()
        late_before = _LATE_JOINS.value

        def register_late():
            import time

            time.sleep(0.2)  # well into the throttled sweep
            joiner.register(host, port)

        registrar = threading.Thread(target=register_late, daemon=True)
        registrar.start()
        try:
            result = fabric_sweep(
                square,
                range(24),
                workers=[plodder.address],
                heartbeat_s=0.1,
                listen=listener,
            )
        finally:
            registrar.join(timeout=10.0)
            plodder.close()
            joiner.close()
        assert list(result.values) == [x * x for x in range(24)]
        assert _LATE_JOINS.value >= late_before + 1
        fleet = fleet_health()
        assert fleet["late_joins"] >= 1
        assert len(fleet["workers"]) >= 2  # the registrant entered the ledger

    def test_flapping_worker_is_quarantined_then_ejected(self):
        # The flapper crashes every session: two losses trip quarantine
        # (quarantine_losses=2), the probation probe crashes too, and a
        # second quarantine exceeds max_quarantines=1 → ejection. The
        # healthy worker carries the sweep to a correct finish meanwhile.
        flapper = CrashySessionWorker(crash_sessions=10_000)
        steady = FabricWorker(throttle_s=0.02)
        flapper_endpoint = "{}:{}".format(*flapper.address)
        for worker in (flapper, steady):
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        quarantined_before = _WORKERS_QUARANTINED.value
        ejected_before = _WORKERS_EJECTED.value
        try:
            result = fabric_sweep(
                square,
                range(60),
                workers=[flapper.address, steady.address],
                heartbeat_s=0.1,
                membership=MembershipPolicy(
                    rejoin_backoff_s=0.02,
                    max_rejoin_backoff_s=0.04,
                    quarantine_losses=2,
                    probation_s=0.05,
                    max_probation_s=0.1,
                    max_quarantines=1,
                    seed=3,
                ),
            )
        finally:
            flapper.close()
            steady.close()
        assert list(result.values) == [x * x for x in range(60)]
        assert all(o.status == "ok" for o in result.outcomes)
        assert _WORKERS_QUARANTINED.value >= quarantined_before + 1
        assert _WORKERS_EJECTED.value >= ejected_before + 1
        states = {w["endpoint"]: w["state"] for w in fleet_health()["workers"]}
        assert states[flapper_endpoint] == "ejected"

    def test_heartbeats_cover_points_slower_than_the_lease_ttl(self):
        # Satellite regression: liveness is decoupled from point
        # completion, so a point that takes longer than lease_ttl_s
        # (0.25s vs 0.15s here) must NOT cost the worker its session.
        worker = FabricWorker()
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        lost_before = _WORKERS_LOST.value
        try:
            result = fabric_sweep(
                sluggish,
                range(4),
                workers=[worker.address],
                heartbeat_s=0.05,
                lease_ttl_s=0.15,
            )
        finally:
            worker.close()
        assert list(result.values) == [x * x for x in range(4)]
        assert _WORKERS_LOST.value == lost_before

    def test_adaptive_leases_stay_within_bounds(self):
        fleet = [FabricWorker(), FabricWorker()]
        for worker in fleet:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        endpoints = [w.address for w in fleet]
        try:
            result = fabric_sweep(
                square,
                range(64),
                workers=endpoints,
                heartbeat_s=0.1,
                lease_size=1,
                max_lease_size=8,
            )
        finally:
            for worker in fleet:
                worker.close()
        assert list(result.values) == [x * x for x in range(64)]
        assert result.chunksize == 1  # the floor, as documented

    def test_max_lease_size_below_lease_size_is_rejected(self, fleet):
        with pytest.raises(ValueError, match="max_lease_size"):
            fabric_sweep(
                square, range(4), workers=fleet, lease_size=4, max_lease_size=2
            )

    def test_lease_target_scales_with_observed_rate(self):
        coordinator = object.__new__(_Coordinator)
        coordinator._lease_size = 1
        coordinator._max_lease_size = 8
        coordinator._heartbeat_s = 0.5
        link = _Link(id=0, endpoint="x:1", sock=None, rfile=None, wfile=None)
        assert coordinator._lease_target(link) == 1  # no rate yet → floor
        link.rate_ewma = 100.0
        assert coordinator._lease_target(link) == 8  # clamped to the cap
        link.rate_ewma = 4.0
        assert coordinator._lease_target(link) == 4  # two heartbeats' worth
        coordinator._max_lease_size = 1
        assert coordinator._lease_target(link) == 1  # elastic leases off


class TestMembershipPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = MembershipPolicy(seed=42)
        again = MembershipPolicy(seed=42)
        for attempt in range(1, 6):
            delay = policy.rejoin_delay_s(0, attempt)
            assert delay == again.rejoin_delay_s(0, attempt)
            base = min(
                policy.rejoin_backoff_s * policy.rejoin_factor ** (attempt - 1),
                policy.max_rejoin_backoff_s,
            )
            assert base <= delay <= base * (1.0 + policy.rejoin_jitter)
        probation = policy.probation_delay_s(1, 1)
        assert probation == again.probation_delay_s(1, 1)
        assert probation >= policy.probation_s

    def test_different_seeds_jitter_differently(self):
        schedules = {
            tuple(
                MembershipPolicy(seed=seed).rejoin_delay_s(0, attempt)
                for attempt in range(1, 4)
            )
            for seed in range(8)
        }
        assert len(schedules) > 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rejoin_backoff_s": -0.1},
            {"rejoin_factor": 0.5},
            {"rejoin_jitter": 1.5},
            {"max_rejoin_backoff_s": 0.1, "rejoin_backoff_s": 0.5},
            {"max_dial_failures": 0},
            {"quarantine_losses": 0},
            {"probation_s": 0.0},
            {"probation_factor": 0.9},
            {"max_probation_s": 0.5},
            {"max_quarantines": -1},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MembershipPolicy(**kwargs)

    def test_one_based_arguments_are_enforced(self):
        policy = MembershipPolicy()
        with pytest.raises(ValueError):
            policy.rejoin_delay_s(0, 0)
        with pytest.raises(ValueError):
            policy.probation_delay_s(0, 0)


class _FakeSpan:
    """A span double for driving the coordinator without tracing."""

    def add_event(self, *args, **kwargs):
        pass

    def set_attributes(self, **kwargs):
        pass


class _ScriptedFleet:
    """Drives a thread-free ``_Coordinator`` through a membership script.

    Workers are socketpair-backed links admitted through the real
    ``_admit`` path; leases flow through ``_offer_work`` and results
    through ``_accept_result``, so the scheduling state machine under
    test is the production one — only the network and threads are gone.
    """

    def __init__(self, points, policy):
        spec = _engine._EvalSpec(on_error="skip", retry=None, timeout_s=None)
        self.spec = spec
        self.coordinator = _Coordinator(
            square,
            list(enumerate(points)),
            [],
            endpoints=(),
            fn_blob=_pack(square),
            spec_blob=_pack(spec),
            spec=spec,
            checkpoint=None,
            lease_size=1,
            max_lease_size=3,
            heartbeat_s=0.5,
            lease_ttl_s=2.0,
            max_point_crashes=2,
            policy=policy,
            listener=None,
            connect_timeout_s=0.1,
            span=_FakeSpan(),
        )
        self.links = {}  # worker ordinal -> (link, peer reader file)
        self.healths = {}
        self.sockets = []
        self.link_seq = 0

    def join(self, worker):
        if worker in self.links:
            return
        ours, theirs = socket.socketpair()
        self.sockets += [ours, theirs]
        self.link_seq += 1
        link = _Link(
            id=self.link_seq,
            endpoint=f"sim:{worker}",
            sock=ours,
            rfile=ours.makefile("r", encoding="utf-8", newline="\n"),
            wfile=ours.makefile("w", encoding="utf-8", newline="\n"),
            host="sim",
            pid=worker,
        )
        health = self.healths.setdefault(
            worker,
            _EndpointHealth(
                ordinal=worker, endpoint=f"sim:{worker}", addr=("sim", worker + 1)
            ),
        )
        peer = theirs.makefile("r", encoding="utf-8", newline="\n")
        if self.coordinator._admit(
            link, health, event="worker_rejoined", start_reader=False
        ):
            self.links[worker] = (link, peer)

    def work(self, worker):
        entry = self.links.get(worker)
        if entry is None:
            return
        link, peer = entry
        self.coordinator._offer_work(link)
        try:
            frame = _recv(peer)
        except (OSError, ValueError, FabricError):
            return
        if frame is None or frame["type"] != "lease":
            return
        outcomes = [
            _engine._eval_point(square, index, point, self.spec)
            for index, point in _unpack(frame["points"])
        ]
        self.coordinator._accept_result(
            link, {"id": frame["id"], "outcomes": _pack(outcomes)}
        )

    def lose(self, worker):
        entry = self.links.pop(worker, None)
        if entry is None:
            return
        link, _ = entry
        self.coordinator._lose_worker(link, "scripted loss")

    def settle(self):
        """Finish whatever the script left behind, the production way."""
        for worker in list(self.links):
            self.lose(worker)
        self.coordinator._finish_poison_points()
        self.coordinator._finish_locally()
        results = sorted(
            self.coordinator._results.values(), key=lambda r: r.index
        )
        for sock in self.sockets:
            try:
                sock.close()
            except OSError:
                pass
        return results


class TestMembershipDeterminism:
    @settings(deadline=None, max_examples=30)
    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["join", "work", "lose"]), st.integers(0, 2)
            ),
            max_size=40,
        )
    )
    def test_any_membership_schedule_yields_identical_artifacts(self, script):
        # The determinism contract: joins, losses, rejoins and
        # quarantines are scheduling events only. Whatever interleaving
        # hypothesis finds, the settled values must be byte-identical
        # to the plain serial evaluation of the same grid.
        points = list(range(12))
        policy = MembershipPolicy(
            rejoin_backoff_s=0.01,
            max_rejoin_backoff_s=0.02,
            quarantine_losses=1,
            probation_s=0.01,
            max_probation_s=0.02,
            max_quarantines=1,
            seed=7,
        )
        fleet = _ScriptedFleet(points, policy)
        for action, worker in script:
            getattr(fleet, {"join": "join", "work": "work", "lose": "lose"}[action])(
                worker
            )
        results = fleet.settle()
        assert [r.index for r in results] == points
        assert all(r.status == "ok" for r in results)
        assert pickle.dumps(tuple(r.value for r in results)) == pickle.dumps(
            tuple(x * x for x in points)
        )


class TestWireProtocol:
    def test_malformed_frame_raises_fabric_error(self):
        import io

        with pytest.raises(FabricError, match="malformed"):
            _recv(io.StringIO("this is not json\n"))
        with pytest.raises(FabricError, match="without a type"):
            _recv(io.StringIO('{"no": "type"}\n'))
        assert _recv(io.StringIO("")) is None
