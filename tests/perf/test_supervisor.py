"""The local worker supervisor: spawn, watch, respawn — within a budget.

These tests boot real ``sweep-worker`` subprocesses through
:class:`~repro.perf.WorkerSupervisor` and really kill them, asserting
the respawn contract: a replacement comes back *on the same port* (so
a coordinator's re-dial loop finds it), and a crash-looping slot is
given up once its restart-rate budget is spent. Point functions are
picklable-by-reference builtins (``str``) so the worker subprocesses
need nothing beyond the installed package.
"""

import signal
import time

import pytest

from repro.core.errors import FabricError
from repro.perf import WorkerSupervisor, fabric_sweep
from repro.perf.supervisor import _GIVEUPS, _RESPAWNS

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)


def _wait_for(predicate, timeout_s=15.0, interval_s=0.05):
    """Poll ``predicate`` until true or the deadline passes."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestSupervisorLifecycle:
    def test_supervised_fleet_serves_a_sweep(self):
        with WorkerSupervisor(2) as fleet:
            endpoints = fleet.endpoints
            assert len(endpoints) == 2
            result = fabric_sweep(
                str, range(6), workers=",".join(endpoints), heartbeat_s=0.1
            )
        assert list(result.values) == [str(x) for x in range(6)]
        assert result.executor == "fabric"

    def test_killed_worker_respawns_on_the_same_port(self):
        supervisor = WorkerSupervisor(1, poll_s=0.05)
        try:
            (endpoint,) = supervisor.start()
            victim = supervisor._slots[0].process
            respawns_before = _RESPAWNS.value
            victim.kill()
            victim.wait()
            assert _wait_for(lambda: _RESPAWNS.value > respawns_before)
            assert supervisor.endpoints == (endpoint,)  # same port
            replacement = supervisor._slots[0].process
            assert replacement.pid != victim.pid
            # The replacement serves sweeps exactly where the casualty was.
            result = fabric_sweep(
                str, range(4), workers=endpoint, heartbeat_s=0.1
            )
            assert list(result.values) == [str(x) for x in range(4)]
        finally:
            supervisor.stop()

    def test_crash_loop_exhausts_the_restart_budget(self):
        supervisor = WorkerSupervisor(
            1, poll_s=0.05, max_restarts=0, restart_window_s=60.0
        )
        try:
            supervisor.start()
            giveups_before = _GIVEUPS.value
            supervisor._slots[0].process.kill()
            assert _wait_for(lambda: _GIVEUPS.value > giveups_before)
            assert supervisor._slots[0].given_up
        finally:
            supervisor.stop()

    def test_stop_is_idempotent(self):
        supervisor = WorkerSupervisor(1)
        supervisor.start()
        supervisor.stop()
        supervisor.stop()
        assert all(
            slot.process is None or slot.process.poll() is not None
            for slot in supervisor._slots
        )


class TestSupervisorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": 0},
            {"count": 1, "throttle_s": -0.1},
            {"count": 1, "max_restarts": -1},
            {"count": 1, "restart_window_s": 0.0},
            {"count": 1, "poll_s": 0.0},
        ],
    )
    def test_invalid_construction_is_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkerSupervisor(**kwargs)

    def test_double_start_is_refused(self):
        supervisor = WorkerSupervisor(1)
        try:
            supervisor.start()
            with pytest.raises(FabricError):
                supervisor.start()
        finally:
            supervisor.stop()
