"""The sweep engine's resilience contracts: policies, deadlines, resume.

These tests pin down the failure-policy semantics (`on_error`), the
deterministic seeded backoff schedule, per-point deadlines on every
executor, and the checkpoint/resume property: an interrupted sweep
resumed from its journal is bit-identical to one that never stopped.
"""

import functools
import os
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import (
    EXECUTORS,
    ON_ERROR_POLICIES,
    POINT_STATUSES,
    PointTimeout,
    RetryPolicy,
    SweepCheckpoint,
    sweep,
)


def _square(x):
    return x * x


def _explode_on_odd(x):
    if x % 2:
        raise ValueError(f"odd point {x}")
    return x * x


def _succeed_after(x, *, marker_dir, needed):
    """Fail the first ``needed`` attempts for ``x``, then succeed."""
    path = os.path.join(marker_dir, f"attempts-{x}")
    count = int(open(path).read()) if os.path.exists(path) else 0
    if count < needed:
        with open(path, "w") as handle:
            handle.write(str(count + 1))
        raise RuntimeError(f"attempt {count + 1} for {x}")
    return x * x


def _sleepy_on_three(x):
    if x == 3:
        time.sleep(0.8)
    return x * x


# -- on_error policies -----------------------------------------------------


def test_policy_tuples_are_exported():
    assert ON_ERROR_POLICIES == ("raise", "skip", "retry")
    assert POINT_STATUSES == ("ok", "failed", "timed_out", "crashed", "skipped")


@pytest.mark.parametrize("executor", EXECUTORS)
def test_skip_keeps_sweeping_past_failures(executor):
    result = sweep(_explode_on_odd, range(8), executor=executor, jobs=2, on_error="skip")
    assert list(result) == [x * x if x % 2 == 0 else None for x in range(8)]
    statuses = {o.index: o.status for o in result.outcomes}
    assert all(statuses[x] == ("failed" if x % 2 else "ok") for x in range(8))
    assert result.status_counts() == {"ok": 4, "failed": 4}
    assert len(result.failures) == 4
    assert all("odd point" in o.error for o in result.failures)
    assert all(not o.ok for o in result.failures)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_retry_recovers_transient_failures(executor, tmp_path):
    fn = functools.partial(_succeed_after, marker_dir=str(tmp_path), needed=2)
    policy = RetryPolicy(max_retries=3, backoff_s=0.001)
    result = sweep(fn, range(6), executor=executor, jobs=2, on_error="retry", retry=policy)
    assert list(result) == [x * x for x in range(6)]
    assert all(o.status == "ok" for o in result.outcomes)
    assert all(o.attempts == 3 for o in result.outcomes)


def test_retry_budget_exhaustion_records_failure():
    policy = RetryPolicy(max_retries=2, backoff_s=0.001)
    result = sweep(_explode_on_odd, range(4), on_error="retry", retry=policy)
    failed = {o.index: o for o in result.failures}
    assert set(failed) == {1, 3}
    assert all(o.attempts == 3 for o in failed.values())
    assert all(o.status == "failed" for o in failed.values())


def test_raise_is_the_default_and_propagates():
    with pytest.raises(ValueError, match="odd point 1"):
        sweep(_explode_on_odd, range(4))


def test_retry_policy_requires_retry_mode():
    with pytest.raises(ValueError, match="on_error='retry'"):
        sweep(_square, range(3), retry=RetryPolicy())


@pytest.mark.parametrize(
    "kwargs",
    [
        {"on_error": "explode"},
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"max_respawns": -1},
    ],
)
def test_invalid_policy_arguments_are_rejected(kwargs):
    with pytest.raises(ValueError):
        sweep(_square, range(3), **kwargs)


# -- deadlines -------------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTORS)
def test_deadline_times_out_the_slow_point(executor):
    result = sweep(
        _sleepy_on_three,
        range(5),
        executor=executor,
        jobs=2,
        timeout_s=0.15,
        on_error="skip",
    )
    statuses = {o.index: o.status for o in result.outcomes}
    assert statuses[3] == "timed_out"
    assert all(statuses[x] == "ok" for x in range(5) if x != 3)
    assert result[3] is None
    assert "deadline" in {o.index: o for o in result.outcomes}[3].error


def test_deadline_with_raise_propagates_point_timeout():
    with pytest.raises(PointTimeout, match="deadline"):
        sweep(_sleepy_on_three, range(5), timeout_s=0.15)


# -- the retry schedule is a pure function of the policy -------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_s"):
        RetryPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError, match="factor"):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError, match="1-based"):
        RetryPolicy().delay_s(0, 0)


@given(seed=st.integers(0, 2**32), index=st.integers(0, 100_000))
@settings(max_examples=50, deadline=None)
def test_backoff_schedule_is_deterministic_under_a_fixed_seed(seed, index):
    first = RetryPolicy(max_retries=5, seed=seed)
    second = RetryPolicy(max_retries=5, seed=seed)
    assert first.schedule(index) == second.schedule(index)
    assert len(first.schedule(index)) == 5


@given(
    seed=st.integers(0, 2**32),
    index=st.integers(0, 100_000),
    attempt=st.integers(1, 8),
    backoff=st.floats(0.001, 1.0),
    factor=st.floats(1.0, 4.0),
    jitter=st.floats(0.0, 1.0),
)
@settings(max_examples=100, deadline=None)
def test_backoff_delays_stay_inside_the_jitter_band(
    seed, index, attempt, backoff, factor, jitter
):
    policy = RetryPolicy(
        max_retries=attempt, backoff_s=backoff, factor=factor, jitter=jitter, seed=seed
    )
    delay = policy.delay_s(index, attempt)
    base = backoff * factor ** (attempt - 1)
    assert base * (1.0 - 1e-9) <= delay <= base * (1.0 + jitter) * (1.0 + 1e-9)


# -- checkpoint / resume ---------------------------------------------------


def test_checkpointed_sweep_resumes_bit_identically(tmp_path):
    points = list(range(10))
    expected = sweep(_square, points)
    spec = {"points": points}
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        sweep(_square, points[:4], checkpoint=checkpoint)
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        resumed = sweep(_square, points, checkpoint=checkpoint)
    assert resumed.values == expected.values
    assert resumed.resumed == 4
    counts = resumed.status_counts()
    assert counts == {"skipped": 4, "ok": 6}


def test_resume_ignores_journals_for_a_different_spec(tmp_path):
    with SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path) as checkpoint:
        sweep(_square, range(4), checkpoint=checkpoint)
    with SweepCheckpoint.open("unit", {"n": 2}, directory=tmp_path) as checkpoint:
        result = sweep(_square, range(4), checkpoint=checkpoint)
    assert result.resumed == 0


def test_fully_journalled_sweep_recomputes_nothing(tmp_path):
    calls = []

    def counted(x):
        calls.append(x)
        return x * x

    spec = {"points": 6}
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        sweep(counted, range(6), checkpoint=checkpoint)
    assert len(calls) == 6
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        result = sweep(counted, range(6), checkpoint=checkpoint)
    assert len(calls) == 6  # nothing recomputed
    assert list(result) == [x * x for x in range(6)]
    assert result.resumed == 6


@given(interrupt_after=st.integers(min_value=1, max_value=9))
@settings(max_examples=15, deadline=None)
def test_resume_after_interrupt_matches_the_uninterrupted_run(interrupt_after):
    points = list(range(10))
    expected = sweep(lambda x: x / 7.0, points).values
    with tempfile.TemporaryDirectory() as tmp:
        calls = {"n": 0}

        def bomb(x):
            calls["n"] += 1
            if calls["n"] > interrupt_after:
                raise KeyboardInterrupt
            return x / 7.0

        spec = {"points": points}
        with SweepCheckpoint.open("prop", spec, directory=tmp) as checkpoint:
            with pytest.raises(KeyboardInterrupt):
                sweep(bomb, points, checkpoint=checkpoint)
        with SweepCheckpoint.open("prop", spec, directory=tmp) as checkpoint:
            resumed = sweep(lambda x: x / 7.0, points, checkpoint=checkpoint)
        assert resumed.values == expected
        assert resumed.resumed == interrupt_after
        assert all(o.ok for o in resumed.outcomes)


def test_failed_points_are_rerun_on_resume(tmp_path):
    spec = {"points": 4}
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        sweep(_explode_on_odd, range(4), on_error="skip", checkpoint=checkpoint)
    with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
        result = sweep(_square, range(4), checkpoint=checkpoint)
    # The even points were journalled ok; the odd ones re-ran (with the
    # healthy function this time) and now succeed.
    assert result.resumed == 2
    assert list(result) == [0, 1, 4, 9]
