"""The checkpoint journal's durability and self-healing contracts."""

import json
import pickle
import socket
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomicio import atomic_write_bytes, atomic_write_text
from repro.core.errors import CheckpointError
from repro.perf import (
    JournalEntry,
    JournalLock,
    PointResult,
    ShardedCheckpoint,
    SweepCheckpoint,
    checkpoint_directory,
    merge_journal_loads,
    spec_digest,
)
from repro.perf.journal import CHECKPOINT_DIR_ENV, DEFAULT_CHECKPOINT_DIR, JOURNAL_FORMAT


def _ok(index, value):
    return PointResult(index=index, point=index, value=value, elapsed_s=0.25)


def _failed(index):
    return PointResult(
        index=index,
        point=index,
        value=None,
        elapsed_s=0.1,
        status="failed",
        attempts=3,
        error="ValueError('boom')",
    )


class TestSpecDigest:
    def test_digest_is_stable_and_spec_sensitive(self):
        assert spec_digest("s", {"n": 16}) == spec_digest("s", {"n": 16})
        assert spec_digest("s", {"n": 16}) != spec_digest("s", {"n": 17})
        assert spec_digest("s", {"n": 16}) != spec_digest("t", {"n": 16})

    def test_digest_ignores_key_order(self):
        assert spec_digest("s", {"a": 1, "b": 2}) == spec_digest("s", {"b": 2, "a": 1})


class TestCheckpointDirectory:
    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert str(checkpoint_directory()) == DEFAULT_CHECKPOINT_DIR

    def test_environment_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "elsewhere"))
        assert checkpoint_directory() == tmp_path / "elsewhere"


class TestSweepCheckpoint:
    def test_round_trip_restores_only_ok_entries(self, tmp_path):
        spec = {"n": 4}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, {"area": 12.5}))
            checkpoint.record(_failed(1))
            checkpoint.record(_ok(2, (1, 2.5, "three")))
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 2}
        assert done[0].value == {"area": 12.5}
        assert done[2].value == (1, 2.5, "three")
        assert isinstance(done[0], JournalEntry)
        assert reopened.completed == 2

    def test_skipped_outcomes_are_not_rejournalled(self, tmp_path):
        with SweepCheckpoint.open("unit", {}, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            restored = PointResult(
                index=0, point=0, value=1, elapsed_s=0.0, status="skipped"
            )
            checkpoint.record(restored)
            lines = checkpoint.path.read_text().splitlines()
        assert len(lines) == 2  # header + the one real record

    def test_record_on_a_closed_checkpoint_raises(self, tmp_path):
        checkpoint = SweepCheckpoint.open("unit", {}, directory=tmp_path)
        checkpoint.close()
        checkpoint.close()  # idempotent
        with pytest.raises(ValueError, match="not open"):
            checkpoint.record(_ok(0, 1))

    def test_truncated_tail_is_dropped(self, tmp_path):
        spec = {"n": 4}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, "zero"))
            checkpoint.record(_ok(1, "one"))
            path = checkpoint.path
        # Simulate a crash mid-append: half a JSON record at the tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "status": "o')
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 1}

    def test_header_mismatch_starts_a_fresh_journal(self, tmp_path):
        with SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            path = checkpoint.path
        # Corrupt the header wholesale; reopening must not trust the file.
        content = path.read_text().splitlines()
        content[0] = json.dumps({"format": "something-else/9"})
        path.write_text("\n".join(content) + "\n")
        reopened = SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path)
        try:
            assert reopened.load() == {}
            header = json.loads(reopened.path.read_text().splitlines()[0])
            assert header["format"] == JOURNAL_FORMAT
        finally:
            reopened.close()

    def test_stale_pickle_truncates_from_there(self, tmp_path):
        spec = {"n": 1}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            path = checkpoint.path
        record = {
            "index": 1,
            "status": "ok",
            "attempts": 1,
            "elapsed_s": 0.1,
            "error": None,
            "value": "bm90LXBpY2tsZQ==",  # valid base64, not a pickle
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0}

    def test_unknown_status_is_rejected(self, tmp_path):
        from repro.perf.journal import _decode_record

        assert _decode_record(json.dumps({"index": 0, "status": "maybe"})) is None
        assert _decode_record(json.dumps({"index": "zero", "status": "ok"})) is None
        assert _decode_record(json.dumps([1, 2, 3])) is None
        assert _decode_record("not json") is None


def _corrupt_record(path, index, mutate):
    """Rewrite the journal record for ``index`` through ``mutate``.

    The mutated record is re-serialised as valid JSON with its *original*
    ``crc`` untouched, so only the checksum — not the JSON parser, not the
    pickle decoder — can tell the record went bad.
    """
    lines = path.read_text(encoding="utf-8").splitlines()
    for position, line in enumerate(lines[1:], start=1):
        record = json.loads(line)
        if isinstance(record, dict) and record.get("index") == index:
            mutate(record)
            lines[position] = json.dumps(record, sort_keys=True)
            break
    else:  # pragma: no cover - would mean the test setup is wrong
        raise AssertionError(f"no record for index {index} in {path}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestRecordChecksums:
    """Per-record CRCs turn silent bit rot into a drop-and-rerun."""

    def test_bit_rotted_record_is_dropped_but_neighbours_survive(self, tmp_path):
        spec = {"n": 3}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            for index in range(3):
                checkpoint.record(_ok(index, f"value-{index}"))
            path = checkpoint.path

        def flip_a_value_byte(record):
            # A *valid* base64 pickle of a different value: every layer
            # except the CRC would happily accept it.
            import base64

            record["value"] = base64.b64encode(pickle.dumps("tampered")).decode()

        _corrupt_record(path, 1, flip_a_value_byte)
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 2}
        assert done[0].value == "value-0"
        assert done[2].value == "value-2"

    def test_tampered_metadata_fails_the_crc_too(self, tmp_path):
        spec = {"n": 2}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, "zero"))
            checkpoint.record(_ok(1, "one"))
            path = checkpoint.path
        _corrupt_record(path, 0, lambda record: record.update(attempts=99))
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {1}

    def test_legacy_record_without_crc_still_loads(self, tmp_path):
        import base64

        spec = {"n": 2}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, "zero"))
            path = checkpoint.path
        legacy = {
            "index": 1,
            "status": "ok",
            "attempts": 1,
            "elapsed_s": 0.1,
            "error": None,
            "value": base64.b64encode(pickle.dumps("one")).decode("ascii"),
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(legacy) + "\n")
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 1}
        assert done[1].value == "one"

    def test_resume_recomputes_only_the_corrupted_point(self, tmp_path):
        from repro.perf import sweep

        spec = {"kind": "crc-resume"}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            sweep(lambda x: x * 10, range(4), checkpoint=checkpoint)
            path = checkpoint.path
        _corrupt_record(path, 2, lambda record: record.update(elapsed_s=1e9))
        recomputed = []

        def traced(x):
            recomputed.append(x)
            return x * 10

        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            result = sweep(traced, range(4), checkpoint=checkpoint)
        assert list(result.values) == [0, 10, 20, 30]
        assert recomputed == [2]


class TestAtomicWrites:
    def test_atomic_write_text_replaces_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        # No stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_atomic_write_bytes_creates_parents_file(self, tmp_path):
        target = tmp_path / "nested" / "artifact.bin"
        target.parent.mkdir()
        written = atomic_write_bytes(target, b"\x00\x01")
        assert written == target
        assert target.read_bytes() == b"\x00\x01"

    def test_export_write_csv_is_atomic_and_crlf(self, tmp_path):
        from repro.reporting.export import rows_to_csv, write_csv

        target = tmp_path / "table.csv"
        write_csv(target, ("a", "b"), [(1, 2), (3, 4)])
        data = target.read_bytes()
        assert data == rows_to_csv(("a", "b"), [(1, 2), (3, 4)]).encode()
        assert b"\r\n" in data


def _deterministic(index):
    """The outcome for ``index``, identical wherever it is computed.

    Point functions are pure, so two records for the same index — a
    stolen lease finishing twice, a re-queued point landing on another
    worker — are byte-equal. Index 5 mod 7 fails, exercising the rule
    that only ``ok`` records count as progress.
    """
    if index % 7 == 5:
        return PointResult(
            index=index, point=index, value=None, elapsed_s=0.25,
            status="failed", attempts=2, error="ValueError('boom')",
        )
    return PointResult(index=index, point=index, value=index * index, elapsed_s=0.25)


class TestShardedCheckpoint:
    def test_records_route_to_the_home_shard(self, tmp_path):
        with ShardedCheckpoint.open("route", {}, shards=3, directory=tmp_path) as cp:
            for index in range(7):
                cp.record(_deterministic(index))
            for shard, path in enumerate(cp.paths):
                assert f"route.s{shard}of3" in path.name
                recorded = [
                    json.loads(line)["index"]
                    for line in path.read_text().splitlines()[1:]
                ]
                assert recorded == [i for i in range(7) if i % 3 == shard]

    def test_load_and_completed_span_all_shards(self, tmp_path):
        spec = {"n": 9}
        with ShardedCheckpoint.open("span", spec, shards=4, directory=tmp_path) as cp:
            for index in range(9):
                cp.record(_deterministic(index))
        with ShardedCheckpoint.open("span", spec, shards=4, directory=tmp_path) as cp:
            done = cp.load()
            assert cp.completed == 8  # index 5 failed, so it is not progress
        assert set(done) == set(range(9)) - {5}
        assert done[3].value == 9

    def test_invalid_shard_count_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedCheckpoint.open("bad", {}, shards=0, directory=tmp_path)

    def test_changed_shard_count_ignores_the_old_shards(self, tmp_path):
        spec = {"n": 4}
        with ShardedCheckpoint.open("re", spec, shards=2, directory=tmp_path) as cp:
            cp.record(_deterministic(0))
        with ShardedCheckpoint.open("re", spec, shards=4, directory=tmp_path) as cp:
            # Different shard names: old progress is invisible, never mis-merged.
            assert cp.load() == {}

    def test_partial_open_failure_releases_earlier_shards(self, tmp_path):
        spec = {"n": 2}
        # Hold the lock on what will be shard 1 of 2; opening the set
        # must fail on that shard and release shard 0 on the way out.
        blocker = SweepCheckpoint.open("part.s1of2", spec, directory=tmp_path)
        try:
            with pytest.raises(CheckpointError):
                ShardedCheckpoint.open("part", spec, shards=2, directory=tmp_path)
        finally:
            blocker.close()
        # Shard 0's lock was released: the set opens cleanly now.
        ShardedCheckpoint.open("part", spec, shards=2, directory=tmp_path).close()


class TestMergeProperty:
    """Satellite invariant: sharding is invisible in the merged load.

    However points were interleaved, duplicated (stolen leases) or
    re-ordered across shard journals, merging the shards back must give
    a progress map *bit-identical* — pickled bytes, not just ``==`` —
    to a single journal fed the same outcomes.
    """

    @given(
        indices=st.lists(st.integers(min_value=0, max_value=31), max_size=40),
        shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_matches_a_single_journal_bit_exactly(
        self, indices, shards
    ):
        spec = {"grid": 32}
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp)
            with ShardedCheckpoint.open(
                "prop", spec, shards=shards, directory=base / "sharded"
            ) as sharded:
                for index in indices:
                    sharded.record(_deterministic(index))
            with SweepCheckpoint.open(
                "prop", spec, directory=base / "single"
            ) as single:
                for index in indices:
                    single.record(_deterministic(index))
            with ShardedCheckpoint.open(
                "prop", spec, shards=shards, directory=base / "sharded"
            ) as sharded:
                merged = sharded.load()
            with SweepCheckpoint.open(
                "prop", spec, directory=base / "single"
            ) as single:
                flat = single.load()
        assert pickle.dumps(tuple(sorted(merged.items()))) == pickle.dumps(
            tuple(sorted(flat.items()))
        )

    @given(
        indices=st.lists(st.integers(min_value=0, max_value=31), max_size=40),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_merge_is_independent_of_shard_order(self, indices, order):
        loads = {}
        for index in indices:
            entry = _deterministic(index)
            if entry.status != "ok":
                continue
            loads.setdefault(index % 4, {})[index] = JournalEntry(
                index=index, status="ok", attempts=1, elapsed_s=0.25,
                error=None, value=entry.value,
            )
        shard_loads = list(loads.values())
        baseline = merge_journal_loads(shard_loads)
        order.shuffle(shard_loads)
        shuffled = merge_journal_loads(shard_loads)
        assert pickle.dumps(tuple(sorted(baseline.items()))) == pickle.dumps(
            tuple(sorted(shuffled.items()))
        )


class TestJournalLock:
    def test_concurrent_open_fails_fast_with_the_holder(self, tmp_path):
        from repro.core.errors import CheckpointError

        spec = {"n": 1}
        first = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        try:
            with pytest.raises(CheckpointError, match="locked by another") as info:
                SweepCheckpoint.open("unit", spec, directory=tmp_path)
            # The error names the live holder so the operator can find it.
            import os

            assert f"{socket.gethostname()}:{os.getpid()}" in str(info.value)
        finally:
            first.close()

    def test_reopen_after_close_succeeds(self, tmp_path):
        spec = {"n": 1}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as reopened:
            assert set(reopened.load()) == {0}

    def test_different_specs_do_not_contend(self, tmp_path):
        first = SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path)
        second = SweepCheckpoint.open("unit", {"n": 2}, directory=tmp_path)
        first.close()
        second.close()

    def test_stale_sidecar_is_reclaimed(self, tmp_path):
        from repro.perf import JournalLock

        journal = tmp_path / "unit-cafe.jsonl"
        sidecar = tmp_path / "unit-cafe.jsonl.lock"
        # A crashed run leaves its metadata behind; the kernel released
        # the flock with the dead process, so the next run reclaims it.
        sidecar.write_text('{"pid": 99999999, "started": "2026-01-01T00:00:00"}\n')
        lock = JournalLock(journal).acquire()
        try:
            assert lock.held
            assert lock.reclaimed_from == 99999999
        finally:
            lock.release()
        assert not lock.held

    def test_release_truncates_but_keeps_the_sidecar(self, tmp_path):
        from repro.perf import JournalLock

        lock = JournalLock(tmp_path / "unit-beef.jsonl").acquire()
        assert lock.path.read_text().strip()  # holder metadata recorded
        lock.release()
        assert lock.path.exists()
        assert lock.path.read_text() == ""  # empty sidecar = nobody writing
        lock.release()  # idempotent

    def test_close_releases_the_lock_even_unused(self, tmp_path):
        spec = {"n": 3}
        checkpoint = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        checkpoint.close()
        checkpoint.close()  # idempotent
        SweepCheckpoint.open("unit", spec, directory=tmp_path).close()


class TestJournalLockCrossHost:
    """Stale-lock reclaim must never reach across machines."""

    def test_foreign_host_sidecar_refuses_reclaim(self, tmp_path):
        journal = tmp_path / "unit-d15c.jsonl"
        sidecar = tmp_path / "unit-d15c.jsonl.lock"
        sidecar.write_text(
            json.dumps(
                {"host": "some-other-box", "pid": 4242,
                 "started": "2026-01-01T00:00:00"}
            )
            + "\n"
        )
        lock = JournalLock(journal)
        with pytest.raises(CheckpointError, match="different host") as info:
            lock.acquire()
        # The refusal names the foreign owner and tells the operator
        # what evidence is needed before removing the sidecar by hand.
        assert "some-other-box:4242" in str(info.value)
        assert not lock.held
        # The sidecar is untouched — refusal must not clobber the
        # foreign owner's metadata.
        assert json.loads(sidecar.read_text())["host"] == "some-other-box"

    def test_same_host_dead_pid_is_reclaimed(self, tmp_path):
        journal = tmp_path / "unit-5a3e.jsonl"
        sidecar = tmp_path / "unit-5a3e.jsonl.lock"
        sidecar.write_text(
            json.dumps(
                {"host": socket.gethostname(), "pid": 99999999,
                 "started": "2026-01-01T00:00:00"}
            )
            + "\n"
        )
        lock = JournalLock(journal).acquire()
        try:
            assert lock.held
            assert lock.reclaimed_from == 99999999
        finally:
            lock.release()

    def test_describe_holder_tolerates_every_payload_shape(self):
        describe = JournalLock._describe_holder
        assert describe(None) == "an unknown process"
        assert describe({"pid": 7}) == "pid 7"  # pre-host sidecar
        assert describe({"host": "box", "pid": 7}) == "box:7"
