"""The checkpoint journal's durability and self-healing contracts."""

import json

import pytest

from repro.core.atomicio import atomic_write_bytes, atomic_write_text
from repro.perf import JournalEntry, PointResult, SweepCheckpoint, checkpoint_directory, spec_digest
from repro.perf.journal import CHECKPOINT_DIR_ENV, DEFAULT_CHECKPOINT_DIR, JOURNAL_FORMAT


def _ok(index, value):
    return PointResult(index=index, point=index, value=value, elapsed_s=0.25)


def _failed(index):
    return PointResult(
        index=index,
        point=index,
        value=None,
        elapsed_s=0.1,
        status="failed",
        attempts=3,
        error="ValueError('boom')",
    )


class TestSpecDigest:
    def test_digest_is_stable_and_spec_sensitive(self):
        assert spec_digest("s", {"n": 16}) == spec_digest("s", {"n": 16})
        assert spec_digest("s", {"n": 16}) != spec_digest("s", {"n": 17})
        assert spec_digest("s", {"n": 16}) != spec_digest("t", {"n": 16})

    def test_digest_ignores_key_order(self):
        assert spec_digest("s", {"a": 1, "b": 2}) == spec_digest("s", {"b": 2, "a": 1})


class TestCheckpointDirectory:
    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert str(checkpoint_directory()) == DEFAULT_CHECKPOINT_DIR

    def test_environment_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path / "elsewhere"))
        assert checkpoint_directory() == tmp_path / "elsewhere"


class TestSweepCheckpoint:
    def test_round_trip_restores_only_ok_entries(self, tmp_path):
        spec = {"n": 4}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, {"area": 12.5}))
            checkpoint.record(_failed(1))
            checkpoint.record(_ok(2, (1, 2.5, "three")))
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 2}
        assert done[0].value == {"area": 12.5}
        assert done[2].value == (1, 2.5, "three")
        assert isinstance(done[0], JournalEntry)
        assert reopened.completed == 2

    def test_skipped_outcomes_are_not_rejournalled(self, tmp_path):
        with SweepCheckpoint.open("unit", {}, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            restored = PointResult(
                index=0, point=0, value=1, elapsed_s=0.0, status="skipped"
            )
            checkpoint.record(restored)
            lines = checkpoint.path.read_text().splitlines()
        assert len(lines) == 2  # header + the one real record

    def test_record_on_a_closed_checkpoint_raises(self, tmp_path):
        checkpoint = SweepCheckpoint.open("unit", {}, directory=tmp_path)
        checkpoint.close()
        checkpoint.close()  # idempotent
        with pytest.raises(ValueError, match="not open"):
            checkpoint.record(_ok(0, 1))

    def test_truncated_tail_is_dropped(self, tmp_path):
        spec = {"n": 4}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, "zero"))
            checkpoint.record(_ok(1, "one"))
            path = checkpoint.path
        # Simulate a crash mid-append: half a JSON record at the tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "status": "o')
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0, 1}

    def test_header_mismatch_starts_a_fresh_journal(self, tmp_path):
        with SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            path = checkpoint.path
        # Corrupt the header wholesale; reopening must not trust the file.
        content = path.read_text().splitlines()
        content[0] = json.dumps({"format": "something-else/9"})
        path.write_text("\n".join(content) + "\n")
        reopened = SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path)
        try:
            assert reopened.load() == {}
            header = json.loads(reopened.path.read_text().splitlines()[0])
            assert header["format"] == JOURNAL_FORMAT
        finally:
            reopened.close()

    def test_stale_pickle_truncates_from_there(self, tmp_path):
        spec = {"n": 1}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
            path = checkpoint.path
        record = {
            "index": 1,
            "status": "ok",
            "attempts": 1,
            "elapsed_s": 0.1,
            "error": None,
            "value": "bm90LXBpY2tsZQ==",  # valid base64, not a pickle
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        reopened = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        done = reopened.load()
        reopened.close()
        assert set(done) == {0}

    def test_unknown_status_is_rejected(self, tmp_path):
        from repro.perf.journal import _decode_record

        assert _decode_record(json.dumps({"index": 0, "status": "maybe"})) is None
        assert _decode_record(json.dumps({"index": "zero", "status": "ok"})) is None
        assert _decode_record(json.dumps([1, 2, 3])) is None
        assert _decode_record("not json") is None


class TestAtomicWrites:
    def test_atomic_write_text_replaces_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        # No stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_atomic_write_bytes_creates_parents_file(self, tmp_path):
        target = tmp_path / "nested" / "artifact.bin"
        target.parent.mkdir()
        written = atomic_write_bytes(target, b"\x00\x01")
        assert written == target
        assert target.read_bytes() == b"\x00\x01"

    def test_export_write_csv_is_atomic_and_crlf(self, tmp_path):
        from repro.reporting.export import rows_to_csv, write_csv

        target = tmp_path / "table.csv"
        write_csv(target, ("a", "b"), [(1, 2), (3, 4)])
        data = target.read_bytes()
        assert data == rows_to_csv(("a", "b"), [(1, 2), (3, 4)]).encode()
        assert b"\r\n" in data


class TestJournalLock:
    def test_concurrent_open_fails_fast_with_the_holder(self, tmp_path):
        from repro.core.errors import CheckpointError

        spec = {"n": 1}
        first = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        try:
            with pytest.raises(CheckpointError, match="locked by another") as info:
                SweepCheckpoint.open("unit", spec, directory=tmp_path)
            # The error names the live holder so the operator can find it.
            import os

            assert f"pid {os.getpid()}" in str(info.value)
        finally:
            first.close()

    def test_reopen_after_close_succeeds(self, tmp_path):
        spec = {"n": 1}
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as checkpoint:
            checkpoint.record(_ok(0, 1))
        with SweepCheckpoint.open("unit", spec, directory=tmp_path) as reopened:
            assert set(reopened.load()) == {0}

    def test_different_specs_do_not_contend(self, tmp_path):
        first = SweepCheckpoint.open("unit", {"n": 1}, directory=tmp_path)
        second = SweepCheckpoint.open("unit", {"n": 2}, directory=tmp_path)
        first.close()
        second.close()

    def test_stale_sidecar_is_reclaimed(self, tmp_path):
        from repro.perf import JournalLock

        journal = tmp_path / "unit-cafe.jsonl"
        sidecar = tmp_path / "unit-cafe.jsonl.lock"
        # A crashed run leaves its metadata behind; the kernel released
        # the flock with the dead process, so the next run reclaims it.
        sidecar.write_text('{"pid": 99999999, "started": "2026-01-01T00:00:00"}\n')
        lock = JournalLock(journal).acquire()
        try:
            assert lock.held
            assert lock.reclaimed_from == 99999999
        finally:
            lock.release()
        assert not lock.held

    def test_release_truncates_but_keeps_the_sidecar(self, tmp_path):
        from repro.perf import JournalLock

        lock = JournalLock(tmp_path / "unit-beef.jsonl").acquire()
        assert lock.path.read_text().strip()  # holder metadata recorded
        lock.release()
        assert lock.path.exists()
        assert lock.path.read_text() == ""  # empty sidecar = nobody writing
        lock.release()  # idempotent

    def test_close_releases_the_lock_even_unused(self, tmp_path):
        spec = {"n": 3}
        checkpoint = SweepCheckpoint.open("unit", spec, directory=tmp_path)
        checkpoint.close()
        checkpoint.close()  # idempotent
        SweepCheckpoint.open("unit", spec, directory=tmp_path).close()
