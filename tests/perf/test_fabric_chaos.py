"""Fabric chaos: real worker processes, really killed mid-sweep.

These tests spawn actual ``repro-taxonomy sweep-worker`` subprocesses
and deliver real SIGKILLs, asserting the coordinator's contract: a lost
worker's leased points are re-queued and finished elsewhere, a point
that *keeps* killing workers is drained through the last-resort path,
and nothing is ever silently dropped. The CI ``chaos`` job
(``scripts/chaos_fabric.py``) proves the same invariants at the CLI
artifact level; these stay in-suite because they run in seconds.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.perf import MembershipPolicy, fabric_sweep
from repro.perf.fabric import _WORKERS_REJOINED

HERE = Path(__file__).resolve().parent
REPO_SRC = Path(__file__).resolve().parents[2] / "src"
if str(HERE) not in sys.path:  # fabric_helpers lives beside this file
    sys.path.insert(0, str(HERE))

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)


def _worker_env():
    env = dict(os.environ)
    # Workers must import both the library and the helper module that
    # defines the (pickled-by-reference) point functions.
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_SRC), str(HERE), env.get("PYTHONPATH", "")]
    )
    return env


def start_worker(*extra, port=0):
    """Spawn a sweep-worker subprocess; returns (process, (host, port))."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "sweep-worker",
            "--listen", f"127.0.0.1:{port}", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_worker_env(),
    )
    line = proc.stdout.readline()
    match = re.match(r"worker listening on ([^:]+):(\d+)", line)
    assert match, f"worker announcement missing, got {line!r}"
    return proc, (match.group(1), int(match.group(2)))


@pytest.fixture
def two_workers():
    """Two real worker processes; yields (procs, endpoints)."""
    procs, endpoints = [], []
    for _ in range(2):
        proc, endpoint = start_worker("--throttle", "0.1")
        procs.append(proc)
        endpoints.append(endpoint)
    yield procs, endpoints
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


def test_sigkilled_worker_points_are_requeued_not_dropped(two_workers):
    from fabric_helpers import slow_square

    procs, endpoints = two_workers

    def assassinate():
        time.sleep(0.6)  # well into the sweep, points still outstanding
        procs[0].send_signal(signal.SIGKILL)

    killer = threading.Thread(target=assassinate)
    killer.start()
    result = fabric_sweep(
        slow_square, range(16), workers=endpoints, heartbeat_s=0.1
    )
    killer.join()
    assert procs[0].poll() is not None  # the victim really died
    assert list(result.values) == [x * x for x in range(16)]
    assert all(o.status == "ok" for o in result.outcomes)
    assert len(result.outcomes) == 16  # every point accounted for


def test_worker_killing_point_is_drained_through_last_resort(two_workers):
    # fabric_helpers.worker_assassin SIGKILLs any *worker* that touches
    # point 5 (the env marker keeps it harmless in this process). It
    # murders both workers in turn, exhausts its crash budget, and the
    # coordinator's last-resort drain evaluates it locally — where it is
    # perfectly well behaved. The sweep must end complete.
    from fabric_helpers import worker_assassin

    _, endpoints = two_workers
    result = fabric_sweep(
        worker_assassin,
        range(10),
        workers=endpoints,
        heartbeat_s=0.1,
        on_error="skip",
        max_point_crashes=1,
    )
    assert list(result.values) == [x * x for x in range(10)]
    assert all(o.status == "ok" for o in result.outcomes)


def test_sigkilled_worker_relaunched_on_same_port_rejoins(two_workers):
    # The elastic-membership contract, subprocess flavour: a SIGKILLed
    # worker relaunched on the *same* port must be re-dialed by the
    # coordinator's rejoin loop and drawn back into the live sweep. The
    # replacement runs with --max-sessions 1, so its own exit status 0
    # is hard evidence it served a complete session (drew leases) rather
    # than idling until the sweep ended without it.
    from fabric_helpers import slow_square

    procs, endpoints = two_workers
    _, victim_port = endpoints[0]
    replacement = []

    def kill_and_relaunch():
        time.sleep(0.5)
        procs[0].send_signal(signal.SIGKILL)
        procs[0].wait()
        proc, _ = start_worker(
            "--throttle", "0.1", "--max-sessions", "1", port=victim_port
        )
        replacement.append(proc)

    rejoins_before = _WORKERS_REJOINED.value
    relauncher = threading.Thread(target=kill_and_relaunch)
    relauncher.start()
    try:
        result = fabric_sweep(
            slow_square,
            range(30),
            workers=endpoints,
            heartbeat_s=0.1,
            membership=MembershipPolicy(rejoin_backoff_s=0.2, seed=5),
        )
        relauncher.join()
        assert list(result.values) == [x * x for x in range(30)]
        assert len(result.outcomes) == 30
        assert all(o.status == "ok" for o in result.outcomes)
        assert _WORKERS_REJOINED.value >= rejoins_before + 1
        assert replacement, "the replacement worker was never launched"
        # Serving its one allotted session to completion is what lets
        # --max-sessions 1 exit 0; a worker that never rejoined hangs.
        assert replacement[0].wait(timeout=30.0) == 0
    finally:
        relauncher.join(timeout=10.0)
        for proc in replacement:
            if proc.poll() is None:
                proc.kill()
            proc.wait()


def test_all_workers_lost_finishes_locally(two_workers):
    from fabric_helpers import slow_square

    procs, endpoints = two_workers

    def massacre():
        time.sleep(0.4)
        for proc in procs:
            proc.send_signal(signal.SIGKILL)

    killer = threading.Thread(target=massacre)
    killer.start()
    result = fabric_sweep(
        slow_square, range(12), workers=endpoints, heartbeat_s=0.1
    )
    killer.join()
    assert list(result.values) == [x * x for x in range(12)]
    assert len(result.outcomes) == 12
