"""Fabric chaos: real worker processes, really killed mid-sweep.

These tests spawn actual ``repro-taxonomy sweep-worker`` subprocesses
and deliver real SIGKILLs, asserting the coordinator's contract: a lost
worker's leased points are re-queued and finished elsewhere, a point
that *keeps* killing workers is drained through the last-resort path,
and nothing is ever silently dropped. The CI ``chaos`` job
(``scripts/chaos_fabric.py``) proves the same invariants at the CLI
artifact level; these stay in-suite because they run in seconds.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.perf import fabric_sweep

HERE = Path(__file__).resolve().parent
REPO_SRC = Path(__file__).resolve().parents[2] / "src"
if str(HERE) not in sys.path:  # fabric_helpers lives beside this file
    sys.path.insert(0, str(HERE))

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX signals"
)


def _worker_env():
    env = dict(os.environ)
    # Workers must import both the library and the helper module that
    # defines the (pickled-by-reference) point functions.
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_SRC), str(HERE), env.get("PYTHONPATH", "")]
    )
    return env


def start_worker(*extra):
    """Spawn a sweep-worker subprocess; returns (process, (host, port))."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "sweep-worker",
            "--listen", "127.0.0.1:0", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_worker_env(),
    )
    line = proc.stdout.readline()
    match = re.match(r"worker listening on ([^:]+):(\d+)", line)
    assert match, f"worker announcement missing, got {line!r}"
    return proc, (match.group(1), int(match.group(2)))


@pytest.fixture
def two_workers():
    """Two real worker processes; yields (procs, endpoints)."""
    procs, endpoints = [], []
    for _ in range(2):
        proc, endpoint = start_worker("--throttle", "0.1")
        procs.append(proc)
        endpoints.append(endpoint)
    yield procs, endpoints
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


def test_sigkilled_worker_points_are_requeued_not_dropped(two_workers):
    from fabric_helpers import slow_square

    procs, endpoints = two_workers

    def assassinate():
        time.sleep(0.6)  # well into the sweep, points still outstanding
        procs[0].send_signal(signal.SIGKILL)

    killer = threading.Thread(target=assassinate)
    killer.start()
    result = fabric_sweep(
        slow_square, range(16), workers=endpoints, heartbeat_s=0.1
    )
    killer.join()
    assert procs[0].poll() is not None  # the victim really died
    assert list(result.values) == [x * x for x in range(16)]
    assert all(o.status == "ok" for o in result.outcomes)
    assert len(result.outcomes) == 16  # every point accounted for


def test_worker_killing_point_is_drained_through_last_resort(two_workers):
    # fabric_helpers.worker_assassin SIGKILLs any *worker* that touches
    # point 5 (the env marker keeps it harmless in this process). It
    # murders both workers in turn, exhausts its crash budget, and the
    # coordinator's last-resort drain evaluates it locally — where it is
    # perfectly well behaved. The sweep must end complete.
    from fabric_helpers import worker_assassin

    _, endpoints = two_workers
    result = fabric_sweep(
        worker_assassin,
        range(10),
        workers=endpoints,
        heartbeat_s=0.1,
        on_error="skip",
        max_point_crashes=1,
    )
    assert list(result.values) == [x * x for x in range(10)]
    assert all(o.status == "ok" for o in result.outcomes)


def test_all_workers_lost_finishes_locally(two_workers):
    from fabric_helpers import slow_square

    procs, endpoints = two_workers

    def massacre():
        time.sleep(0.4)
        for proc in procs:
            proc.send_signal(signal.SIGKILL)

    killer = threading.Thread(target=massacre)
    killer.start()
    result = fabric_sweep(
        slow_square, range(12), workers=endpoints, heartbeat_s=0.1
    )
    killer.join()
    assert list(result.values) == [x * x for x in range(12)]
    assert len(result.outcomes) == 12
