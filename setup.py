"""Setup shim: enables editable installs in offline environments lacking
the `wheel` package (PEP 660 editable builds need bdist_wheel)."""
from setuptools import setup

setup()
