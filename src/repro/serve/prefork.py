"""The pre-fork front end: N worker processes, one shared port.

``run_server`` handles one process's worth of traffic; this module
multiplies it. The parent binds a *probe* socket with ``SO_REUSEPORT``
— never listening, just holding the port (and resolving ``port=0`` to
a concrete ephemeral port before any child exists) — then forks
``config.processes`` workers. Each worker binds the same address with
``SO_REUSEPORT`` and runs the full single-process pipeline; the kernel
load-balances accepted connections across the listening workers.

The parent's lifecycle contract is exactly the single-process one, so
orchestration scripts cannot tell the difference:

* it prints ``listening on http://HOST:PORT`` on stdout once every
  worker has bound and is accepting;
* SIGTERM/SIGINT are forwarded to every worker, which each run their
  own graceful drain (stop accepting, finish in-flight work, shed the
  rest with structured 503s);
* it prints ``drained cleanly, exiting`` on stderr and exits 0 only
  when *every* worker drained cleanly — any worker's failure is the
  fleet's failure (exit 1).

Workers discover each other through a parent-owned fleet directory of
unix-socket stats buses (:mod:`repro.serve.fleet`), which is what lets
``/v1/metrics`` and ``/v1/readyz`` answer for the whole fleet no
matter which worker a scrape lands on. On platforms without ``fork``
or ``SO_REUSEPORT`` the front end degrades to a single process with a
warning rather than failing to start.

The parent also *supervises*: a worker that dies outside a drain
(segfault, OOM kill, SIGKILL chaos) is respawned onto the same shared
port, under a per-slot restart-rate limit (``config.respawn_max``
respawns inside ``config.respawn_window_s``) so a crash-looping
workload degrades the fleet instead of forking forever. Respawn counts
are published to ``fleet_dir/respawns.json``, which every worker
surfaces under ``/v1/readyz``'s ``fleet.respawns`` key.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import sys
import tempfile
import time
from collections import deque
from dataclasses import replace
from pathlib import Path

from repro.core.atomicio import atomic_write_text
from repro.serve.server import ServerConfig, TaxonomyHTTPServer, run_server

__all__ = ["run_prefork", "supports_prefork"]


def supports_prefork() -> bool:
    """True when this platform can fork workers onto a shared port."""
    return hasattr(os, "fork") and hasattr(socket, "SO_REUSEPORT")


def _bind_probe(config: ServerConfig) -> "tuple[socket.socket, int]":
    """Reserve the listen port without listening on it.

    A bound-but-not-listening ``SO_REUSEPORT`` socket receives no
    connections, but it pins the port: ``port=0`` resolves to one
    concrete ephemeral port that every forked worker then shares, with
    no bind race and no window where another process could take it.
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((config.host, config.port))
    except BaseException:
        probe.close()
        raise
    return probe, probe.getsockname()[1]


def _spawn_worker(
    worker_config: ServerConfig, probe: socket.socket
) -> "tuple[int, int]":
    """Fork one worker; returns ``(pid, readiness_read_fd)``.

    The worker writes one byte to the readiness pipe the moment its
    listener is bound and about to accept, then serves until signalled.
    It always leaves through ``os._exit`` so a worker crash can never
    fall back into the parent's stack.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid > 0:  # parent
        os.close(write_fd)
        return pid, read_fd
    # worker: nothing below may return into the caller's frames.
    status = 1
    try:
        os.close(read_fd)
        probe.close()

        def ready(server: TaxonomyHTTPServer) -> None:
            """Signal the parent that this worker is accepting."""
            os.write(write_fd, b"1")
            os.close(write_fd)

        status = run_server(worker_config, ready=ready, announce=False)
    except BaseException as error:  # noqa: BLE001 - worker's last words
        print(f"worker {os.getpid()} crashed: {error}", file=sys.stderr)
    finally:
        os._exit(status)
    raise AssertionError("unreachable")  # pragma: no cover


def run_prefork(config: ServerConfig) -> int:
    """Run ``config.processes`` forked workers on one shared port.

    Blocks until every worker has exited (normally after a forwarded
    SIGTERM/SIGINT triggered their drains). Returns 0 only when every
    worker drained cleanly.
    """
    if config.processes < 2:
        return run_server(config)
    if not supports_prefork():
        print(
            "warning: this platform lacks fork/SO_REUSEPORT; "
            "serving from a single process",
            file=sys.stderr,
        )
        return run_server(replace(config, processes=1))

    probe, port = _bind_probe(config)
    fleet_dir = tempfile.mkdtemp(prefix="repro-serve-fleet-")
    worker_config = replace(
        config,
        port=port,
        processes=1,
        reuse_port=True,
        fleet_dir=fleet_dir,
    )
    live: dict[int, int] = {}  # pid -> worker slot
    restarts: "list[deque[float]]" = [deque() for _ in range(config.processes)]
    ledger = {"respawns": 0, "given_up": 0}
    draining = False
    drain_signum = signal.SIGTERM
    try:
        _write_respawn_ledger(fleet_dir, ledger)
        ready_fds: list[int] = []
        for slot in range(config.processes):
            pid, read_fd = _spawn_worker(worker_config, probe)
            live[pid] = slot
            ready_fds.append(read_fd)

        def forward(signum: int, frame: object) -> None:
            """Relay the shutdown signal to every live worker."""
            nonlocal draining, drain_signum
            draining = True
            drain_signum = signum
            for pid in list(live):
                try:
                    os.kill(pid, signum)
                except ProcessLookupError:  # pragma: no cover - already gone
                    pass

        signal.signal(signal.SIGTERM, forward)
        signal.signal(signal.SIGINT, forward)

        # A worker that dies before binding closes its pipe unwritten;
        # announce only once every worker reported in (or gave up).
        ready_count = 0
        for read_fd in ready_fds:
            if os.read(read_fd, 1):
                ready_count += 1
            os.close(read_fd)
        if ready_count == len(live):
            print(f"listening on http://{config.host}:{port}", flush=True)
        else:
            print(
                f"warning: only {ready_count}/{len(live)} workers came up",
                file=sys.stderr,
            )

        failures = 0
        while live:
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:  # pragma: no cover - all reaped
                break
            slot = live.pop(pid, None)
            if slot is None:  # pragma: no cover - not one of ours
                continue
            exitcode = os.waitstatus_to_exitcode(status)
            if draining:
                # Expected exits: the forwarded signal triggered drains.
                if exitcode != 0:
                    failures += 1
                continue
            # Unexpected death (crash, OOM, SIGKILL chaos): respawn the
            # slot under its restart-rate limit.
            window = restarts[slot]
            now = time.monotonic()
            while window and now - window[0] > config.respawn_window_s:
                window.popleft()
            if len(window) >= config.respawn_max:
                print(
                    f"worker slot {slot} exceeded {config.respawn_max} respawns "
                    f"in {config.respawn_window_s:g}s; giving up on it",
                    file=sys.stderr,
                )
                ledger["given_up"] += 1
                _write_respawn_ledger(fleet_dir, ledger)
                failures += 1
                continue
            window.append(now)
            new_pid, read_fd = _spawn_worker(worker_config, probe)
            os.read(read_fd, 1)
            os.close(read_fd)
            live[new_pid] = slot
            ledger["respawns"] += 1
            _write_respawn_ledger(fleet_dir, ledger)
            print(
                f"worker {pid} (slot {slot}) exited {exitcode} unexpectedly; "
                f"respawned as {new_pid}",
                file=sys.stderr,
            )
            if draining:  # the drain signal raced our respawn
                try:  # pragma: no cover - narrow race window
                    os.kill(new_pid, drain_signum)
                except ProcessLookupError:  # pragma: no cover
                    pass
    finally:
        probe.close()
        shutil.rmtree(fleet_dir, ignore_errors=True)
    if failures == 0:
        print("drained cleanly, exiting", file=sys.stderr)
        return 0
    print(
        f"{failures} of {config.processes} worker slot(s) exited uncleanly",
        file=sys.stderr,
    )
    return 1


def _write_respawn_ledger(fleet_dir: str, ledger: "dict[str, int]") -> None:
    """Publish the supervision counters workers serve via ``/v1/readyz``."""
    try:
        atomic_write_text(
            Path(fleet_dir) / "respawns.json",
            json.dumps(ledger, sort_keys=True) + "\n",
        )
    except OSError:  # pragma: no cover - fleet dir racing teardown
        pass
