"""The hardened HTTP front end: stdlib transport over the service core.

Layering (transport at the edge, everything testable without sockets)::

    ThreadingHTTPServer + BaseHTTPRequestHandler     (this module)
        -> ServiceApp.dispatch        admission pipeline (this module)
            -> DrainController        reject new work mid-drain (503)
            -> TokenBucket            rate limiting (429 + Retry-After)
            -> WorkerPool             bounded concurrency + queue (503),
                                      per-request deadlines (504)
                -> Router.handle      endpoint handlers (repro.serve.router)
                    -> CircuitBreaker around sweep-backed queries (503)

Connection threads (one per request, HTTP/1.0, ``Connection: close``)
never execute taxonomy work themselves: they enqueue a job on the
bounded pool and wait under the request deadline, so the number of
concurrently *executing* requests is capped at ``workers`` and the
number *buffered* at ``queue_depth`` — everything beyond that is shed
immediately with a structured 503 and a ``Retry-After`` hint, keeping
the p99 of accepted requests inside the configured deadline no matter
the offered load.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import urlsplit

from repro.faults import FaultPlan
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.perf import ModelCache
from repro.serve.breaker import BreakerPolicy, CircuitBreaker
from repro.serve.errors import BadRequestError, MethodNotAllowedError, as_serve_error
from repro.serve.lifecycle import DrainController, install_signal_handlers
from repro.serve.limits import Deadline, TokenBucket, WorkerPool
from repro.serve.router import Request, Response
from repro.serve.validation import (
    MAX_BODY_BYTES,
    parse_json_body,
    parse_query,
    stable_json,
)

__all__ = ["ServerConfig", "ServiceApp", "TaxonomyHTTPServer", "run_server"]


_REQUESTS = _metrics.REGISTRY.counter("serve.requests", help="HTTP requests received")
_REJECTED = _metrics.REGISTRY.counter(
    "serve.rejected", help="requests shed with 429/503 (rate, queue, breaker, drain)"
)
_TIMEOUTS = _metrics.REGISTRY.counter(
    "serve.timeouts", help="requests that exceeded their deadline (504)"
)
_ERRORS = _metrics.REGISTRY.counter("serve.errors", help="internal errors returned (500)")
_REQUEST_S = _metrics.REGISTRY.histogram(
    "serve.request_s", help="request handling latency, admission to response (s)"
)

#: Endpoints served inline — no admission control, usable mid-drain.
_CONTROL_PATHS = ("/", "/v1/healthz", "/v1/metrics", "/v1/readyz")


@dataclass(frozen=True)
class ServerConfig:
    """Everything that shapes the service's behaviour under load."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Worker threads executing taxonomy work (bounded concurrency).
    workers: int = 4
    #: Requests allowed to wait for a worker before 503s start.
    queue_depth: int = 16
    #: Per-request deadline in seconds (``None`` disables, not advised).
    deadline_s: "float | None" = 2.0
    #: Token-bucket rate in requests/s (0 disables rate limiting).
    rate: float = 0.0
    #: Token-bucket burst capacity (defaults to ``max(1, rate)``).
    burst: "int | None" = None
    #: Seconds granted to in-flight requests after SIGTERM/SIGINT.
    drain_s: float = 5.0
    #: Circuit-breaker tuning for sweep-backed queries.
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Optional seeded chaos plan injected into the protected handler path.
    fault_plan: "FaultPlan | None" = None
    #: Emit one access-log line per request to stderr.
    log_requests: bool = False
    #: Optional ``HOST:PORT,...`` sweep-worker endpoints: sweep-backed
    #: queries run on the distributed fabric (behind the breaker).
    fabric_workers: "str | None" = None

    def __post_init__(self) -> None:
        if self.drain_s < 0:
            raise ValueError(f"drain_s must be >= 0, got {self.drain_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")


class ServiceApp:
    """The transport-free admission pipeline around the endpoint router."""

    def __init__(
        self,
        config: "ServerConfig | None" = None,
        *,
        cache: "ModelCache | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        from repro.serve.router import TaxonomyService

        self.config = config if config is not None else ServerConfig()
        self._clock = clock
        self.drain = DrainController()
        self.limiter = TokenBucket(self.config.rate, self.config.burst, clock=clock)
        self.pool = WorkerPool(self.config.workers, self.config.queue_depth)
        self.service = TaxonomyService(
            cache=cache,
            breaker=CircuitBreaker(self.config.breaker, clock=clock),
            fault_plan=self.config.fault_plan,
            clock=clock,
            fabric_workers=self.config.fabric_workers,
        )
        self.router = self.service.router

    # -- control endpoints (inline, drain-exempt) ------------------------

    def _handle_control(self, request: Request) -> Response:
        if request.method.upper() != "GET":
            raise MethodNotAllowedError(
                f"{request.method} not allowed on {request.path}", allowed=("GET",)
            )
        if request.path == "/v1/healthz":
            return Response(payload={"status": "ok"})
        if request.path == "/v1/readyz":
            return self._handle_readyz()
        if request.path == "/v1/metrics":
            return Response(text=_metrics.REGISTRY.render_prometheus())
        return Response(
            payload={
                "service": "repro-taxonomy",
                "endpoints": sorted(set(self.router.paths()) | set(_CONTROL_PATHS)),
            }
        )

    def _handle_readyz(self) -> Response:
        breaker = self.service.breaker.snapshot()
        draining = self.drain.draining
        ready = not draining and breaker["state"] != "open"
        status = "ready" if ready else ("draining" if draining else "not_ready")
        payload = {
            "status": status,
            "breaker": breaker,
            "inflight": self.drain.inflight,
            "queued": self.pool.queued,
        }
        return Response(status=200 if ready else 503, payload=payload)

    # -- the admission pipeline ------------------------------------------

    def dispatch(self, method: str, target: str, body: bytes = b"") -> Response:
        """One request through the full pipeline, always returning a Response."""
        _REQUESTS.inc()
        started = self._clock()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        try:
            with _trace.span("serve.request", method=method, path=path):
                params = parse_query(split.query)
                if body:
                    fields = parse_json_body(body)
                    overlap = sorted(set(params) & set(fields))
                    if overlap:
                        raise BadRequestError(
                            f"parameter(s) {', '.join(map(repr, overlap))} given in "
                            "both the query string and the body"
                        )
                    params.update(fields)
                deadline = (
                    Deadline(self.config.deadline_s, clock=self._clock)
                    if self.config.deadline_s is not None
                    else None
                )
                request = Request(method.upper(), path, params, deadline)
                if path in _CONTROL_PATHS:
                    response = self._handle_control(request)
                else:
                    with self.drain.admit():
                        self.limiter.admit()
                        response = self.pool.run(
                            lambda: self.router.handle(request), deadline=deadline
                        )
        except BaseException as error:  # noqa: BLE001 - becomes a structured body
            serve_error = as_serve_error(error)
            headers: list[tuple[str, str]] = []
            if serve_error.retry_after_s is not None:
                headers.append(
                    ("Retry-After", str(max(1, round(serve_error.retry_after_s))))
                )
            if isinstance(serve_error, MethodNotAllowedError) and serve_error.allowed:
                headers.append(("Allow", ", ".join(serve_error.allowed)))
            if serve_error.status in (429, 503):
                _REJECTED.inc()
            elif serve_error.status == 504:
                _TIMEOUTS.inc()
            elif serve_error.status >= 500:
                _ERRORS.inc()
            response = Response(
                status=serve_error.status,
                payload=serve_error.payload(),
                headers=tuple(headers),
            )
        finally:
            _REQUEST_S.observe(max(self._clock() - started, 0.0))
        return response

    def shutdown(self, *, drain_s: "float | None" = None) -> bool:
        """Drain in-flight requests and stop the pool; True when clean."""
        budget = self.config.drain_s if drain_s is None else drain_s
        self.drain.begin_drain()
        drained = self.drain.wait_drained(budget)
        pool_clean = self.pool.shutdown(drain_s=budget)
        return drained and pool_clean


class TaxonomyHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a :class:`ServiceApp`."""

    daemon_threads = True
    # Drain is bounded by DrainController; never block close indefinitely.
    block_on_close = False

    def __init__(self, config: ServerConfig, app: "ServiceApp | None" = None):
        self.app = app if app is not None else ServiceApp(config)
        self.config = config
        super().__init__((config.host, config.port), _RequestHandler)
        # Stop accepting the moment a drain begins: shutdown() unwinds
        # serve_forever from a helper thread (it would deadlock inline).
        self.app.drain.on_drain = lambda: threading.Thread(
            target=self.shutdown, name="serve-shutdown", daemon=True
        ).start()

    @property
    def url(self) -> str:
        """The server's base URL with the actually-bound port."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: parse, dispatch, encode; no business logic."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Serve a GET request."""
        self._respond(b"")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """Serve a POST request (JSON body)."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._write(
                Response(
                    status=400,
                    payload=BadRequestError(
                        "Content-Length must be a non-negative integer "
                        f"no larger than {MAX_BODY_BYTES}"
                    ).payload(),
                )
            )
            return
        self._respond(self.rfile.read(length) if length else b"")

    def _respond(self, body: bytes) -> None:
        response = self.server.app.dispatch(self.command, self.path, body)
        self._write(response)

    def _write(self, response: Response) -> None:
        encoded = (
            response.text.encode("utf-8")
            if response.text is not None
            else stable_json(response.payload)
        )
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(encoded)))
            self.send_header("Connection", "close")
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up first; nothing useful to do

    def log_message(self, format: str, *args: Any) -> None:
        """Access-log to stderr only when configured; never to stdout."""
        if self.server.config.log_requests:  # pragma: no cover - log plumbing
            super().log_message(format, *args)


def run_server(
    config: "ServerConfig | None" = None,
    *,
    ready: "Callable[[TaxonomyHTTPServer], None] | None" = None,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain; the CLI's blocking entry.

    Returns 0 when the drain finished inside ``config.drain_s`` (every
    accepted request answered), 1 when stragglers had to be abandoned.
    ``ready`` (if given) is called with the bound server before the
    first accept — used by tests and the smoke script to learn the
    ephemeral port.
    """
    import sys

    config = config if config is not None else ServerConfig()
    server = TaxonomyHTTPServer(config)
    app = server.app
    install_signal_handlers(app.drain)
    print(f"listening on {server.url}", flush=True)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
    # serve_forever only returns once a drain has begun and the
    # listener stopped accepting; give in-flight requests their budget.
    drained = app.drain.wait_drained(config.drain_s)
    pool_clean = app.pool.shutdown(drain_s=config.drain_s)
    leftover = app.drain.inflight
    if drained and pool_clean:
        print("drained cleanly, exiting", file=sys.stderr)
        return 0
    print(
        f"drain deadline of {config.drain_s:g}s exceeded "
        f"({leftover} request(s) abandoned)",
        file=sys.stderr,
    )
    return 1
