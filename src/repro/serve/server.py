"""The hardened HTTP front end: stdlib transport over the service core.

Layering (transport at the edge, everything testable without sockets)::

    ThreadingHTTPServer + BaseHTTPRequestHandler     (this module)
        -> ServiceApp.dispatch        admission pipeline (this module)
            -> DrainController        reject new work mid-drain (503)
            -> TokenBucket            rate limiting (429 + Retry-After)
            -> ResponseCache          pure-endpoint hits skip the pool
            -> WorkerPool             bounded concurrency + queue (503),
                                      per-request deadlines (504)
                -> Router.handle      endpoint handlers (repro.serve.router)
                    -> CircuitBreaker around sweep-backed queries (503)

The data plane speaks HTTP/1.1 with keep-alive: one connection thread
serves many requests (``keepalive_requests`` per connection, closed
after ``keepalive_idle_s`` idle seconds), so steady clients pay the TCP
handshake once, not per request. Connection threads never execute
taxonomy work themselves: they enqueue a job on the bounded pool and
wait under the request deadline, so the number of concurrently
*executing* requests is capped at ``workers`` and the number *buffered*
at ``queue_depth`` — everything beyond that is shed immediately with a
structured 503 and a ``Retry-After`` hint, keeping the p99 of accepted
requests inside the configured deadline no matter the offered load.

Two multipliers sit on top of the single-process pipeline:

* a bounded :class:`~repro.serve.cache.ResponseCache` over the pure
  endpoints (``/v1/classify``, ``/v1/costs``) — a hit is answered by
  the connection thread itself, after drain and rate-limit admission
  but without queueing for a worker;
* a pre-fork front end (``processes > 1``): N worker processes share
  the listen port via ``SO_REUSEPORT`` (:mod:`repro.serve.prefork`),
  each running this exact pipeline, with ``/v1/metrics`` and
  ``/v1/readyz`` aggregated across the fleet via
  :mod:`repro.serve.fleet`.

Batch endpoints (``POST /v1/classify`` and ``POST /v1/costs`` with an
``{"items": [...]}`` body) amortise admission: one drain check, one
rate-limit token and one pool job cover up to ``MAX_BATCH_ITEMS``
signatures, each answered (or failed) independently in the response's
``results`` array.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import urlsplit

from repro.faults import FaultPlan
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.perf import ModelCache
from repro.perf.fabric import fleet_health
from repro.serve.breaker import BreakerPolicy, CircuitBreaker
from repro.serve.cache import ResponseCache
from repro.serve.errors import (
    BadRequestError,
    DeadlineExceededError,
    MethodNotAllowedError,
    as_serve_error,
)
from repro.serve.fleet import FleetBus, render_fleet_prometheus
from repro.serve.lifecycle import DrainController, install_signal_handlers
from repro.serve.limits import Deadline, TokenBucket, WorkerPool
from repro.serve.router import Request, Response
from repro.serve.validation import (
    MAX_BODY_BYTES,
    parse_body,
    parse_query,
    stable_json,
)

__all__ = ["ServerConfig", "ServiceApp", "TaxonomyHTTPServer", "run_server"]


_REQUESTS = _metrics.REGISTRY.counter("serve.requests", help="HTTP requests received")
_REJECTED = _metrics.REGISTRY.counter(
    "serve.rejected", help="requests shed with 429/503 (rate, queue, breaker, drain)"
)
_TIMEOUTS = _metrics.REGISTRY.counter(
    "serve.timeouts", help="requests that exceeded their deadline (504)"
)
_ERRORS = _metrics.REGISTRY.counter("serve.errors", help="internal errors returned (500)")
_REQUEST_S = _metrics.REGISTRY.histogram(
    "serve.request_s", help="request handling latency, admission to response (s)"
)
_BATCH_REQUESTS = _metrics.REGISTRY.counter(
    "serve.batch_requests", help="batch requests received (items bodies)"
)
_BATCH_ITEMS = _metrics.REGISTRY.counter(
    "serve.batch_items", help="individual items carried by batch requests"
)

#: Paths accepting an ``{"items": [...]}`` batch body — the pure,
#: per-item-independent endpoints.
_BATCH_PATHS = ("/v1/classify", "/v1/costs")

#: Endpoints served inline — no admission control, usable mid-drain.
_CONTROL_PATHS = ("/", "/v1/healthz", "/v1/metrics", "/v1/readyz")


@dataclass(frozen=True)
class ServerConfig:
    """Everything that shapes the service's behaviour under load."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Worker threads executing taxonomy work (bounded concurrency).
    workers: int = 4
    #: Requests allowed to wait for a worker before 503s start.
    queue_depth: int = 16
    #: Per-request deadline in seconds (``None`` disables, not advised).
    deadline_s: "float | None" = 2.0
    #: Token-bucket rate in requests/s (0 disables rate limiting).
    rate: float = 0.0
    #: Token-bucket burst capacity (defaults to ``max(1, rate)``).
    burst: "int | None" = None
    #: Seconds granted to in-flight requests after SIGTERM/SIGINT.
    drain_s: float = 5.0
    #: Circuit-breaker tuning for sweep-backed queries.
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Optional seeded chaos plan injected into the protected handler path.
    fault_plan: "FaultPlan | None" = None
    #: Emit one access-log line per request to stderr.
    log_requests: bool = False
    #: Optional ``HOST:PORT,...`` sweep-worker endpoints: sweep-backed
    #: queries run on the distributed fabric (behind the breaker).
    fabric_workers: "str | None" = None
    #: Pre-fork worker processes sharing the port via SO_REUSEPORT
    #: (1 = single process, the embedded/test default).
    processes: int = 1
    #: Requests served per keep-alive connection before it is closed;
    #: 0 disables keep-alive entirely (``Connection: close`` per
    #: request — the pre-keep-alive data plane, kept for benchmarking).
    keepalive_requests: int = 100
    #: Seconds a keep-alive connection may idle between requests.
    keepalive_idle_s: float = 5.0
    #: Response-cache capacity in entries over the pure endpoints
    #: (0 disables caching).
    cache_size: int = 1024
    #: Bind the listener with SO_REUSEPORT (set by the pre-fork parent
    #: so every worker can share one port).
    reuse_port: bool = False
    #: Directory holding the fleet stats-bus sockets (set by the
    #: pre-fork parent; ``None`` means single-process, no bus).
    fleet_dir: "str | None" = None
    #: Classify ``{"items": [...]}`` batches through the vectorized
    #: :mod:`repro.core.batch` kernel when NumPy is available. Response
    #: bodies are byte-identical either way; False forces the scalar
    #: per-item loop (debugging / A-B benchmarking).
    batch_kernel: bool = True
    #: Directory backing the durable ``/v1/jobs`` subsystem
    #: (:mod:`repro.serve.jobs`); ``None`` disables it. Pre-fork workers
    #: inherit one shared directory, so any worker serves any job.
    jobs_dir: "str | None" = None
    #: Job-runner threads per process (claim + execute async jobs).
    job_runners: int = 2
    #: Default seconds a terminal job (and its artifacts) outlives
    #: completion before TTL garbage collection.
    job_ttl_s: float = 3600.0
    #: Runner scan interval in seconds (queue poll, orphan adoption, GC).
    job_poll_s: float = 0.25
    #: Times one pre-fork worker slot may be respawned inside
    #: ``respawn_window_s`` before the parent gives up on it.
    respawn_max: int = 5
    #: The sliding window (seconds) for the respawn rate limit.
    respawn_window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.drain_s < 0:
            raise ValueError(f"drain_s must be >= 0, got {self.drain_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.processes < 1:
            raise ValueError(f"processes must be >= 1, got {self.processes}")
        if self.keepalive_requests < 0:
            raise ValueError(
                f"keepalive_requests must be >= 0, got {self.keepalive_requests}"
            )
        if self.keepalive_idle_s <= 0:
            raise ValueError(
                f"keepalive_idle_s must be positive, got {self.keepalive_idle_s}"
            )
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.job_runners < 1:
            raise ValueError(f"job_runners must be >= 1, got {self.job_runners}")
        if self.job_ttl_s < 0:
            raise ValueError(f"job_ttl_s must be >= 0, got {self.job_ttl_s}")
        if self.job_poll_s <= 0:
            raise ValueError(f"job_poll_s must be positive, got {self.job_poll_s}")
        if self.respawn_max < 0:
            raise ValueError(f"respawn_max must be >= 0, got {self.respawn_max}")
        if self.respawn_window_s <= 0:
            raise ValueError(
                f"respawn_window_s must be positive, got {self.respawn_window_s}"
            )


class ServiceApp:
    """The transport-free admission pipeline around the endpoint router."""

    def __init__(
        self,
        config: "ServerConfig | None" = None,
        *,
        cache: "ModelCache | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        from repro.serve.router import TaxonomyService

        self.config = config if config is not None else ServerConfig()
        self._clock = clock
        self.drain = DrainController()
        self.limiter = TokenBucket(self.config.rate, self.config.burst, clock=clock)
        self.pool = WorkerPool(self.config.workers, self.config.queue_depth)
        self.service = TaxonomyService(
            cache=cache,
            breaker=CircuitBreaker(self.config.breaker, clock=clock),
            fault_plan=self.config.fault_plan,
            clock=clock,
            fabric_workers=self.config.fabric_workers,
        )
        self.router = self.service.router
        self.response_cache = ResponseCache(self.config.cache_size)
        self.fleet: "FleetBus | None" = None
        if self.config.fleet_dir is not None and hasattr(socket, "AF_UNIX"):
            self.fleet = FleetBus(self.config.fleet_dir, self._bus_snapshot)
        self.jobs: "Any | None" = None
        if self.config.jobs_dir is not None:
            from repro.serve.jobs import JobManager, JobsApi

            self.jobs = JobManager(
                self.config.jobs_dir,
                runners=self.config.job_runners,
                poll_s=self.config.job_poll_s,
                default_ttl_s=self.config.job_ttl_s,
            )
            JobsApi(self.jobs).register(self.router)

    # -- control endpoints (inline, drain-exempt) ------------------------

    def _handle_control(self, request: Request) -> Response:
        if request.method.upper() != "GET":
            raise MethodNotAllowedError(
                f"{request.method} not allowed on {request.path}", allowed=("GET",)
            )
        if request.path == "/v1/healthz":
            return Response(payload={"status": "ok"})
        if request.path == "/v1/readyz":
            return self._handle_readyz()
        if request.path == "/v1/metrics":
            return Response(text=self._render_metrics())
        return Response(
            payload={
                "service": "repro-taxonomy",
                "endpoints": sorted(set(self.router.paths()) | set(_CONTROL_PATHS)),
            }
        )

    def _member_snapshot(self) -> dict:
        """This worker's row in the fleet health view."""
        return {
            "pid": os.getpid(),
            "inflight": self.drain.inflight,
            "queued": self.pool.queued,
            "draining": self.drain.draining,
            "cache": self.response_cache.stats(),
        }

    def _bus_snapshot(self) -> dict:
        """What this worker serves siblings over the fleet bus."""
        return {**self._member_snapshot(), "metrics": _metrics.REGISTRY.snapshot()}

    def _fleet_members(self) -> list[dict]:
        """Every live worker's snapshot, this one first-hand, pid-sorted."""
        members = [self._member_snapshot()]
        if self.fleet is not None:
            members.extend(self.fleet.collect())
        return sorted(members, key=lambda member: member.get("pid", 0))

    def _render_metrics(self) -> str:
        """The Prometheus exposition, fleet-aggregated when pre-forked."""
        if self.fleet is not None:
            siblings = self.fleet.collect()
            if siblings:
                snapshots = [_metrics.REGISTRY.snapshot()] + [
                    member["metrics"] for member in siblings if "metrics" in member
                ]
                return render_fleet_prometheus(snapshots)
        return _metrics.REGISTRY.render_prometheus()

    def _handle_readyz(self) -> Response:
        breaker = self.service.breaker.snapshot()
        draining = self.drain.draining
        ready = not draining and breaker["state"] != "open"
        status = "ready" if ready else ("draining" if draining else "not_ready")
        members = [
            {key: value for key, value in member.items() if key != "metrics"}
            for member in self._fleet_members()
        ]
        fleet_view: dict[str, Any] = {"workers": len(members), "members": members}
        respawns = self._respawn_ledger()
        if respawns is not None:
            fleet_view["respawns"] = respawns
        payload = {
            "status": status,
            "breaker": breaker,
            "inflight": self.drain.inflight,
            "queued": self.pool.queued,
            "cache": self.response_cache.stats(),
            "fleet": fleet_view,
            # The sweep fabric's fleet ledger (live/quarantined/lost
            # workers, rejoin counts, lease latency): orchestrators
            # scaling workers on queue depth read it from here.
            "fabric": fleet_health(),
        }
        if self.jobs is not None:
            # The job store is shared by every pre-fork worker, so this
            # worker's stats are already the fleet-wide backlog view.
            payload["jobs"] = self.jobs.stats()
        return Response(status=200 if ready else 503, payload=payload)

    def _respawn_ledger(self) -> "dict[str, Any] | None":
        """The pre-fork parent's respawn ledger, if it published one."""
        if self.config.fleet_dir is None:
            return None
        import json

        try:
            raw = (Path(self.config.fleet_dir) / "respawns.json").read_text(
                encoding="utf-8"
            )
            ledger = json.loads(raw)
        except (OSError, ValueError):
            return None
        return ledger if isinstance(ledger, dict) else None

    # -- the admission pipeline ------------------------------------------

    def dispatch(self, method: str, target: str, body: bytes = b"") -> Response:
        """One request through the full pipeline, always returning a Response."""
        _REQUESTS.inc()
        started = self._clock()
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        try:
            with _trace.span("serve.request", method=method, path=path):
                params = parse_query(split.query)
                items = None
                if body:
                    fields, items = parse_body(body)
                    if items is not None:
                        if params:
                            raise BadRequestError(
                                "query parameters cannot be combined with a "
                                "batch 'items' body"
                            )
                    else:
                        overlap = sorted(set(params) & set(fields))
                        if overlap:
                            raise BadRequestError(
                                f"parameter(s) {', '.join(map(repr, overlap))} given in "
                                "both the query string and the body"
                            )
                        params.update(fields)
                deadline = (
                    Deadline(self.config.deadline_s, clock=self._clock)
                    if self.config.deadline_s is not None
                    else None
                )
                request = Request(method.upper(), path, params, deadline, items=items)
                if path in _CONTROL_PATHS:
                    response = self._handle_control(request)
                else:
                    with self.drain.admit():
                        self.limiter.admit()
                        if items is not None:
                            response = self._admit_batch(request, deadline)
                        else:
                            response = self._run_single(request, deadline)
        except BaseException as error:  # noqa: BLE001 - becomes a structured body
            serve_error = as_serve_error(error)
            headers: list[tuple[str, str]] = []
            if serve_error.retry_after_s is not None:
                headers.append(
                    ("Retry-After", str(max(1, round(serve_error.retry_after_s))))
                )
            if isinstance(serve_error, MethodNotAllowedError) and serve_error.allowed:
                headers.append(("Allow", ", ".join(serve_error.allowed)))
            if serve_error.status in (429, 503):
                _REJECTED.inc()
            elif serve_error.status == 504:
                _TIMEOUTS.inc()
            elif serve_error.status >= 500:
                _ERRORS.inc()
            response = Response(
                status=serve_error.status,
                payload=serve_error.payload(),
                headers=tuple(headers),
            )
        finally:
            _REQUEST_S.observe(max(self._clock() - started, 0.0))
        return response

    # -- the response cache and batch executor ---------------------------

    def _run_single(self, request: Request, deadline: "Deadline | None") -> Response:
        """One admitted request: cache probe, then the bounded pool.

        A hit is answered by the calling (connection) thread itself — no
        queueing, no worker — which is why the pure endpoints stay fast
        even when the pool is saturated with expensive work.
        """
        cache = self.response_cache
        key = (
            cache.key(request.path, request.params)
            if cache.cacheable(request.method, request.path)
            else None
        )
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit

        def handle() -> Response:
            response = self.router.handle(request)
            if key is not None:
                cache.put(key, response)
            return response

        return self.pool.run(handle, deadline=deadline)

    def _cached_handle(self, request: Request) -> Response:
        """Route one (batch-item) request through the response cache."""
        cache = self.response_cache
        if not cache.cacheable(request.method, request.path):
            return self.router.handle(request)
        key = cache.key(request.path, request.params)
        hit = cache.get(key)
        if hit is not None:
            return hit
        response = self.router.handle(request)
        cache.put(key, response)
        return response

    def _admit_batch(self, request: Request, deadline: "Deadline | None") -> Response:
        """Validate and run a batch request as one pool job."""
        if request.method != "POST":
            raise BadRequestError("a batch 'items' body requires POST")
        if request.path not in _BATCH_PATHS:
            raise BadRequestError(
                "batch bodies are only supported on "
                + " and ".join(_BATCH_PATHS)
            )
        _BATCH_REQUESTS.inc()
        _BATCH_ITEMS.inc(len(request.items))
        return self.pool.run(lambda: self._run_batch(request), deadline=deadline)

    def _run_batch(self, request: Request) -> Response:
        """Execute every item under the shared deadline, independently.

        One item's failure never sinks its neighbours: each entry of
        ``results`` is either the item's normal payload or its
        structured error body. Only the shared deadline aborts the
        whole batch (504) — by then every remaining item would time out
        anyway.

        Classify batches take the vectorized kernel path when enabled
        (``config.batch_kernel``) and NumPy is importable; its response
        is byte-identical to this scalar loop's.
        """
        if self.config.batch_kernel and request.path == "/v1/classify":
            from repro.core import batch as _batch

            if _batch.HAVE_NUMPY:
                return self._run_batch_kernel(request)
        results: list[dict] = []
        errors = 0
        assert request.items is not None
        for index, item in enumerate(request.items):
            request.check_deadline(f"processing batch item {index}")
            sub = Request(request.method, request.path, item, request.deadline)
            try:
                results.append(self._cached_handle(sub).payload)
            except DeadlineExceededError:
                raise
            except BaseException as error:  # noqa: BLE001 - per-item isolation
                errors += 1
                results.append(as_serve_error(error).payload())
        return Response(
            payload={"count": len(results), "errors": errors, "results": results}
        )

    def _run_batch_kernel(self, request: Request) -> Response:
        """Vectorized classify-batch execution via :mod:`repro.core.batch`.

        Three phases, preserving every observable of the scalar loop:
        per-item deadline checks, per-item response-cache probes and
        per-item error isolation happen first (items are parsed by the
        same validation code the scalar handler uses); the surviving
        signatures are then classified in one table-gather; finally each
        payload is rendered by the shared
        :meth:`~repro.serve.router.TaxonomyService.classify_payload`, so
        the response body is byte-identical to the scalar path's. A
        duplicate of an item already awaiting classification defers its
        cache probe until after that item's payload is stored, keeping
        the cache's hit/miss accounting identical to the scalar loop's.
        """
        from repro.core import batch as _batch

        cache = self.response_cache
        results: "list[dict | None]" = []
        errors = 0
        pending: "list[tuple[int, Any, tuple | None]]" = []
        pending_slots: "dict[tuple, int]" = {}
        aliases: "list[tuple[int, tuple, int]]" = []
        assert request.items is not None
        for index, item in enumerate(request.items):
            request.check_deadline(f"processing batch item {index}")
            sub = Request(request.method, request.path, item, request.deadline)
            key = (
                cache.key(sub.path, sub.params)
                if cache.cacheable(sub.method, sub.path)
                else None
            )
            if key is not None:
                source = pending_slots.get(key)
                if source is not None:
                    results.append(None)
                    aliases.append((len(results) - 1, key, source))
                    continue
                hit = cache.get(key)
                if hit is not None:
                    results.append(hit.payload)
                    continue
            try:
                signature = self.service.parse_classify_request(sub)
            except DeadlineExceededError:
                raise
            except BaseException as error:  # noqa: BLE001 - per-item isolation
                errors += 1
                results.append(as_serve_error(error).payload())
                continue
            results.append(None)
            pending.append((len(results) - 1, signature, key))
            if key is not None:
                pending_slots[key] = len(results) - 1
        if pending:
            request.check_deadline("classifying the batch")
            columns = _batch.SignatureBatch.from_signatures(
                signature for _, signature, _ in pending
            )
            classified = _batch.classify_batch(columns)
            for row, (slot, signature, key) in enumerate(pending):
                result = classified.classification(row, signature)
                payload = self.service.classify_payload(signature, result)
                if key is not None:
                    cache.put(key, Response(payload=payload))
                results[slot] = payload
        for slot, key, source in aliases:
            hit = cache.get(key)
            if hit is not None:
                results[slot] = hit.payload
            else:
                # Evicted between put and probe (cache smaller than the
                # batch): re-store, exactly as a scalar re-miss would.
                payload = results[source]
                assert payload is not None
                cache.put(key, Response(payload=payload))
                results[slot] = payload
        return Response(
            payload={"count": len(results), "errors": errors, "results": results}
        )

    def shutdown(self, *, drain_s: "float | None" = None) -> bool:
        """Drain in-flight requests and stop the pool; True when clean.

        Running async jobs are *interrupted*, not abandoned: the job
        drain journals them back to ``queued`` with their completed
        sweep points already checkpointed, so the next process to open
        the store resumes them.
        """
        budget = self.config.drain_s if drain_s is None else drain_s
        self.drain.begin_drain()
        drained = self.drain.wait_drained(budget)
        pool_clean = self.pool.shutdown(drain_s=budget)
        jobs_clean = True
        if self.jobs is not None:
            jobs_clean = self.jobs.drain(max(budget, 0.1))
        if self.fleet is not None:
            self.fleet.close()
        return drained and pool_clean and jobs_clean


class TaxonomyHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a :class:`ServiceApp`."""

    daemon_threads = True
    # Drain is bounded by DrainController; never block close indefinitely.
    block_on_close = False
    # The stdlib default backlog (5) drops SYNs under reconnect storms,
    # turning overload into 1s retransmit stalls instead of quick 503s.
    request_queue_size = 128

    def __init__(self, config: ServerConfig, app: "ServiceApp | None" = None):
        self.app = app if app is not None else ServiceApp(config)
        self.config = config
        super().__init__((config.host, config.port), _RequestHandler)
        # Stop accepting the moment a drain begins: shutdown() unwinds
        # serve_forever from a helper thread (it would deadlock inline).
        self.app.drain.on_drain = lambda: threading.Thread(
            target=self.shutdown, name="serve-shutdown", daemon=True
        ).start()

    def server_bind(self) -> None:
        """Bind the listener, optionally sharing the port (pre-fork)."""
        if self.config.reuse_port and hasattr(socket, "SO_REUSEPORT"):
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        """The server's base URL with the actually-bound port."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter: parse, dispatch, encode; no business logic.

    Speaks HTTP/1.1 with keep-alive: the base class loops
    ``handle_one_request`` until ``close_connection`` flips, and
    :meth:`_write` flips it when the per-connection request budget
    (``keepalive_requests``) is spent, a drain begins, or the client
    asked to close. The idle timeout is the socket timeout installed in
    :meth:`setup` — a connection that sends nothing for
    ``keepalive_idle_s`` seconds is closed by the read of its next
    request line timing out.
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body are separate small writes; on a keep-alive
    # connection Nagle would hold the body for the client's delayed ACK
    # (~40ms per response). TCP_NODELAY keeps responses one round-trip.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        """Install the idle timeout and the per-connection budget."""
        self.timeout = self.server.config.keepalive_idle_s
        self._served = 0
        super().setup()

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Serve a GET request."""
        self._respond(b"")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        """Serve a DELETE request (job cancellation)."""
        self._respond(b"")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """Serve a POST request (JSON body)."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The body was never read, so the stream is unframed from
            # here on: this connection cannot be kept alive.
            self.close_connection = True
            self._write(
                Response(
                    status=400,
                    payload=BadRequestError(
                        "Content-Length must be a non-negative integer "
                        f"no larger than {MAX_BODY_BYTES}"
                    ).payload(),
                )
            )
            return
        self._respond(self.rfile.read(length) if length else b"")

    def _respond(self, body: bytes) -> None:
        response = self.server.app.dispatch(self.command, self.path, body)
        self._write(response)

    def _write(self, response: Response) -> None:
        encoded = (
            response.text.encode("utf-8")
            if response.text is not None
            else stable_json(response.payload)
        )
        self._served += 1
        remaining = self.server.config.keepalive_requests - self._served
        keep = (
            remaining > 0
            and not self.close_connection
            and not self.server.app.drain.draining
        )
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(encoded)))
            if keep:
                # send_header("Connection", ...) also syncs close_connection.
                self.send_header("Connection", "keep-alive")
                self.send_header(
                    "Keep-Alive",
                    f"timeout={self.server.config.keepalive_idle_s:g}, "
                    f"max={remaining}",
                )
            else:
                self.send_header("Connection", "close")
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            self.close_connection = True  # the client hung up first

    def log_message(self, format: str, *args: Any) -> None:
        """Access-log to stderr only when configured; never to stdout."""
        if self.server.config.log_requests:  # pragma: no cover - log plumbing
            super().log_message(format, *args)


def run_server(
    config: "ServerConfig | None" = None,
    *,
    ready: "Callable[[TaxonomyHTTPServer], None] | None" = None,
    announce: bool = True,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain; the CLI's blocking entry.

    Returns 0 when the drain finished inside ``config.drain_s`` (every
    accepted request answered), 1 when stragglers had to be abandoned.
    ``ready`` (if given) is called with the bound server before the
    first accept — used by tests and the smoke script to learn the
    ephemeral port. ``announce=False`` silences the "listening on" and
    drain-outcome lines (the pre-fork parent speaks for its workers).

    With ``config.processes > 1`` this delegates to
    :func:`repro.serve.prefork.run_prefork`, which forks that many
    workers onto one SO_REUSEPORT-shared port and reports their
    aggregate exit status.
    """
    import sys

    config = config if config is not None else ServerConfig()
    if config.processes > 1:
        from repro.serve.prefork import run_prefork

        return run_prefork(config)
    server = TaxonomyHTTPServer(config)
    app = server.app
    install_signal_handlers(app.drain)
    if announce:
        print(f"listening on {server.url}", flush=True)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
    # serve_forever only returns once a drain has begun and the
    # listener stopped accepting; give in-flight requests their budget.
    drained = app.drain.wait_drained(config.drain_s)
    pool_clean = app.pool.shutdown(drain_s=config.drain_s)
    if app.jobs is not None:
        # Interrupt running jobs back to ``queued`` (checkpoints intact)
        # so whoever opens the store next resumes rather than restarts.
        pool_clean = app.jobs.drain(max(config.drain_s, 0.1)) and pool_clean
    if app.fleet is not None:
        app.fleet.close()
    leftover = app.drain.inflight
    if drained and pool_clean:
        if announce:
            print("drained cleanly, exiting", file=sys.stderr)
        return 0
    if announce:
        print(
            f"drain deadline of {config.drain_s:g}s exceeded "
            f"({leftover} request(s) abandoned)",
            file=sys.stderr,
        )
    return 1
