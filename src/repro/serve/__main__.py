"""``python -m repro.serve`` — boot the taxonomy query service.

A minimal arg surface for scripts and tests (the full-featured entry is
``repro-taxonomy serve``; both share :func:`repro.serve.run_server`).
The listening URL is printed on stdout before the first accept so
callers binding port 0 can discover the ephemeral port.
"""

from __future__ import annotations

import argparse
import sys

from repro.faults import FaultPlan
from repro.serve.breaker import BreakerPolicy
from repro.serve.server import ServerConfig, run_server


def main(argv: "list[str] | None" = None) -> int:
    """Parse the minimal flag set and serve until signalled."""
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--processes", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--keepalive-requests", type=int, default=100)
    parser.add_argument("--keepalive-idle", type=float, default=5.0)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--deadline", type=float, default=2.0)
    parser.add_argument("--rate", type=float, default=0.0)
    parser.add_argument("--drain-deadline", type=float, default=5.0)
    parser.add_argument("--fault-seed", type=int, default=None)
    parser.add_argument("--fault-rate", type=float, default=0.1)
    parser.add_argument("--fabric-workers", default=None, metavar="HOST:PORT,...")
    parser.add_argument("--jobs-dir", default=None, metavar="DIR")
    parser.add_argument("--job-runners", type=int, default=2)
    parser.add_argument("--job-ttl", type=float, default=3600.0)
    parser.add_argument("--job-poll", type=float, default=0.25)
    args = parser.parse_args(argv)
    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = FaultPlan.random(
            args.fault_seed, args.fault_rate, n_pes=64, horizon=64
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        processes=args.processes,
        queue_depth=args.queue_depth,
        deadline_s=args.deadline,
        rate=args.rate,
        drain_s=args.drain_deadline,
        breaker=BreakerPolicy(),
        fault_plan=fault_plan,
        fabric_workers=args.fabric_workers,
        keepalive_requests=args.keepalive_requests,
        keepalive_idle_s=args.keepalive_idle,
        cache_size=args.cache_size,
        jobs_dir=args.jobs_dir,
        job_runners=args.job_runners,
        job_ttl_s=args.job_ttl,
        job_poll_s=args.job_poll,
    )
    return run_server(config)


if __name__ == "__main__":
    sys.exit(main())
