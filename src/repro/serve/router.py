"""Routing and endpoint handlers: the paper's pipeline as JSON.

The router is transport-free: it maps a :class:`Request` (method, path,
parameters, deadline) onto a :class:`Response` (status, JSON payload)
without ever touching a socket, which is what makes every endpoint unit
testable — and doctestable — in-process. The HTTP plumbing in
:mod:`repro.serve.server` is a thin adapter over :meth:`Router.handle`.

Endpoints (all under ``/v1``):

* ``classify`` — signature → Table-I class, short name, flexibility;
  the ``explain`` field is byte-identical to ``repro-taxonomy
  classify`` output for the same signature.
* ``costs`` — Eq. 1 area and Eq. 2 configuration bits (plus the energy
  and reconfiguration companions) for a taxonomy class at a size and
  technology node, served through the shared :class:`ModelCache`.
* ``survey`` — the 25 Table-III records with derived classifications;
  ``?costs=true`` adds model estimates via the circuit-broken sweep.
* ``healthz`` / ``readyz`` — liveness vs readiness (drain and breaker
  state flip readiness, never liveness); ``readyz`` also carries the
  sweep fabric's fleet ledger (``fabric`` key:
  :func:`repro.perf.fabric.fleet_health`) so orchestrators can scale
  workers on live/quarantined counts and pending-point depth.
* ``metrics`` — the :mod:`repro.obs` registry in Prometheus text form.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.classify import classify
from repro.core.errors import ClassificationError, FaultError, NamingError
from repro.core.signature import make_signature
from repro.core.taxonomy import class_by_name, class_by_serial
from repro.faults import FaultInjector, FaultPlan
from repro.models.technology import NODES
from repro.obs import metrics as _metrics
from repro.perf import ModelCache
from repro.registry.survey import survey_table
from repro.serve.breaker import BreakerPolicy, CircuitBreaker
from repro.serve.errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
)
from repro.serve.limits import Deadline
from repro.serve.validation import (
    MAX_DESIGN_N,
    bool_field,
    choice_field,
    int_field,
    require_known,
    string_field,
)

__all__ = ["Request", "Response", "Router", "TaxonomyService"]


_CACHE_WAIT = _metrics.REGISTRY.histogram(
    "serve.cache_wait_s", help="time spent waiting for the shared ModelCache lock (s)"
)


@dataclass(frozen=True)
class Request:
    """One parsed request, transport-independent.

    ``items`` is only set for batch requests (``{"items": [...]}``
    bodies): each entry is one sub-request's parameter mapping, and
    ``params`` is then empty — the batch executor builds a per-item
    :class:`Request` carrying the shared deadline.
    """

    method: str
    path: str
    params: Mapping[str, str] = field(default_factory=dict)
    deadline: "Deadline | None" = None
    items: "tuple[Mapping[str, str], ...] | None" = None

    @classmethod
    def get(
        cls,
        path: str,
        params: "Mapping[str, str] | None" = None,
        *,
        deadline: "Deadline | None" = None,
    ) -> "Request":
        """Convenience constructor for a GET request."""
        return cls("GET", path, dict(params or {}), deadline)

    def check_deadline(self, what: str) -> None:
        """Enforce the request deadline at a handler checkpoint."""
        if self.deadline is not None:
            self.deadline.check(what)


@dataclass(frozen=True)
class Response:
    """One JSON (or text) response ready for the transport layer."""

    status: int = 200
    payload: "dict[str, Any] | None" = None
    text: "str | None" = None
    headers: "tuple[tuple[str, str], ...]" = ()

    @property
    def content_type(self) -> str:
        """``application/json`` unless the endpoint emits plain text."""
        return "application/json" if self.text is None else "text/plain; version=0.0.4"


class Router:
    """Exact-path routing table with per-method dispatch.

    Exact routes always win; a *prefix* route (``add_prefix``) catches
    every path strictly below its mount point (``/v1/jobs`` matches
    ``/v1/jobs/j-1`` and ``/v1/jobs/j-1/result``, never ``/v1/jobs``
    itself or ``/v1/jobsx``) — the handler parses the remainder, which
    keeps the table free of pattern syntax.
    """

    def __init__(self) -> None:
        self._routes: dict[str, dict[str, Callable[[Request], Response]]] = {}
        self._prefixes: dict[str, dict[str, Callable[[Request], Response]]] = {}

    def add(self, method: str, path: str, handler: Callable[[Request], Response]) -> None:
        """Register ``handler`` for ``method path``."""
        self._routes.setdefault(path, {})[method.upper()] = handler

    def add_prefix(
        self, method: str, prefix: str, handler: Callable[[Request], Response]
    ) -> None:
        """Register ``handler`` for every path below ``prefix``."""
        self._prefixes.setdefault(prefix.rstrip("/"), {})[method.upper()] = handler

    def _match(self, path: str) -> "dict[str, Callable[[Request], Response]] | None":
        methods = self._routes.get(path)
        if methods is not None:
            return methods
        best: "str | None" = None
        for prefix in self._prefixes:
            if path.startswith(prefix + "/") and (best is None or len(prefix) > len(best)):
                best = prefix
        return None if best is None else self._prefixes[best]

    def handle(self, request: Request) -> Response:
        """Dispatch one request; unknown path → 404, wrong method → 405."""
        methods = self._match(request.path)
        if methods is None:
            raise NotFoundError(f"no such endpoint: {request.path}")
        handler = methods.get(request.method.upper())
        if handler is None:
            raise MethodNotAllowedError(
                f"{request.method} not allowed on {request.path}",
                allowed=tuple(sorted(methods)),
            )
        return handler(request)

    def paths(self) -> tuple[str, ...]:
        """Registered paths, sorted (for the index endpoint)."""
        return tuple(sorted(self._routes))


#: The classify endpoint's structural parameters, in Table-I site order.
_SIGNATURE_PARAMS: tuple[str, ...] = (
    "ips", "dps", "ip-ip", "ip-dp", "ip-im", "dp-dm", "dp-dp", "granularity",
)


class TaxonomyService:
    """The endpoint handlers plus the state they share.

    One instance serves every request: the :class:`ModelCache` is shared
    (with lock-contention accounting), the circuit breaker guards the
    sweep-backed survey costing, and an optional seeded
    :class:`FaultPlan` injects deterministic chaos into the protected
    handler path — request ordinals play the role of cycles, so the
    same plan always fails the same requests.
    """

    def __init__(
        self,
        *,
        cache: "ModelCache | None" = None,
        breaker: "CircuitBreaker | None" = None,
        fault_plan: "FaultPlan | None" = None,
        clock: Callable[[], float] = time.monotonic,
        fabric_workers: "str | None" = None,
    ):
        self.cache = cache if cache is not None else ModelCache()
        #: Optional ``HOST:PORT,...`` sweep-worker endpoints; when set,
        #: the sweep-backed survey costing runs on the distributed
        #: fabric (still behind the circuit breaker — a sick fabric
        #: opens the breaker exactly like a sick local sweep, and an
        #: absent fabric degrades to a local sweep inside the call).
        self.fabric_workers = fabric_workers
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(BreakerPolicy(), clock=clock)
        )
        self._cache_lock = threading.Lock()
        self._clock = clock
        self._fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._fault_lock = threading.Lock()
        self._protected_calls = 0
        self.router = Router()
        self.router.add("GET", "/v1/classify", self.handle_classify)
        self.router.add("POST", "/v1/classify", self.handle_classify)
        self.router.add("GET", "/v1/costs", self.handle_costs)
        self.router.add("POST", "/v1/costs", self.handle_costs)
        self.router.add("GET", "/v1/survey", self.handle_survey)

    # -- shared infrastructure -------------------------------------------

    def _evaluate_cached(self, signature: Any, *, n: int, technology: Any) -> Any:
        """Shared-ModelCache evaluation with lock-contention accounting.

        The cache itself is thread-safe; the extra lock measures how
        long requests queue for it under concurrency — the
        ``serve.cache_wait_s`` histogram is the contention signal the
        capacity-tuning table in docs/serving.md is built from.
        """
        started = self._clock()
        with self._cache_lock:
            _CACHE_WAIT.observe(max(self._clock() - started, 0.0))
            return self.cache.evaluate(signature, n=n, technology=technology)

    def _protected(self, fn: Callable[[], Any]) -> Any:
        """Run a sweep-backed query under chaos injection + the breaker."""
        with self._fault_lock:
            self._protected_calls += 1
            ordinal = self._protected_calls
        injector = self._fault_injector

        def guarded() -> Any:
            if injector is not None:
                with self._fault_lock:
                    due = injector.due(ordinal)
                if due:
                    raise FaultError(
                        f"injected fault on request {ordinal}: {due[0].describe()}"
                    )
            return fn()

        return self.breaker.call(guarded)

    # -- /v1/classify ----------------------------------------------------

    def parse_classify_request(self, request: Request) -> Any:
        """Validate a classify request and build its :class:`Signature`.

        Shared by the scalar handler and the batch kernel path, so both
        reject malformed items with the exact same structured errors.
        """
        params = request.params
        require_known(params, _SIGNATURE_PARAMS)
        ips = string_field(params, "ips", required=True)
        dps = string_field(params, "dps", required=True)
        request.check_deadline("validating the request")
        return make_signature(
            ips,
            dps,
            ip_ip=string_field(params, "ip-ip"),
            ip_dp=string_field(params, "ip-dp"),
            ip_im=string_field(params, "ip-im"),
            dp_dm=string_field(params, "dp-dm"),
            dp_dp=string_field(params, "dp-dp"),
            granularity=string_field(params, "granularity"),
        )

    @staticmethod
    def classify_payload(signature: Any, result: Any) -> "dict[str, Any]":
        """Render one classification as the endpoint's response body.

        Both the scalar handler and the vectorized batch path go through
        this function, which (together with ``stable_json`` encoding) is
        what makes kernel-on and kernel-off responses byte-identical.
        """
        name = result.name
        return {
            "class": {
                "serial": result.taxonomy_class.serial,
                "short_name": result.short_name,
                "name": None if name is None else name.long,
                "implementable": result.implementable,
            },
            "flexibility": result.flexibility,
            "signature": signature.describe(),
            "switched_sites": [site.label for site in signature.switched_sites()],
            "explain": result.explain(),
        }

    def handle_classify(self, request: Request) -> Response:
        """Classify a signature given as query parameters or JSON fields."""
        signature = self.parse_classify_request(request)
        result = classify(signature)
        return Response(payload=self.classify_payload(signature, result))

    # -- /v1/costs -------------------------------------------------------

    def handle_costs(self, request: Request) -> Response:
        """Eq. 1 / Eq. 2 (plus energy and reconfiguration) for one class."""
        params = request.params
        require_known(params, ("class", "serial", "n", "technology"))
        short_name = string_field(params, "class")
        serial = int_field(params, "serial", minimum=1, maximum=47)
        if (short_name is None) == (serial is None):
            raise BadRequestError(
                "exactly one of 'class' (short name) or 'serial' (1..47) is required"
            )
        n = int_field(params, "n", default=16, minimum=1, maximum=MAX_DESIGN_N)
        node_name = choice_field(
            params, "technology", tuple(sorted(NODES)), default="65nm"
        )
        request.check_deadline("validating the request")
        try:
            taxonomy_class = (
                class_by_name(short_name) if short_name is not None
                else class_by_serial(serial)
            )
        except (ClassificationError, NamingError) as error:
            raise NotFoundError(str(error)) from None
        node = NODES[node_name]
        estimates = self._evaluate_cached(taxonomy_class.signature, n=n, technology=node)
        payload = {
            "class": taxonomy_class.comment,
            "serial": taxonomy_class.serial,
            "n": n,
            "technology": node.name,
            "area_ge": estimates.area_ge,
            "area_um2": estimates.area_um2,
            "config_bits": estimates.config_bits,
            "energy_per_op_pj": estimates.energy_per_op_pj,
            "reconfig_cycles": estimates.reconfig_cycles,
        }
        return Response(payload=payload)

    # -- /v1/survey ------------------------------------------------------

    def handle_survey(self, request: Request) -> Response:
        """The Table-III survey; ``costs=true`` adds sweep-backed estimates."""
        params = request.params
        require_known(params, ("name", "costs", "n"))
        wanted = string_field(params, "name")
        include_costs = bool_field(params, "costs")
        n = int_field(params, "n", default=16, minimum=1, maximum=MAX_DESIGN_N)
        request.check_deadline("validating the request")
        entries = survey_table()
        if wanted is not None:
            matches = [e for e in entries if e.name.lower() == wanted.lower()]
            if not matches:
                raise NotFoundError(f"no surveyed architecture named {wanted!r}")
            entries = tuple(matches)
        costs_by_name: dict[str, Any] = {}
        if include_costs:
            from repro.analysis.survey_costs import evaluate_survey

            points = self._protected(
                lambda: evaluate_survey(default_n=n, workers=self.fabric_workers)
            )
            costs_by_name = {point.name: point for point in points}
        architectures = []
        for entry in entries:
            record = entry.record
            row: dict[str, Any] = {
                "name": record.name,
                "year": record.year,
                "family": record.family.value,
                "class": entry.taxonomic_name,
                "flexibility": entry.flexibility,
                "paper_class": record.paper_name,
                "paper_flexibility": record.paper_flexibility,
                "agrees_with_paper": entry.agrees_with_paper,
            }
            point = costs_by_name.get(record.name)
            if point is not None:
                row["costs"] = {
                    "n_effective": point.n_effective,
                    "area_ge": point.area_ge,
                    "config_bits": point.config_bits,
                    "energy_per_op_pj": point.energy_per_op_pj,
                    "reconfig_cycles": point.reconfig_cycles,
                }
            architectures.append(row)
        return Response(payload={"architectures": architectures, "count": len(architectures)})
