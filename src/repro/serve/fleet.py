"""The cross-worker stats bus behind the pre-fork front end.

Pre-fork workers are separate processes, so each accumulates its own
:mod:`repro.obs` registry and response-cache counters. Orchestrators
still want *one* answer from ``/v1/metrics`` and ``/v1/readyz``, no
matter which worker the kernel's SO_REUSEPORT hash routed the scrape
to. This module makes every worker able to answer for the fleet:

* each worker runs a :class:`FleetBus` — a unix-domain socket under the
  fleet directory that serves a JSON snapshot (pid, in-flight, queue
  depth, cache stats, full metrics registry) to anyone who connects;
* a scraped worker :meth:`~FleetBus.collect`\\ s its siblings' snapshots
  and merges them with its own — counters and histograms sum
  (histograms share fixed boundaries by construction), gauges sum.

Collection is best-effort by design: a sibling mid-restart or freshly
killed simply drops out of the answer, which is exactly what a fleet
health endpoint should report. Dead socket files are skipped, never a
failure.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from pathlib import Path
from typing import Callable

from repro.obs.metrics import MetricsRegistry, render_prometheus

__all__ = ["FleetBus", "merge_metric_snapshots", "render_fleet_prometheus"]


class FleetBus:
    """One worker's stats endpoint plus the sibling collector."""

    def __init__(
        self,
        directory: "str | os.PathLike",
        snapshot: Callable[[], dict],
        *,
        name: "str | None" = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / (name if name is not None else f"worker-{os.getpid()}.sock")
        self._snapshot = snapshot
        self._closed = False
        self.path.unlink(missing_ok=True)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(self.path))
        self._sock.listen(16)
        self._thread = threading.Thread(
            target=self._serve, name="serve-fleet-bus", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        """Accept loop: one JSON snapshot per connection, then EOF."""
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:  # the bus socket was closed: we're done
                return
            try:
                conn.sendall(json.dumps(self._snapshot(), sort_keys=True).encode("utf-8"))
            except OSError:  # pragma: no cover - collector hung up first
                pass
            finally:
                conn.close()

    def collect(self, timeout_s: float = 1.0) -> list[dict]:
        """Snapshots from every *sibling* worker, best-effort.

        The caller adds its own (fresher-than-any-socket) snapshot; a
        sibling that refuses the connection or sends garbage is simply
        absent from the fleet view.
        """
        members: list[dict] = []
        for sock_path in sorted(self.directory.glob("worker-*.sock")):
            if sock_path == self.path:
                continue
            try:
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
                    client.settimeout(timeout_s)
                    client.connect(str(sock_path))
                    chunks = []
                    while True:
                        chunk = client.recv(65536)
                        if not chunk:
                            break
                        chunks.append(chunk)
                members.append(json.loads(b"".join(chunks)))
            except (OSError, ValueError):
                continue  # dead or mid-restart sibling: best-effort view
        return members

    def close(self) -> None:
        """Stop serving and remove this worker from the fleet directory."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        finally:
            self.path.unlink(missing_ok=True)


def merge_metric_snapshots(snapshots: "list[dict]") -> MetricsRegistry:
    """Fold per-worker registry snapshots into one fresh registry.

    Counters and gauges sum; histograms sum element-wise (their
    boundaries are identical across workers because every worker runs
    the same code). The result is a plain :class:`MetricsRegistry`, so
    the standard Prometheus renderer applies unchanged.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        for name, state in snapshot.items():
            kind = state.get("type")
            if kind == "counter":
                merged.counter(name, help=state.get("help", "")).inc(state["value"])
            elif kind == "gauge":
                merged.gauge(name, help=state.get("help", "")).inc(state["value"])
            elif kind == "histogram":
                histogram = merged.histogram(
                    name,
                    boundaries=tuple(state["boundaries"]),
                    help=state.get("help", ""),
                )
                histogram.merge(state["buckets"], state["count"], state["total"])
    return merged


def render_fleet_prometheus(snapshots: "list[dict]") -> str:
    """The merged fleet registry in Prometheus text exposition format."""
    return render_prometheus(merge_metric_snapshots(snapshots))
