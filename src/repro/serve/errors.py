"""The service's typed error taxonomy: every failure has an HTTP shape.

A hardened endpoint never leaks a traceback: whatever goes wrong inside
a handler is mapped onto exactly one :class:`ServeError` subclass, and
each subclass fixes the HTTP status code, a stable machine-readable
``code`` string and (for shed load) a ``Retry-After`` hint. Library
errors raised by the taxonomy pipeline — malformed signatures, unknown
architectures — are folded in by :func:`as_serve_error`, so the wire
contract is closed over everything the handlers can raise.

The split mirrors the convention the rest of the package uses for
:class:`~repro.core.errors.ReproError`: callers can catch
:class:`ServeError` wholesale or discriminate the precise failure mode,
and every error renders the same structured JSON body::

    {"error": {"code": "...", "message": "...", "status": ...}}
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import (
    CapabilityError,
    ClassificationError,
    ConfigurationError,
    FaultError,
    NamingError,
    ProgramError,
    RegistryError,
    ReproError,
    RoutingError,
    SignatureError,
)

__all__ = [
    "ServeError",
    "BadRequestError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ConflictError",
    "RateLimitedError",
    "OverloadedError",
    "BreakerOpenError",
    "DrainingError",
    "DeadlineExceededError",
    "InternalError",
    "as_serve_error",
]


class ServeError(ReproError):
    """Base class for every error the HTTP service can surface.

    ``status`` is the HTTP status code, ``code`` the stable token
    clients should branch on (status codes are shared by several
    distinct conditions — 503 covers overload, breaker-open and
    draining — but ``code`` never is).
    """

    status: int = 500
    code: str = "internal"
    #: Retry-After hint in seconds; ``None`` omits the header.
    retry_after_s: "float | None" = None

    def payload(self) -> dict[str, Any]:
        """The structured JSON error body (sorted-key stable)."""
        body: dict[str, Any] = {
            "error": {
                "code": self.code,
                "message": str(self),
                "status": self.status,
            }
        }
        if self.retry_after_s is not None:
            body["error"]["retry_after_s"] = round(self.retry_after_s, 3)
        return body


class BadRequestError(ServeError):
    """The request is malformed: bad parameter, bad body, bad value."""

    status = 400
    code = "bad_request"


class NotFoundError(ServeError):
    """No route, architecture or taxonomy class under that name."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(ServeError):
    """The route exists but not for this HTTP method."""

    status = 405
    code = "method_not_allowed"

    def __init__(self, message: str, *, allowed: "tuple[str, ...]" = ()):
        super().__init__(message)
        self.allowed = allowed


class ConflictError(ServeError):
    """The request is valid but the resource's state forbids it now.

    The jobs API speaks this for ``GET .../result`` on a job that has
    not (or will never) produce one; a ``retry_after_s`` hint marks the
    retryable flavour (result not *yet* ready) apart from the final one
    (the job failed, was cancelled, or expired).
    """

    status = 409
    code = "conflict"

    def __init__(self, message: str, *, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RateLimitedError(ServeError):
    """The token bucket is empty — the client is over its rate."""

    status = 429
    code = "rate_limited"

    def __init__(self, message: str, *, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class OverloadedError(ServeError):
    """The admission queue is full — load must be shed, not buffered."""

    status = 503
    code = "overloaded"

    def __init__(self, message: str, *, retry_after_s: "float | None" = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class BreakerOpenError(ServeError):
    """The circuit breaker is open for this dependency."""

    status = 503
    code = "breaker_open"

    def __init__(self, message: str, *, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(ServeError):
    """The server received SIGTERM/SIGINT and no longer admits work."""

    status = 503
    code = "draining"
    retry_after_s = 1.0


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a result was produced."""

    status = 504
    code = "deadline_exceeded"


class InternalError(ServeError):
    """An unexpected failure; the message is sanitised, never a traceback."""

    status = 500
    code = "internal"


#: Library errors that indicate the *request* was wrong (HTTP 4xx), not
#: the server. Anything else library-raised is an internal fault.
_CLIENT_ERRORS: tuple[type[ReproError], ...] = (
    SignatureError,
    NamingError,
    ClassificationError,
    CapabilityError,
    ConfigurationError,
    ProgramError,
    RoutingError,
)


def as_serve_error(error: BaseException) -> ServeError:
    """Map any exception onto the service's error taxonomy.

    * :class:`ServeError` passes through untouched;
    * request-shaped library errors become 400s (or 404 for registry
      misses) carrying the library's own message — those messages are
      user-facing by design;
    * everything else (including injected :class:`FaultError` chaos)
      becomes a sanitised 500 that names the exception type only, so
      no internal detail or traceback ever reaches the wire.
    """
    if isinstance(error, ServeError):
        return error
    if isinstance(error, RegistryError):
        return NotFoundError(str(error))
    if isinstance(error, _CLIENT_ERRORS):
        return BadRequestError(str(error))
    if isinstance(error, FaultError):
        return InternalError(f"upstream fault: {error}")
    return InternalError(f"internal error: {type(error).__name__}")
