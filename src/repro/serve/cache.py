"""Bounded response cache keyed on canonical request signatures.

``/v1/classify`` and ``/v1/costs`` are pure functions of their
parameters — the same signature always classifies the same way, the
same (class, n, technology) always prices the same — so their 200
responses are cacheable forever. This module is the exploitation of
that purity: a thread-safe LRU over :class:`~repro.serve.router.
Response` objects, keyed on the canonical ``(path, sorted params)``
tuple so a ``GET`` query string and a ``POST`` body naming the same
parameters share one entry.

Design points the tests pin down:

* **parity** — a cached response is the *same immutable object* the
  handler produced, so cached and uncached requests are byte-identical
  on the wire (both go through ``stable_json``);
* **bounded** — capacity is a hard entry cap; insertion beyond it
  evicts least-recently-used entries, counted in ``serve.cache_evictions``;
* **only successes** — non-200 responses are never stored, so shed load
  (429/503), deadline 504s and breaker trips cannot poison the cache;
* **observable** — hits/misses/evictions feed both the process-wide
  :mod:`repro.obs` registry (``/v1/metrics``) and per-instance stats
  (``/v1/readyz`` fleet health).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping

from repro.obs import metrics as _metrics
from repro.serve.router import Response

__all__ = ["CACHEABLE_PATHS", "ResponseCache"]

_HITS = _metrics.REGISTRY.counter(
    "serve.cache_hits", help="response-cache hits (request answered without a worker)"
)
_MISSES = _metrics.REGISTRY.counter(
    "serve.cache_misses", help="response-cache misses (request computed by a worker)"
)
_EVICTIONS = _metrics.REGISTRY.counter(
    "serve.cache_evictions", help="response-cache LRU evictions (capacity pressure)"
)

#: Endpoints whose 200 responses are pure functions of their parameters.
#: ``/v1/survey`` is deliberately absent: ``costs=true`` runs behind the
#: circuit breaker (and under chaos injection), and caching it would
#: mask exactly the failures the breaker exists to surface.
CACHEABLE_PATHS: tuple[str, ...] = ("/v1/classify", "/v1/costs")


class ResponseCache:
    """A thread-safe LRU of immutable :class:`Response` objects."""

    def __init__(
        self,
        capacity: int = 1024,
        *,
        paths: "tuple[str, ...]" = CACHEABLE_PATHS,
    ):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.paths = tuple(paths)
        self._entries: "OrderedDict[tuple, Response]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(path: str, params: "Mapping[str, str]") -> tuple:
        """The canonical signature: path plus sorted parameter pairs.

        Parameter *order* never matters (``?a=1&b=2`` and ``?b=2&a=1``
        share an entry), and a POST body naming the same fields maps to
        the same key as the equivalent GET query string.
        """
        return (path, tuple(sorted(params.items())))

    def cacheable(self, method: str, path: str) -> bool:
        """True when responses for ``method path`` may use the cache."""
        return (
            self.capacity > 0
            and method.upper() in ("GET", "POST")
            and path in self.paths
        )

    def get(self, key: tuple) -> "Response | None":
        """Look up ``key``; counts a hit or a miss either way."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                _MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            _HITS.inc()
            return entry

    def put(self, key: tuple, response: Response) -> bool:
        """Store a 200 response; True when it was (re)inserted."""
        if self.capacity == 0 or response.status != 200:
            return False
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                _EVICTIONS.inc()
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Instance-local counters for ``/v1/readyz`` fleet health."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / lookups, 4) if lookups else 0.0,
            }
