"""Circuit breaking for expensive sweep-backed queries.

A :class:`CircuitBreaker` guards one dependency (here: the survey cost
sweep) with the classic three-state machine:

* **closed** — calls pass through; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls
  are rejected instantly with :class:`BreakerOpenError` for a recovery
  interval, so a struggling dependency is given air instead of a
  thundering herd;
* **half-open** — once the interval lapses, up to ``probe_limit``
  concurrent probe calls are admitted; ``success_threshold`` probe
  successes close the breaker, any probe failure re-opens it with a
  longer interval.

The recovery schedule is *deterministic*, in the same style as
:class:`repro.perf.RetryPolicy`: interval ``k`` (1-based, one per
consecutive open) is::

    recovery_s * factor**(k - 1) * (1 + jitter * u)   capped at max_recovery_s

with ``u`` drawn from a PRNG seeded purely by ``(seed, k)`` — two
breakers with the same policy trace byte-identical state timelines
under the same fault sequence, which is what the chaos tests pin down.

State is exported through the ``serve.breaker_state`` gauge
(0 closed / 1 half-open / 2 open) and a transition counter, and the
``/v1/readyz`` endpoint reports 503 while the breaker is open.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import metrics as _metrics
from repro.serve.errors import BreakerOpenError

__all__ = ["BreakerPolicy", "BreakerState", "CircuitBreaker"]


_BREAKER_STATE = _metrics.REGISTRY.gauge(
    "serve.breaker_state", help="circuit breaker state (0 closed, 1 half-open, 2 open)"
)
_BREAKER_TRANSITIONS = _metrics.REGISTRY.counter(
    "serve.breaker_transitions", help="circuit breaker state transitions"
)
_BREAKER_REJECTED = _metrics.REGISTRY.counter(
    "serve.breaker_rejected", help="calls rejected by an open circuit breaker"
)


class BreakerState(enum.Enum):
    """The three classic breaker states."""

    CLOSED = "closed"
    HALF_OPEN = "half-open"
    OPEN = "open"

    @property
    def gauge_value(self) -> int:
        """Numeric encoding for the ``serve.breaker_state`` gauge."""
        return {"closed": 0, "half-open": 1, "open": 2}[self.value]


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Deterministic breaker tuning, :class:`~repro.perf.RetryPolicy`-style.

        >>> BreakerPolicy(seed=7).recovery_schedule(3) == \\
        ...     BreakerPolicy(seed=7).recovery_schedule(3)
        True
    """

    failure_threshold: int = 5
    recovery_s: float = 1.0
    factor: float = 2.0
    jitter: float = 0.25
    max_recovery_s: float = 60.0
    probe_limit: int = 1
    success_threshold: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.recovery_s <= 0:
            raise ValueError(f"recovery_s must be > 0, got {self.recovery_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.max_recovery_s < self.recovery_s:
            raise ValueError(
                f"max_recovery_s must be >= recovery_s, got {self.max_recovery_s}"
            )
        if self.probe_limit < 1:
            raise ValueError(f"probe_limit must be >= 1, got {self.probe_limit}")
        if self.success_threshold < 1:
            raise ValueError(f"success_threshold must be >= 1, got {self.success_threshold}")

    def recovery_delay_s(self, open_count: int) -> float:
        """The deterministic recovery interval for consecutive open ``open_count``."""
        if open_count < 1:
            raise ValueError(f"open_count is 1-based, got {open_count}")
        mixed = (self.seed & 0xFFFFFFFF) * 0x9E3779B1 + open_count
        noise = random.Random((mixed ^ (mixed >> 16)) * 0x85EBCA6B).random()
        raw = self.recovery_s * self.factor ** (open_count - 1) * (1.0 + self.jitter * noise)
        return min(raw, self.max_recovery_s)

    def recovery_schedule(self, count: int) -> tuple[float, ...]:
        """The first ``count`` recovery intervals."""
        return tuple(self.recovery_delay_s(k) for k in range(1, count + 1))


class CircuitBreaker:
    """Thread-safe three-state breaker around one guarded callable."""

    def __init__(
        self,
        policy: "BreakerPolicy | None" = None,
        *,
        name: str = "sweep",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else BreakerPolicy()
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0          # consecutive failures while closed
        self._open_count = 0        # consecutive opens (drives the backoff)
        self._opened_at = 0.0
        self._probes = 0            # probes in flight while half-open
        self._probe_successes = 0
        _BREAKER_STATE.set(self._state.gauge_value)

    # -- state inspection ------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """The breaker's current state (advancing open→half-open lazily)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for ``/v1/readyz``."""
        with self._lock:
            self._maybe_half_open()
            body: dict[str, Any] = {
                "name": self.name,
                "state": self._state.value,
                "consecutive_failures": self._failures,
                "open_count": self._open_count,
            }
            if self._state is BreakerState.OPEN:
                body["retry_after_s"] = round(max(self._remaining_open(), 0.0), 3)
            return body

    def _remaining_open(self) -> float:
        return self.policy.recovery_delay_s(self._open_count) - (
            self._clock() - self._opened_at
        )

    def _maybe_half_open(self) -> None:
        """Lazy open → half-open transition once the interval has lapsed."""
        if self._state is BreakerState.OPEN and self._remaining_open() <= 0.0:
            self._transition(BreakerState.HALF_OPEN)
            self._probes = 0
            self._probe_successes = 0

    def _transition(self, state: BreakerState) -> None:
        if state is not self._state:
            self._state = state
            _BREAKER_STATE.set(state.gauge_value)
            _BREAKER_TRANSITIONS.inc()

    # -- the guarded call ------------------------------------------------

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the breaker; exceptions count as failures."""
        with self._admit():
            return fn()

    def _admit(self) -> "_Admission":
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.OPEN:
                _BREAKER_REJECTED.inc()
                raise BreakerOpenError(
                    f"circuit breaker {self.name!r} is open",
                    retry_after_s=max(self._remaining_open(), 0.0),
                )
            if self._state is BreakerState.HALF_OPEN:
                if self._probes >= self.policy.probe_limit:
                    _BREAKER_REJECTED.inc()
                    raise BreakerOpenError(
                        f"circuit breaker {self.name!r} is half-open and probing",
                        retry_after_s=self.policy.recovery_s,
                    )
                self._probes += 1
        return _Admission(self)

    def _record_success(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes -= 1
                self._probe_successes += 1
                if self._probe_successes >= self.policy.success_threshold:
                    self._transition(BreakerState.CLOSED)
                    self._failures = 0
                    self._open_count = 0
            else:
                self._failures = 0

    def _record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probes -= 1
                self._open(self._open_count + 1)
            elif self._state is BreakerState.CLOSED:
                self._failures += 1
                if self._failures >= self.policy.failure_threshold:
                    self._open(self._open_count + 1)

    def _open(self, open_count: int) -> None:
        self._open_count = open_count
        self._opened_at = self._clock()
        self._failures = 0
        self._transition(BreakerState.OPEN)


class _Admission:
    """Context manager recording the guarded call's outcome."""

    __slots__ = ("_breaker",)

    def __init__(self, breaker: CircuitBreaker):
        self._breaker = breaker

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, exc_type: "type | None", *exc_info: object) -> bool:
        if exc_type is None:
            self._breaker._record_success()
        else:
            self._breaker._record_failure()
        return False
