"""``repro.serve`` — the hardened taxonomy query service.

A dependency-free HTTP service (stdlib ``http.server``) exposing the
paper's pipeline as JSON endpoints, built for overload rather than for
the happy path: bounded worker pool behind an explicit admission queue,
token-bucket rate limiting, per-request deadlines that cancel queued
work, a deterministic circuit breaker around sweep-backed queries, and
a graceful SIGTERM/SIGINT drain. The data plane adds HTTP/1.1
keep-alive, a bounded response cache over the pure endpoints, batch
``{"items": [...]}`` bodies, and an optional pre-fork multi-process
front end sharing one port via ``SO_REUSEPORT`` with fleet-aggregated
metrics. See ``docs/serving.md`` for the guide and capacity-tuning
table, and ``scripts/loadgen.py`` for the closed-loop load generator
that exercises all of it.
"""

from repro.serve.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.serve.cache import CACHEABLE_PATHS, ResponseCache
from repro.serve.errors import (
    BadRequestError,
    BreakerOpenError,
    ConflictError,
    DeadlineExceededError,
    DrainingError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    OverloadedError,
    RateLimitedError,
    ServeError,
    as_serve_error,
)
from repro.serve.fleet import FleetBus, merge_metric_snapshots, render_fleet_prometheus
from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobContext,
    JobKind,
    JobManager,
    JobRecord,
    JobsApi,
    JobStore,
    TransientJobError,
    fold_events,
    get_job_kind,
    job_kinds,
    register_job_kind,
)
from repro.serve.lifecycle import DrainController, install_signal_handlers
from repro.serve.limits import Deadline, Job, TokenBucket, WorkerPool
from repro.serve.prefork import run_prefork, supports_prefork
from repro.serve.router import Request, Response, Router, TaxonomyService
from repro.serve.server import ServerConfig, ServiceApp, TaxonomyHTTPServer, run_server

__all__ = [
    # breaker
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    # cache
    "CACHEABLE_PATHS",
    "ResponseCache",
    # errors
    "ServeError",
    "BadRequestError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ConflictError",
    "RateLimitedError",
    "OverloadedError",
    "BreakerOpenError",
    "DrainingError",
    "DeadlineExceededError",
    "InternalError",
    "as_serve_error",
    # fleet
    "FleetBus",
    "merge_metric_snapshots",
    "render_fleet_prometheus",
    # jobs
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobContext",
    "JobKind",
    "JobManager",
    "JobRecord",
    "JobStore",
    "JobsApi",
    "TransientJobError",
    "fold_events",
    "get_job_kind",
    "job_kinds",
    "register_job_kind",
    # lifecycle
    "DrainController",
    "install_signal_handlers",
    # limits
    "Deadline",
    "Job",
    "TokenBucket",
    "WorkerPool",
    # prefork
    "run_prefork",
    "supports_prefork",
    # routing
    "Request",
    "Response",
    "Router",
    "TaxonomyService",
    # server
    "ServerConfig",
    "ServiceApp",
    "TaxonomyHTTPServer",
    "run_server",
]
