"""Graceful shutdown: stop accepting, drain in-flight work, exit clean.

The drain contract the tests and the CI smoke step assert:

1. SIGTERM/SIGINT flips the :class:`DrainController` to *draining* —
   from that instant every newly arriving request is rejected with a
   structured 503 (``code: "draining"``), never silently dropped;
2. requests already admitted keep running; the controller counts them
   and :meth:`wait_drained` blocks until the count reaches zero or the
   drain deadline lapses;
3. a drain that completes inside the deadline exits 0 with zero
   dropped accepted requests; a forced exit after the deadline reports
   the stragglers and exits non-zero.

Signal handlers are only installed from the main thread (Python's
rule); embedded servers — tests, notebooks — call
:meth:`DrainController.begin_drain` directly instead, which is exactly
what the handler does.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable

from repro.obs import metrics as _metrics
from repro.serve.errors import DrainingError

__all__ = ["DrainController", "install_signal_handlers"]


_DRAINS = _metrics.REGISTRY.counter(
    "serve.drains", help="graceful drains initiated (SIGTERM/SIGINT or API)"
)


class DrainController:
    """Tracks in-flight requests and the accepting/draining transition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._draining = threading.Event()
        #: Called once when the drain begins (the server hooks its
        #: listener shutdown here).
        self.on_drain: "Callable[[], None] | None" = None

    @property
    def draining(self) -> bool:
        """True once a drain has begun (never reset)."""
        return self._draining.is_set()

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet finished."""
        with self._lock:
            return self._inflight

    def admit(self) -> "_InflightToken":
        """Admit one request; raises :class:`DrainingError` mid-drain.

        Use as a context manager so completion is recorded on every
        path, including handler exceptions.
        """
        with self._lock:
            if self._draining.is_set():
                raise DrainingError("server is draining; connection refused")
            self._inflight += 1
        return _InflightToken(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def begin_drain(self) -> bool:
        """Flip to draining; True only for the call that flipped it."""
        with self._lock:
            if self._draining.is_set():
                return False
            self._draining.set()
        _DRAINS.inc()
        callback = self.on_drain
        if callback is not None:
            callback()
        return True

    def wait_drained(self, timeout_s: "float | None") -> bool:
        """Block until no requests are in flight; False on timeout."""
        with self._lock:
            return self._idle.wait_for(lambda: self._inflight == 0, timeout_s)

    def wait_for_drain_signal(self, timeout_s: "float | None" = None) -> bool:
        """Block until a drain begins (used by the serve main loop)."""
        return self._draining.wait(timeout_s)


class _InflightToken:
    """Context manager pairing one admit with exactly one release."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: DrainController):
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_InflightToken":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._released:
            self._released = True
            self._controller._release()


def install_signal_handlers(
    controller: DrainController,
    *,
    signals: "tuple[int, ...]" = (signal.SIGTERM, signal.SIGINT),
) -> bool:
    """Route SIGTERM/SIGINT into :meth:`DrainController.begin_drain`.

    Returns False (and installs nothing) when called off the main
    thread, where CPython forbids ``signal.signal``; embedded callers
    drive the controller directly.
    """
    if threading.current_thread() is not threading.main_thread():
        return False

    def _handle(signum: int, frame: object) -> None:
        controller.begin_drain()

    for signum in signals:
        signal.signal(signum, _handle)
    return True
