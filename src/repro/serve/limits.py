"""Admission control: deadlines, token-bucket rate limiting, worker pool.

These are the service's load-shedding primitives. The design point is
the survey's synchronization lesson: a server under overload must fail
*fast and predictably* — a bounded queue plus explicit rejection keeps
the latency of the work it does accept within its deadline, where an
unbounded backlog would grow without limit and time every request out.

Three pieces, each independently testable with an injected clock:

* :class:`Deadline` — a monotonic time budget carried by each request;
* :class:`TokenBucket` — rate limiting (reject with 429 + Retry-After);
* :class:`WorkerPool` — a fixed pool of worker threads behind a
  depth-bounded admission queue (reject with 503 when full). Jobs whose
  deadline expires while still queued are *cancelled*: the worker skips
  them entirely, so an expired request never occupies a worker and
  never strands the responding thread.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Callable

from repro.obs import metrics as _metrics
from repro.serve.errors import DeadlineExceededError, OverloadedError, RateLimitedError

__all__ = ["Deadline", "TokenBucket", "Job", "WorkerPool"]


_QUEUE_DEPTH = _metrics.REGISTRY.gauge(
    "serve.queue_depth", help="jobs waiting in the admission queue"
)
_INFLIGHT = _metrics.REGISTRY.gauge(
    "serve.inflight", help="jobs currently executing on pool workers"
)
_CANCELLED = _metrics.REGISTRY.counter(
    "serve.cancelled_jobs", help="queued jobs cancelled before execution (expired deadlines)"
)


class Deadline:
    """A monotonic time budget: ``deadline = now + budget_s``.

    ``None`` budget means unbounded. The clock is injectable so breaker
    and deadline behaviour can be tested without sleeping.
    """

    __slots__ = ("budget_s", "_clock", "_expires_at")

    def __init__(
        self,
        budget_s: "float | None",
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._expires_at = None if budget_s is None else clock() + budget_s

    def remaining_s(self) -> "float | None":
        """Seconds left (may be negative once expired); None if unbounded."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """True once the budget has run out."""
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0

    def check(self, what: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.budget_s:.3f}s exceeded while {what}"
            )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``rate=0`` disables limiting (every acquire succeeds). The bucket
    is thread-safe and refills lazily on each acquire, so it costs one
    clock read per admitted request.
    """

    def __init__(
        self,
        rate: float,
        burst: "int | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1.0, rate))
        if rate > 0 and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> "float | None":
        """Take one token. Returns None on success, else seconds to wait."""
        if self.rate == 0:
            return None
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate

    def admit(self) -> None:
        """Take one token or raise :class:`RateLimitedError` with a hint."""
        wait_s = self.try_acquire()
        if wait_s is not None:
            raise RateLimitedError(
                f"rate limit of {self.rate:g} requests/s exceeded",
                retry_after_s=wait_s,
            )


class Job:
    """One unit of admitted work: a thunk plus its completion state.

    The submitting thread waits on :meth:`wait`; a pool worker runs
    :meth:`execute`. :meth:`cancel` wins any race with the worker — a
    job transitions to exactly one of ``done`` or ``cancelled``.
    """

    __slots__ = ("fn", "deadline", "_event", "_lock", "_started", "_cancelled", "result", "error")

    def __init__(self, fn: Callable[[], Any], deadline: "Deadline | None" = None):
        self.fn = fn
        self.deadline = deadline
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._started = False
        self._cancelled = False
        self.result: Any = None
        self.error: "BaseException | None" = None

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` won the race against execution."""
        return self._cancelled

    @property
    def done(self) -> bool:
        """True once the job has a result or an error."""
        return self._event.is_set()

    def cancel(self) -> bool:
        """Cancel if not yet started; returns True when the job will be skipped."""
        with self._lock:
            if self._started:
                return False
            self._cancelled = True
            return True

    def execute(self) -> bool:
        """Run the thunk unless cancelled; returns False for a skipped job."""
        with self._lock:
            if self._cancelled:
                return False
            if self.deadline is not None and self.deadline.expired:
                # The deadline lapsed while queued: skip, don't burn a worker.
                self._cancelled = True
                return False
            self._started = True
        try:
            self.result = self.fn()
        except BaseException as error:  # noqa: BLE001 - transported to the waiter
            self.error = error
        finally:
            self._event.set()
        return True

    def wait(self, timeout_s: "float | None") -> bool:
        """Block until done (True) or the timeout lapses (False)."""
        return self._event.wait(timeout_s)


class WorkerPool:
    """``workers`` threads draining a queue bounded at ``queue_depth``.

    Admission is strict: a submit against a full queue raises
    :class:`OverloadedError` immediately rather than blocking — the
    caller turns that into a 503 + Retry-After, which is the only
    honest answer an overloaded server can give quickly.
    """

    def __init__(self, workers: int = 4, queue_depth: int = 16, *, name: str = "serve"):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self._queue: collections.deque[Job] = collections.deque()
        self._lock = threading.Lock()
        self._available = threading.Semaphore(0)
        self._inflight = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Callable[[], Any], *, deadline: "Deadline | None" = None) -> Job:
        """Queue a thunk; raises :class:`OverloadedError` when at depth."""
        job = Job(fn, deadline)
        with self._lock:
            if self._shutdown:
                raise OverloadedError("worker pool is shut down")
            # A submission only *waits* once every worker is busy; idle
            # workers turn the nominal queue bound into immediate pickup.
            idle = self.workers - self._inflight
            if len(self._queue) >= self.queue_depth + max(idle, 0):
                raise OverloadedError(
                    f"admission queue full ({self.queue_depth} waiting); retry later"
                )
            self._queue.append(job)
            _QUEUE_DEPTH.set(len(self._queue))
        self._available.release()
        return job

    def run(self, fn: Callable[[], Any], *, deadline: "Deadline | None" = None) -> Any:
        """Submit and wait under ``deadline``; cancels on expiry.

        Raises :class:`DeadlineExceededError` when the deadline lapses
        first — whether the job was still queued (it is cancelled and
        never runs) or already executing (the result is discarded; the
        worker finishes on its own without stranding this thread).
        """
        job = self.submit(fn, deadline=deadline)
        timeout = None if deadline is None else deadline.remaining_s()
        if job.wait(None if timeout is None else max(timeout, 0.0)):
            if job.error is not None:
                raise job.error
            return job.result
        if job.cancel():
            _CANCELLED.inc()
            raise DeadlineExceededError(
                f"deadline of {deadline.budget_s:.3f}s exceeded while queued"
            )
        raise DeadlineExceededError(
            f"deadline of {deadline.budget_s:.3f}s exceeded while executing"
        )

    def _worker(self) -> None:
        while True:
            self._available.acquire()
            with self._lock:
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft() if self._queue else None
                _QUEUE_DEPTH.set(len(self._queue))
                if job is not None:
                    self._inflight += 1
                    _INFLIGHT.set(self._inflight)
            if job is None:
                continue
            try:
                if not job.execute():
                    _CANCELLED.inc()
            finally:
                with self._lock:
                    self._inflight -= 1
                    _INFLIGHT.set(self._inflight)

    @property
    def queued(self) -> int:
        """Jobs currently waiting in the admission queue."""
        with self._lock:
            return len(self._queue)

    def shutdown(self, *, drain_s: "float | None" = 5.0) -> bool:
        """Stop accepting, let workers finish, join within ``drain_s``.

        Returns True when every worker thread exited inside the budget.
        """
        with self._lock:
            self._shutdown = True
        for _ in self._threads:
            self._available.release()
        deadline = None if drain_s is None else time.monotonic() + drain_s
        clean = True
        for thread in self._threads:
            budget = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            thread.join(budget)
            clean = clean and not thread.is_alive()
        return clean
