"""Durable asynchronous jobs: crash-safe long-running work behind ``/v1/jobs``.

The request/response plane caps every answer at one request deadline;
this module is the substrate for work that does not fit — survey-scale
costing sweeps, population analytics, and (per the roadmap) surrogate-
guided search. A *job* is submitted, journalled, executed by a bounded
runner, and polled to completion; every lifecycle transition is durable
before it is observable, so a SIGKILL of the server (or of any pre-fork
worker) loses nothing: on restart the incomplete job is re-claimed and
its sweep resumes from its checkpoint journal, producing a result
artifact byte-identical to the uninterrupted run.

Lifecycle (journalled, monotone — a terminal state is final)::

    queued ──▶ running ──▶ succeeded
       ▲          │   ├──▶ failed      (permanent error / retries spent)
       │          │   ├──▶ cancelled   (cooperative, between sweep points)
       └──────────┘   └──▶ expired     (per-job wall-clock deadline)
        retrying /
        interrupted (drain)

Durability contract — the same idioms :mod:`repro.perf.journal` pins:

* each job owns an append-only ``events.jsonl``: header + one CRC'd
  JSON record per transition, each appended with a single ``write(2)``
  and fsync'd before the transition is acted on; a torn tail or a
  flipped bit drops that record only (self-healing load);
* the result artifact is written with
  :func:`repro.core.atomicio.atomic_write_bytes` *before* the
  ``succeeded`` record, so a crash between the two re-runs the job and
  rewrites identical bytes — never serves a half-written result;
* execution ownership is an advisory ``flock`` on the job's
  ``claim.lock``: the kernel frees it when the holder dies, which is
  both the multi-worker claim protocol (pre-fork workers share one
  store) and the crash-recovery signal (a ``running`` job whose claim
  is free has a dead owner — any scanner may resume it);
* idempotency keys live in an ``O_CREAT|O_EXCL``-claimed index file per
  key, so a retried submission returns the original job id without
  re-running anything.

Job *kinds* are registered in a process-wide table
(:func:`register_job_kind`); each kind validates its parameters with
the same strict helpers the synchronous endpoints use and runs its
sweep through :meth:`JobContext.run_sweep`, which threads cooperative
cancellation, drain interruption, per-job deadlines and the checkpoint
journal through every point. The built-in kinds are ``survey-costs``
(the ``/v1/survey?costs=true`` workload) and ``population`` (synthetic
signature generation + class-occupancy analytics); roadmap item 2's
surrogate-guided search plugs in as just another kind.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import secrets
import shutil
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows: advisory locking disabled
    fcntl = None  # type: ignore[assignment]

from repro.core.atomicio import atomic_write_bytes, atomic_write_text
from repro.core.errors import FaultError, ReproError
from repro.obs import metrics as _metrics
from repro.perf.engine import RetryPolicy, sweep
from repro.perf.journal import SweepCheckpoint
from repro.serve.errors import (
    BadRequestError,
    ConflictError,
    NotFoundError,
)
from repro.serve.router import Request, Response, Router
from repro.serve.validation import (
    MAX_DESIGN_N,
    choice_field,
    float_field,
    int_field,
    require_known,
    string_field,
)

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobContext",
    "JobKind",
    "JobManager",
    "JobRecord",
    "JobStore",
    "JobsApi",
    "TransientJobError",
    "fold_events",
    "get_job_kind",
    "job_kinds",
    "register_job_kind",
]

#: Schema tag written into (and required of) every job journal header.
JOB_JOURNAL_FORMAT = "repro-job-journal/1"

#: Every state a job can report, in lifecycle order.
JOB_STATES: tuple[str, ...] = (
    "queued", "running", "succeeded", "failed", "cancelled", "expired",
)

#: States a job never leaves; TTL garbage collection only touches these.
TERMINAL_STATES: tuple[str, ...] = ("succeeded", "failed", "cancelled", "expired")

#: Defaults a submission may override (within the validated bounds).
DEFAULT_DEADLINE_S = 300.0
DEFAULT_TTL_S = 3600.0
DEFAULT_MAX_ATTEMPTS = 3

_SUBMITTED = _metrics.REGISTRY.counter("jobs.submitted", help="jobs accepted for execution")
_DEDUPED = _metrics.REGISTRY.counter(
    "jobs.deduplicated", help="submissions answered by an existing idempotency key"
)
_STARTED = _metrics.REGISTRY.counter("jobs.started", help="job execution attempts begun")
_RESUMED = _metrics.REGISTRY.counter(
    "jobs.resumed", help="interrupted jobs re-claimed after a crash or drain"
)
_SUCCEEDED = _metrics.REGISTRY.counter("jobs.succeeded", help="jobs that produced a result")
_FAILED = _metrics.REGISTRY.counter("jobs.failed", help="jobs that exhausted their attempts")
_CANCELLED = _metrics.REGISTRY.counter("jobs.cancelled", help="jobs cancelled cooperatively")
_EXPIRED = _metrics.REGISTRY.counter("jobs.expired", help="jobs past their wall-clock deadline")
_RETRIES = _metrics.REGISTRY.counter("jobs.retries", help="transient failures requeued with backoff")
_INTERRUPTED = _metrics.REGISTRY.counter(
    "jobs.interrupted", help="running jobs checkpointed back to queued by a drain"
)
_GC_REMOVED = _metrics.REGISTRY.counter(
    "jobs.gc_removed", help="terminal jobs (and artifacts) removed by TTL GC"
)
_QUEUED_G = _metrics.REGISTRY.gauge("jobs.queued", help="jobs currently waiting for a runner")
_RUNNING_G = _metrics.REGISTRY.gauge("jobs.running", help="jobs currently executing")
_LATENCY = _metrics.REGISTRY.histogram(
    "jobs.latency_s",
    boundaries=(0.01, 0.1, 1.0, 10.0, 60.0, 600.0),
    help="submit-to-terminal job latency (s)",
)


class TransientJobError(ReproError):
    """A job failure worth retrying (seeded backoff, bounded attempts).

    Job kinds raise this — instead of a bare exception — when the
    failure is environmental rather than inherent to the parameters.
    Injected :class:`~repro.core.errors.FaultError` chaos and OS-level
    errors are classified transient automatically.
    """


class _JobCancelled(Exception):
    """Control flow: the job observed its cancel flag between points."""


class _JobInterrupted(Exception):
    """Control flow: a drain asked the job to checkpoint and requeue."""


class _JobExpired(Exception):
    """Control flow: the job's wall-clock deadline passed."""


# -- the journalled record -------------------------------------------------


@dataclass
class JobRecord:
    """One job's current state, folded from its event journal."""

    job_id: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    idempotency_key: "str | None" = None
    created_at: float = 0.0
    updated_at: float = 0.0
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    deadline_s: float = DEFAULT_DEADLINE_S
    ttl_s: float = DEFAULT_TTL_S
    error: "str | None" = None
    not_before: "float | None" = None
    finished_at: "float | None" = None
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        """Whether this job has reached a final state."""
        return self.state in TERMINAL_STATES

    def payload(self) -> dict[str, Any]:
        """The REST representation served by ``GET /v1/jobs/{id}``."""
        return {
            "id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
            "idempotency_key": self.idempotency_key,
            "created_at": round(self.created_at, 6),
            "updated_at": round(self.updated_at, 6),
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "deadline_s": self.deadline_s,
            "ttl_s": self.ttl_s,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }


def fold_events(events: "list[dict[str, Any]]") -> "JobRecord | None":
    """Fold a job's journalled events into its current :class:`JobRecord`.

    The fold is a pure function of the event sequence: terminal events
    are final (later events are ignored), ``started`` moves a queued or
    interrupted job to ``running`` and counts an attempt, ``retrying``
    and ``interrupted`` move a running job back to ``queued``.

        >>> submitted = {"event": "submitted", "ts": 1.0, "job_id": "j-1",
        ...              "kind": "population", "params": {"size": 8}}
        >>> fold_events([submitted]).state
        'queued'
        >>> fold_events([submitted, {"event": "started", "ts": 2.0}]).state
        'running'
        >>> done = fold_events([submitted, {"event": "started", "ts": 2.0},
        ...                     {"event": "succeeded", "ts": 3.0},
        ...                     {"event": "cancel_requested", "ts": 4.0}])
        >>> done.state, done.attempts  # terminal states are final
        ('succeeded', 1)
    """
    record: "JobRecord | None" = None
    for event in events:
        name = event.get("event")
        ts = float(event.get("ts", 0.0))
        if name == "submitted":
            if record is not None:
                continue
            record = JobRecord(
                job_id=str(event.get("job_id", "")),
                kind=str(event.get("kind", "")),
                params=dict(event.get("params") or {}),
                idempotency_key=event.get("idempotency_key"),
                created_at=ts,
                updated_at=ts,
                max_attempts=int(event.get("max_attempts", DEFAULT_MAX_ATTEMPTS)),
                deadline_s=float(event.get("deadline_s", DEFAULT_DEADLINE_S)),
                ttl_s=float(event.get("ttl_s", DEFAULT_TTL_S)),
            )
            continue
        if record is None or record.terminal:
            continue
        record.updated_at = ts
        if name == "started":
            record.state = "running"
            record.attempts += 1
            record.not_before = None
        elif name == "retrying":
            record.state = "queued"
            record.not_before = float(event.get("not_before", ts))
            record.error = event.get("error")
        elif name == "interrupted":
            record.state = "queued"
        elif name == "cancel_requested":
            record.cancel_requested = True
        elif name in TERMINAL_STATES:
            record.state = name
            record.error = event.get("error", record.error)
            record.finished_at = ts
    return record


def _record_crc(body: "dict[str, Any]") -> int:
    """CRC32 of a record body's canonical JSON (sans the ``crc`` key)."""
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _decode_event(line: str) -> "dict[str, Any] | None":
    """One JSONL event back into a dict; ``None`` drops a bad record."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("event"), str):
        return None
    crc = record.pop("crc", None)
    if crc is not None and crc != _record_crc(record):
        return None
    return record


def backoff_delay(job_id: str, attempt: int, *, policy: "RetryPolicy | None" = None) -> float:
    """The seeded backoff before retry ``attempt`` (1-based) of a job.

    A pure function of ``(job_id, attempt, policy)`` — two processes
    scheduling the same retry agree on the delay exactly, the same
    property :class:`repro.perf.engine.RetryPolicy` pins for sweeps.

        >>> backoff_delay("j-1", 1) == backoff_delay("j-1", 1)
        True
        >>> backoff_delay("j-1", 2) > backoff_delay("j-1", 1) / 2
        True
    """
    chosen = policy if policy is not None else RetryPolicy(backoff_s=0.1, seed=0)
    return chosen.delay_s(zlib.crc32(job_id.encode("utf-8")), attempt)


# -- the durable store -----------------------------------------------------


class _JobClaim:
    """Advisory execution ownership of one job (``flock`` on claim.lock).

    The lock follows the open file description, so two runner threads in
    one process conflict exactly like two pre-fork workers do — and the
    kernel frees it when the holder dies, which is what lets a sibling
    (or a restarted server) adopt a SIGKILLed owner's running job.
    """

    def __init__(self, path: Path):
        self.path = path
        self._handle: Any = None

    def acquire(self) -> bool:
        """Take the claim; ``False`` means a live owner already holds it."""
        handle = open(self.path, "a+", encoding="utf-8")
        if fcntl is None:  # pragma: no cover - Windows: single-process only
            self._handle = handle
            return True
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        self._handle = handle
        return True

    def release(self) -> None:
        """Drop the claim (idempotent)."""
        if self._handle is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - claim file GC'd underneath us
                pass
        self._handle.close()
        self._handle = None


class JobStore:
    """The shared on-disk job table: journals, claims, artifacts, index.

    Layout under ``root``::

        jobs/<id>/events.jsonl   append-only lifecycle journal (fsync'd)
        jobs/<id>/result.json    atomic result artifact (stable JSON)
        jobs/<id>/checkpoints/   the job's sweep checkpoint journals
        jobs/<id>/claim.lock     flock'd while a runner owns the job
        jobs/<id>/cancel.flag    cross-process cancellation request
        idempotency/<sha256>.json  idempotency key -> job id

    Every pre-fork worker opens the same store: reads fold the journal
    on demand, writes are single-``write(2)`` fsync'd appends, and the
    claim protocol serialises execution — no in-memory state needs to
    survive or be shared.
    """

    def __init__(self, root: "str | os.PathLike", *, clock: Callable[[], float] = time.time):
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.index_root = self.root / "idempotency"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self.index_root.mkdir(parents=True, exist_ok=True)
        self._clock = clock

    # -- paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """The directory holding one job's journal and artifacts."""
        return self.jobs_root / job_id

    def events_path(self, job_id: str) -> Path:
        """The job's append-only lifecycle journal."""
        return self.job_dir(job_id) / "events.jsonl"

    def result_path(self, job_id: str) -> Path:
        """The job's result artifact (exists only once succeeded)."""
        return self.job_dir(job_id) / "result.json"

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where the job's sweep checkpoints journal their points."""
        return self.job_dir(job_id) / "checkpoints"

    def cancel_flag(self, job_id: str) -> Path:
        """The cross-process cancellation marker."""
        return self.job_dir(job_id) / "cancel.flag"

    # -- submission ------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: "dict[str, Any]",
        *,
        idempotency_key: "str | None" = None,
        deadline_s: float = DEFAULT_DEADLINE_S,
        ttl_s: float = DEFAULT_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> "tuple[JobRecord, bool]":
        """Journal a new job; returns ``(record, deduplicated)``.

        With an idempotency key, the key's index file is claimed with
        ``O_CREAT|O_EXCL`` — exactly one concurrent submitter wins and
        creates the job; everyone else (including any later retry of the
        same submission) reads the winner's job id back and returns the
        existing record untouched. An index whose job has since been
        garbage-collected is stale and is atomically re-pointed.
        """
        index_path: "Path | None" = None
        if idempotency_key is not None:
            digest = hashlib.sha256(idempotency_key.encode("utf-8")).hexdigest()
            index_path = self.index_root / f"{digest}.json"
            if not self._claim_index(index_path):
                existing = self._read_index(index_path)
                if existing is not None:
                    record = self.get(existing)
                    if record is not None:
                        return record, True
                # Stale index: the job was GC'd or the winner crashed
                # before writing it — fall through and re-point it.
        job_id = "j-" + secrets.token_hex(8)
        job_dir = self.job_dir(job_id)
        self.checkpoint_dir(job_id).mkdir(parents=True, exist_ok=True)
        now = self._clock()
        header = json.dumps(
            {"format": JOB_JOURNAL_FORMAT, "job_id": job_id}, sort_keys=True
        )
        submitted = {
            "event": "submitted",
            "ts": now,
            "job_id": job_id,
            "kind": kind,
            "params": params,
            "idempotency_key": idempotency_key,
            "deadline_s": deadline_s,
            "ttl_s": ttl_s,
            "max_attempts": max_attempts,
        }
        submitted["crc"] = _record_crc({k: v for k, v in submitted.items()})
        # The journal appears whole (header + submission) or not at all.
        atomic_write_text(
            self.events_path(job_id),
            header + "\n" + json.dumps(submitted, sort_keys=True) + "\n",
        )
        if index_path is not None:
            atomic_write_text(
                index_path,
                json.dumps(
                    {"job_id": job_id, "key": idempotency_key}, sort_keys=True
                )
                + "\n",
            )
        record = self.get(job_id)
        assert record is not None
        return record, False

    @staticmethod
    def _claim_index(path: Path) -> bool:
        """Win the ``O_EXCL`` race to own one idempotency key, or lose it."""
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644))
        except FileExistsError:
            return False
        return True

    @staticmethod
    def _read_index(path: Path) -> "str | None":
        """Read the key's job id, briefly waiting out a winner mid-write."""
        for _ in range(100):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                payload = None
            if isinstance(payload, dict) and isinstance(payload.get("job_id"), str):
                return payload["job_id"]
            time.sleep(0.01)
        return None

    # -- journal reads and appends ---------------------------------------

    def get(self, job_id: str) -> "JobRecord | None":
        """Fold one job's journal into its current record; None if gone."""
        path = self.events_path(job_id)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(header, dict) or header.get("format") != JOB_JOURNAL_FORMAT:
            return None
        events = [event for event in map(_decode_event, lines[1:]) if event is not None]
        record = fold_events(events)
        if record is not None and self.cancel_flag(job_id).exists():
            record.cancel_requested = True
        return record

    def list_jobs(
        self, *, state: "str | None" = None, kind: "str | None" = None
    ) -> "list[JobRecord]":
        """Every job's record, oldest submission first, optionally filtered."""
        records = []
        try:
            entries = sorted(self.jobs_root.iterdir())
        except OSError:
            return []
        for entry in entries:
            record = self.get(entry.name)
            if record is None:
                continue
            if state is not None and record.state != state:
                continue
            if kind is not None and record.kind != kind:
                continue
            records.append(record)
        records.sort(key=lambda r: (r.created_at, r.job_id))
        return records

    def append_event(self, job_id: str, event: str, **fields: Any) -> None:
        """Append one CRC'd lifecycle record, fsync'd before returning.

        The whole line goes down in a single ``write(2)`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (a canceller in
        one worker, the runner in another) interleave whole records,
        never bytes.
        """
        record: dict[str, Any] = {"event": event, "ts": self._clock(), **fields}
        record["crc"] = _record_crc(record)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(self.events_path(job_id), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- execution ownership ---------------------------------------------

    def claim(self, job_id: str) -> "_JobClaim | None":
        """Try to own the job's execution; ``None`` when already owned."""
        claim = _JobClaim(self.job_dir(job_id) / "claim.lock")
        try:
            acquired = claim.acquire()
        except OSError:
            return None  # job dir GC'd underneath us
        return claim if acquired else None

    def request_cancel(self, job_id: str) -> "JobRecord | None":
        """Ask a job to stop; immediate for unclaimed jobs, cooperative else.

        The cancel flag is visible to whichever process owns the claim
        (checked between sweep points). When nobody owns it — queued, or
        orphaned by a dead owner — this call claims it and finalises the
        cancellation on the spot.
        """
        record = self.get(job_id)
        if record is None or record.terminal:
            return record
        atomic_write_text(self.cancel_flag(job_id), "cancelled\n")
        claim = self.claim(job_id)
        if claim is None:
            self.append_event(job_id, "cancel_requested")
            return self.get(job_id)
        try:
            fresh = self.get(job_id)
            if fresh is not None and not fresh.terminal:
                self.append_event(job_id, "cancelled")
                _CANCELLED.inc()
        finally:
            claim.release()
        return self.get(job_id)

    # -- results ---------------------------------------------------------

    def write_result(self, job_id: str, payload: "dict[str, Any]") -> None:
        """Atomically persist the result artifact (byte-stable JSON)."""
        from repro.serve.validation import stable_json

        atomic_write_bytes(self.result_path(job_id), stable_json(payload))

    def read_result(self, job_id: str) -> "dict[str, Any] | None":
        """Load the result artifact; ``None`` when absent or unreadable."""
        try:
            return json.loads(self.result_path(job_id).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    # -- TTL garbage collection ------------------------------------------

    def gc(self) -> int:
        """Remove terminal jobs past their TTL (journal, artifacts, all).

        Deletion happens under the job's claim so a job cannot be
        collected while a runner still owns it; stale idempotency
        indexes pointing at collected jobs are pruned afterwards.
        """
        removed = 0
        now = self._clock()
        for record in self.list_jobs():
            if not record.terminal or record.finished_at is None:
                continue
            if now - record.finished_at < record.ttl_s:
                continue
            claim = self.claim(record.job_id)
            if claim is None:
                continue
            try:
                shutil.rmtree(self.job_dir(record.job_id), ignore_errors=True)
                removed += 1
            finally:
                claim.release()
        if removed:
            for index in self.index_root.glob("*.json"):
                job_id = self._read_index_fast(index)
                if job_id is not None and not self.events_path(job_id).exists():
                    index.unlink(missing_ok=True)
        return removed

    @staticmethod
    def _read_index_fast(path: Path) -> "str | None":
        """One-shot index read for GC (no winner-wait spin)."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        job_id = payload.get("job_id") if isinstance(payload, dict) else None
        return job_id if isinstance(job_id, str) else None

    # -- observability ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The backlog view ``/v1/readyz`` serves under its ``jobs`` key.

        Because every pre-fork worker shares this store, any worker's
        stats are already fleet-wide — no bus aggregation needed.
        """
        tallies = {state: 0 for state in JOB_STATES}
        oldest_queued: "float | None" = None
        for record in self.list_jobs():
            tallies[record.state] = tallies.get(record.state, 0) + 1
            if record.state == "queued":
                if oldest_queued is None or record.created_at < oldest_queued:
                    oldest_queued = record.created_at
        return {
            "queued": tallies["queued"],
            "running": tallies["running"],
            "states": tallies,
            "oldest_queued_age_s": (
                None
                if oldest_queued is None
                else round(max(self._clock() - oldest_queued, 0.0), 3)
            ),
        }


# -- job kinds -------------------------------------------------------------


@dataclass(frozen=True)
class JobKind:
    """One registered job type: a validator and a runner.

    ``validate`` maps raw string parameters (query/body fields) onto a
    normalised JSON-typed dict — journalled verbatim, so a crash-resumed
    execution sees exactly the parameters the original validated.
    ``run(params, context)`` produces the JSON result document; it must
    be a pure function of ``params`` (given the checkpoint journal) for
    the byte-identical resume contract to hold.
    """

    name: str
    summary: str
    validate: Callable[[Mapping[str, str]], dict[str, Any]]
    run: Callable[[dict[str, Any], "JobContext"], dict[str, Any]]


_JOB_KINDS: dict[str, JobKind] = {}


def register_job_kind(kind: JobKind, *, replace: bool = False) -> None:
    """Add a kind to the process-wide registry (roadmap item 2's hook)."""
    if not replace and kind.name in _JOB_KINDS:
        raise ValueError(f"job kind {kind.name!r} is already registered")
    _JOB_KINDS[kind.name] = kind


def job_kinds() -> tuple[str, ...]:
    """Every registered kind name, sorted."""
    return tuple(sorted(_JOB_KINDS))


def get_job_kind(name: str) -> JobKind:
    """Look up a registered kind; raises ``KeyError`` when unknown."""
    return _JOB_KINDS[name]


class JobContext:
    """What a running job kind may touch: checkpoints and checkpoints only.

    The context threads the job's cooperative obligations — cancel
    flag, drain signal, wall-clock deadline — through every sweep point
    via :meth:`heartbeat`, and owns the per-job checkpoint directory
    that makes a SIGKILLed execution resumable.
    """

    def __init__(
        self,
        record: JobRecord,
        store: JobStore,
        *,
        drain: "threading.Event | None" = None,
        clock: Callable[[], float] = time.time,
    ):
        self.job_id = record.job_id
        self.params = record.params
        self._store = store
        self._drain = drain if drain is not None else threading.Event()
        self._clock = clock
        self._deadline_at = (
            record.created_at + record.deadline_s if record.deadline_s > 0 else None
        )

    @property
    def checkpoint_dir(self) -> Path:
        """The job's private checkpoint directory (created on demand)."""
        path = self._store.checkpoint_dir(self.job_id)
        path.mkdir(parents=True, exist_ok=True)
        return path

    def heartbeat(self) -> None:
        """The per-point checkpoint: raises when the job must stop now."""
        if self._drain.is_set():
            raise _JobInterrupted(self.job_id)
        if self._store.cancel_flag(self.job_id).exists():
            raise _JobCancelled(self.job_id)
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            raise _JobExpired(self.job_id)

    def run_sweep(
        self,
        name: str,
        fn: Callable[[Any], Any],
        points: "list[Any]",
        *,
        spec: "dict[str, Any]",
        throttle_s: float = 0.0,
    ) -> list[Any]:
        """Evaluate a checkpointed sweep with cooperative interruption.

        Every point is journalled as it completes (fsync'd), so however
        this execution ends — crash, cancel, drain, deadline — the next
        attempt restores the finished points bit-identically and only
        computes the remainder. ``throttle_s`` sleeps before each
        *fresh* point (restored points pay nothing): a chaos/testing aid
        that shapes scheduling, never values.
        """

        def guarded(point: Any) -> Any:
            self.heartbeat()
            if throttle_s > 0.0:
                time.sleep(throttle_s)
            return fn(point)

        checkpoint = SweepCheckpoint.open(
            name, spec, directory=str(self.checkpoint_dir)
        )
        try:
            result = sweep(guarded, points, executor="serial", checkpoint=checkpoint)
        finally:
            checkpoint.close()
        return list(result.values)


# -- built-in kinds --------------------------------------------------------


def _validate_survey_costs(params: Mapping[str, str]) -> dict[str, Any]:
    """Validate ``survey-costs`` parameters (the async survey workload)."""
    require_known(params, ("n", "throttle"))
    return {
        "n": int_field(params, "n", default=16, minimum=1, maximum=MAX_DESIGN_N),
        "throttle": float_field(
            params, "throttle", default=0.0, minimum=0.0, maximum=5.0
        ),
    }


def _run_survey_costs(params: "dict[str, Any]", context: JobContext) -> dict[str, Any]:
    """Price the 25-machine survey through a checkpointed serial sweep."""
    from repro.analysis.survey_costs import cost_point
    from repro.registry.architectures import all_architectures

    records = list(all_architectures())
    n = int(params["n"])
    worker = functools.partial(cost_point, default_n=n, cache=None)
    points = context.run_sweep(
        "survey-costs",
        worker,
        records,
        spec={"default_n": n, "records": [record.name for record in records]},
        throttle_s=float(params.get("throttle", 0.0)),
    )
    rows = [
        {
            "name": point.name,
            "class": point.taxonomic_name,
            "flexibility": point.flexibility,
            "n_effective": point.n_effective,
            "area_ge": point.area_ge,
            "config_bits": point.config_bits,
            "energy_per_op_pj": point.energy_per_op_pj,
            "reconfig_cycles": point.reconfig_cycles,
        }
        for point in points
    ]
    return {"kind": "survey-costs", "default_n": n, "count": len(rows), "points": rows}


def _validate_population(params: Mapping[str, str]) -> dict[str, Any]:
    """Validate ``population`` parameters (generation + occupancy analytics)."""
    from repro.registry.populations import POPULATION_MODES

    require_known(params, ("size", "seed", "mode", "max-n", "chunk", "throttle"))
    return {
        "size": int_field(params, "size", default=1024, minimum=1, maximum=1_000_000),
        "seed": int_field(params, "seed", default=0, minimum=0),
        "mode": choice_field(params, "mode", POPULATION_MODES, default="stratified"),
        "max_n": int_field(params, "max-n", default=256, minimum=2, maximum=4096),
        "chunk": int_field(params, "chunk", default=512, minimum=1, maximum=65536),
        "throttle": float_field(
            params, "throttle", default=0.0, minimum=0.0, maximum=5.0
        ),
    }


def _population_chunk(
    index: int, *, size: int, chunk: int, seed: int, mode: str, max_n: int
) -> dict[int, int]:
    """Class occupancy of one seed-offset population chunk (pure)."""
    from repro.registry.populations import (
        PopulationSpec,
        class_occupancy,
        generate_signatures,
    )

    count = min(chunk, size - index * chunk)
    spec = PopulationSpec(size=count, seed=seed + index, mode=mode, max_n=max_n)
    return class_occupancy(generate_signatures(spec))


def _run_population(params: "dict[str, Any]", context: JobContext) -> dict[str, Any]:
    """Generate a chunked synthetic population and fold its occupancy.

    Each chunk is an independent seed-offset
    :class:`~repro.registry.populations.PopulationSpec`, so a chunk's
    occupancy is a pure function of ``(params, chunk index)`` — the
    property that makes the per-chunk checkpoint journal resumable and
    the merged analytics deterministic.
    """
    size, chunk = int(params["size"]), int(params["chunk"])
    indices = list(range((size + chunk - 1) // chunk))
    worker = functools.partial(
        _population_chunk,
        size=size,
        chunk=chunk,
        seed=int(params["seed"]),
        mode=str(params["mode"]),
        max_n=int(params["max_n"]),
    )
    spec = {key: params[key] for key in ("size", "seed", "mode", "max_n", "chunk")}
    chunks = context.run_sweep(
        "population",
        worker,
        indices,
        spec=spec,
        throttle_s=float(params.get("throttle", 0.0)),
    )
    occupancy: dict[str, int] = {}
    for counts in chunks:
        for serial, count in counts.items():
            key = str(serial)
            occupancy[key] = occupancy.get(key, 0) + count
    return {
        "kind": "population",
        "size": size,
        "seed": int(params["seed"]),
        "mode": str(params["mode"]),
        "chunks": len(indices),
        "classes": len(occupancy),
        "total": sum(occupancy.values()),
        "occupancy": occupancy,
    }


register_job_kind(
    JobKind(
        name="survey-costs",
        summary="price the 25 surveyed architectures (async /v1/survey?costs=true)",
        validate=_validate_survey_costs,
        run=_run_survey_costs,
    )
)
register_job_kind(
    JobKind(
        name="population",
        summary="generate a synthetic signature population and its class occupancy",
        validate=_validate_population,
        run=_run_population,
    )
)


# -- the bounded runner ----------------------------------------------------


class JobManager:
    """The bounded job runner: claims, executes, retries, GCs, drains.

    ``runners`` daemon threads loop over the shared store: claim the
    oldest eligible job (queued and due, or ``running`` with a free
    claim — an orphan whose owner died), execute its kind, journal the
    outcome. The scan loop doubles as the TTL garbage collector and the
    gauge refresher. :meth:`drain` is the SIGTERM path: running jobs are
    interrupted at their next heartbeat, journalled back to ``queued``
    (their completed points already fsync'd) and picked up by the next
    process to open the store.
    """

    def __init__(
        self,
        directory: "str | os.PathLike",
        *,
        runners: int = 2,
        poll_s: float = 0.25,
        default_deadline_s: float = DEFAULT_DEADLINE_S,
        default_ttl_s: float = DEFAULT_TTL_S,
        default_max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry: "RetryPolicy | None" = None,
        clock: Callable[[], float] = time.time,
    ):
        if runners < 1:
            raise ValueError(f"runners must be >= 1, got {runners}")
        if poll_s <= 0:
            raise ValueError(f"poll_s must be positive, got {poll_s}")
        self.store = JobStore(directory, clock=clock)
        self.runners = runners
        self._poll_s = poll_s
        self._defaults = {
            "deadline_s": default_deadline_s,
            "ttl_s": default_ttl_s,
            "max_attempts": default_max_attempts,
        }
        self._retry = retry if retry is not None else RetryPolicy(backoff_s=0.1, seed=0)
        self._clock = clock
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._drain_event = threading.Event()
        self._threads = [
            threading.Thread(target=self._run_loop, name=f"job-runner-{i}", daemon=True)
            for i in range(runners)
        ]
        for thread in self._threads:
            thread.start()

    # -- the public surface ----------------------------------------------

    def submit(
        self,
        kind_name: str,
        params: Mapping[str, str],
        *,
        idempotency_key: "str | None" = None,
        deadline_s: "float | None" = None,
        ttl_s: "float | None" = None,
        max_attempts: "int | None" = None,
    ) -> "tuple[JobRecord, bool]":
        """Validate and journal one submission; returns (record, deduped)."""
        kind = get_job_kind(kind_name)
        normalized = kind.validate(params)
        record, deduped = self.store.submit(
            kind_name,
            normalized,
            idempotency_key=idempotency_key,
            deadline_s=self._defaults["deadline_s"] if deadline_s is None else deadline_s,
            ttl_s=self._defaults["ttl_s"] if ttl_s is None else ttl_s,
            max_attempts=(
                self._defaults["max_attempts"] if max_attempts is None else max_attempts
            ),
        )
        if deduped:
            _DEDUPED.inc()
        else:
            _SUBMITTED.inc()
            self._wake.set()
        return record, deduped

    def cancel(self, job_id: str) -> "JobRecord | None":
        """Request cancellation; immediate when no runner owns the job."""
        return self.store.request_cancel(job_id)

    def stats(self) -> dict[str, Any]:
        """Store-wide backlog stats plus this process's runner bound."""
        return {**self.store.stats(), "runners": self.runners}

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Stop claiming, interrupt running jobs, join the runner threads.

        Running jobs observe the drain at their next heartbeat and are
        journalled back to ``queued`` — every point they completed is
        already on disk, so the next opener resumes, not restarts.
        """
        self._drain_event.set()
        self._stop.set()
        self._wake.set()
        clean = True
        for thread in self._threads:
            thread.join(timeout_s)
            clean = clean and not thread.is_alive()
        return clean

    # -- the runner loop -------------------------------------------------

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            claimed = self._claim_next()
            if claimed is None:
                try:
                    removed = self.store.gc()
                except OSError:  # pragma: no cover - GC is best-effort
                    removed = 0
                if removed:
                    _GC_REMOVED.inc(removed)
                self._refresh_gauges()
                self._wake.wait(timeout=self._poll_s)
                self._wake.clear()
                continue
            record, claim = claimed
            try:
                self._execute(record)
            finally:
                claim.release()

    def _claim_next(self) -> "tuple[JobRecord, _JobClaim] | None":
        """The oldest eligible job we can own, re-validated under its claim."""
        if self._drain_event.is_set():
            return None
        now = self._clock()
        for record in self.store.list_jobs():
            if record.state == "queued":
                if record.not_before is not None and record.not_before > now:
                    continue
            elif record.state != "running":
                continue  # terminal, or a state we never execute
            claim = self.store.claim(record.job_id)
            if claim is None:
                continue
            fresh = self.store.get(record.job_id)
            if (
                fresh is None
                or fresh.terminal
                or (
                    fresh.state == "queued"
                    and fresh.not_before is not None
                    and fresh.not_before > self._clock()
                )
            ):
                claim.release()
                continue
            if fresh.state == "running":
                # Free claim + running state = the previous owner died
                # mid-execution; we are adopting its checkpointed work.
                _RESUMED.inc()
            return fresh, claim

        return None

    def _execute(self, record: JobRecord) -> None:
        """Run one claimed job to a journalled outcome."""
        job_id = record.job_id
        if record.cancel_requested:
            self.store.append_event(job_id, "cancelled")
            _CANCELLED.inc()
            return
        self.store.append_event(job_id, "started")
        _STARTED.inc()
        self._refresh_gauges()
        fresh = self.store.get(job_id)
        if fresh is None:
            return
        context = JobContext(
            fresh, self.store, drain=self._drain_event, clock=self._clock
        )
        try:
            context.heartbeat()
            kind = get_job_kind(fresh.kind)
            payload = kind.run(fresh.params, context)
        except _JobCancelled:
            self.store.append_event(job_id, "cancelled")
            _CANCELLED.inc()
        except _JobInterrupted:
            self.store.append_event(job_id, "interrupted")
            _INTERRUPTED.inc()
        except _JobExpired:
            self.store.append_event(
                job_id, "expired", error=f"deadline of {fresh.deadline_s:g}s exceeded"
            )
            _EXPIRED.inc()
        except KeyError:
            self.store.append_event(
                job_id, "failed", error=f"unknown job kind {fresh.kind!r}"
            )
            _FAILED.inc()
        except Exception as error:  # noqa: BLE001 - journalled, never raised
            self._fail_or_retry(fresh, error)
        else:
            # Artifact before verdict: a crash between the two re-runs
            # the job and atomically rewrites identical bytes.
            self.store.write_result(job_id, payload)
            self.store.append_event(job_id, "succeeded")
            _SUCCEEDED.inc()
            _LATENCY.observe(max(self._clock() - fresh.created_at, 0.0))
        self._refresh_gauges()

    def _fail_or_retry(self, record: JobRecord, error: Exception) -> None:
        """Journal a failure: seeded-backoff requeue when transient."""
        transient = isinstance(
            error, (TransientJobError, FaultError, OSError, TimeoutError)
        )
        if transient and record.attempts < record.max_attempts:
            delay = backoff_delay(record.job_id, record.attempts, policy=self._retry)
            self.store.append_event(
                record.job_id,
                "retrying",
                not_before=self._clock() + delay,
                error=repr(error),
            )
            _RETRIES.inc()
            return
        self.store.append_event(record.job_id, "failed", error=repr(error))
        _FAILED.inc()

    def _refresh_gauges(self) -> None:
        stats = self.store.stats()
        _QUEUED_G.set(stats["queued"])
        _RUNNING_G.set(stats["running"])


# -- the REST surface ------------------------------------------------------

#: Submission parameters the API consumes before kind validation sees
#: the rest.
_RESERVED_SUBMIT_PARAMS = ("kind", "idempotency-key", "deadline", "ttl", "max-attempts")


class JobsApi:
    """The ``/v1/jobs`` endpoint handlers over one :class:`JobManager`."""

    def __init__(self, manager: JobManager):
        self.manager = manager

    def register(self, router: Router) -> None:
        """Mount the job routes (exact list/submit, prefixed poll/cancel)."""
        router.add("POST", "/v1/jobs", self.handle_submit)
        router.add("GET", "/v1/jobs", self.handle_list)
        router.add_prefix("GET", "/v1/jobs", self.handle_get)
        router.add_prefix("DELETE", "/v1/jobs", self.handle_cancel)

    # -- handlers --------------------------------------------------------

    def handle_submit(self, request: Request) -> Response:
        """``POST /v1/jobs`` — submit (or idempotently re-submit) a job."""
        params = dict(request.params)
        kind_name = string_field(params, "kind", required=True)
        idempotency_key = string_field(params, "idempotency-key")
        deadline_s = float_field(params, "deadline", minimum=0.1, maximum=86400.0)
        ttl_s = float_field(params, "ttl", minimum=0.0, maximum=604800.0)
        max_attempts = int_field(params, "max-attempts", minimum=1, maximum=10)
        for reserved in _RESERVED_SUBMIT_PARAMS:
            params.pop(reserved, None)
        try:
            get_job_kind(kind_name)
        except KeyError:
            raise BadRequestError(
                f"unknown job kind {kind_name!r}; "
                f"registered kinds: {', '.join(job_kinds())}"
            ) from None
        request.check_deadline("validating the submission")
        record, deduplicated = self.manager.submit(
            kind_name,
            params,
            idempotency_key=idempotency_key,
            deadline_s=deadline_s,
            ttl_s=ttl_s,
            max_attempts=max_attempts,
        )
        return Response(
            status=200 if deduplicated else 202,
            payload={"job": record.payload(), "deduplicated": deduplicated},
        )

    def handle_list(self, request: Request) -> Response:
        """``GET /v1/jobs`` — every job, filterable by state and kind."""
        params = request.params
        require_known(params, ("state", "kind"))
        state = choice_field(params, "state", JOB_STATES)
        kind = string_field(params, "kind")
        records = self.manager.store.list_jobs(state=state, kind=kind)
        return Response(
            payload={
                "count": len(records),
                "jobs": [record.payload() for record in records],
            }
        )

    def handle_get(self, request: Request) -> Response:
        """``GET /v1/jobs/{id}`` poll and ``GET /v1/jobs/{id}/result``."""
        job_id, rest = self._split(request.path)
        if rest == "":
            record = self._record_or_404(job_id)
            return Response(payload={"job": record.payload()})
        if rest == "result":
            return self._handle_result(job_id)
        raise NotFoundError(f"no such endpoint: {request.path}")

    def _handle_result(self, job_id: str) -> Response:
        record = self._record_or_404(job_id)
        if record.state == "succeeded":
            result = self.manager.store.read_result(job_id)
            if result is None:
                raise ConflictError(
                    f"job {job_id} succeeded but its result artifact is gone "
                    "(collected or corrupt)"
                )
            return Response(payload=result)
        if record.terminal:
            raise ConflictError(
                f"job {job_id} ended in state {record.state!r}"
                + (f": {record.error}" if record.error else "")
            )
        raise ConflictError(
            f"job {job_id} is {record.state}; the result is not ready",
            retry_after_s=1.0,
        )

    def handle_cancel(self, request: Request) -> Response:
        """``DELETE /v1/jobs/{id}`` — request cooperative cancellation."""
        job_id, rest = self._split(request.path)
        if rest != "":
            raise NotFoundError(f"no such endpoint: {request.path}")
        record = self.manager.cancel(job_id)
        if record is None:
            raise NotFoundError(f"no such job: {job_id}")
        return Response(payload={"job": record.payload()})

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _split(path: str) -> "tuple[str, str]":
        """``/v1/jobs/{id}[/suffix]`` → ``(id, suffix)``."""
        remainder = path[len("/v1/jobs/"):]
        job_id, _, rest = remainder.partition("/")
        if not job_id:
            raise NotFoundError(f"no such endpoint: {path}")
        return job_id, rest

    def _record_or_404(self, job_id: str) -> JobRecord:
        record = self.manager.store.get(job_id)
        if record is None:
            raise NotFoundError(f"no such job: {job_id}")
        return record
