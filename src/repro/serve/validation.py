"""Strict request validation: every parameter typed, bounded and named.

Handlers never touch raw query strings or JSON bodies; they go through
these helpers, which enforce three properties the error-taxonomy
contract depends on:

* a bad value raises :class:`~repro.serve.errors.BadRequestError`
  *naming the offending field* — clients can fix what they sent;
* unknown parameters are rejected (a typo'd ``&dps=`` must not silently
  classify a different machine);
* bounds are explicit, so a hostile ``n=10**9`` cannot buy unbounded
  compute with one request.
"""

from __future__ import annotations

import json
from typing import Any, Mapping
from urllib.parse import parse_qsl

from repro.serve.errors import BadRequestError

__all__ = [
    "MAX_BATCH_ITEMS",
    "MAX_BODY_BYTES",
    "MAX_DESIGN_N",
    "parse_query",
    "parse_json_body",
    "parse_body",
    "require_known",
    "string_field",
    "int_field",
    "float_field",
    "bool_field",
    "choice_field",
    "stable_json",
]

#: Request bodies above this size are rejected before parsing.
MAX_BODY_BYTES = 64 * 1024

#: Upper bound for the ``n`` design-size parameter — large enough for
#: any surveyed architecture, small enough that one request stays cheap.
MAX_DESIGN_N = 4096

#: Upper bound on batch ``items`` per request — one admission token buys
#: at most this much work, keeping batches inside the request deadline.
MAX_BATCH_ITEMS = 256


def parse_query(raw: str) -> dict[str, str]:
    """Decode a query string into a flat dict; repeats are rejected."""
    params: dict[str, str] = {}
    for key, value in parse_qsl(raw, keep_blank_values=True):
        if key in params:
            raise BadRequestError(f"parameter {key!r} given more than once")
        params[key] = value
    return params


def _coerce_fields(decoded: dict, *, where: str = "request body") -> dict[str, str]:
    """Coerce one JSON object's scalar fields into string parameters."""
    params: dict[str, str] = {}
    for key, value in decoded.items():
        if not isinstance(key, str):
            raise BadRequestError(f"{where} keys must be strings")
        if isinstance(value, bool) or not isinstance(value, (str, int, float)):
            raise BadRequestError(
                f"field {key!r} must be a string or number, got {type(value).__name__}"
            )
        params[key] = str(value)
    return params


def _decode_object(body: bytes) -> dict:
    """Decode a request body into the top-level JSON object, strictly."""
    if len(body) > MAX_BODY_BYTES:
        raise BadRequestError(
            f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    try:
        decoded = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BadRequestError(f"request body is not valid JSON: {error}") from None
    if not isinstance(decoded, dict):
        raise BadRequestError("request body must be a JSON object")
    return decoded


def parse_json_body(body: bytes) -> dict[str, str]:
    """Decode a JSON object body into string-valued parameters."""
    return _coerce_fields(_decode_object(body))


def parse_body(body: bytes) -> "tuple[dict[str, str], tuple[dict[str, str], ...] | None]":
    """Decode a body as flat fields *or* a batch ``items`` array.

    Returns ``(params, None)`` for an ordinary single-request body, or
    ``({}, items)`` when the body is ``{"items": [...]}`` — each item
    validated with exactly the rules a single request's body gets, so a
    batch of one is indistinguishable from the single-request path.
    """
    decoded = _decode_object(body)
    if "items" not in decoded:
        return _coerce_fields(decoded), None
    extras = sorted(set(decoded) - {"items"})
    if extras:
        raise BadRequestError(
            f"a batch body accepts only 'items'; also got "
            f"{', '.join(repr(name) for name in extras)}"
        )
    raw_items = decoded["items"]
    if not isinstance(raw_items, list):
        raise BadRequestError(
            f"'items' must be a JSON array, got {type(raw_items).__name__}"
        )
    if not raw_items:
        raise BadRequestError("'items' must contain at least one entry")
    if len(raw_items) > MAX_BATCH_ITEMS:
        raise BadRequestError(
            f"'items' holds {len(raw_items)} entries; the batch limit is {MAX_BATCH_ITEMS}"
        )
    items = []
    for index, item in enumerate(raw_items):
        if not isinstance(item, dict):
            raise BadRequestError(
                f"batch item {index} must be a JSON object, got {type(item).__name__}"
            )
        items.append(_coerce_fields(item, where=f"batch item {index}"))
    return {}, tuple(items)


def require_known(params: Mapping[str, str], allowed: "tuple[str, ...]") -> None:
    """Reject any parameter outside the endpoint's declared set."""
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise BadRequestError(
            f"unknown parameter(s) {', '.join(repr(name) for name in unknown)}; "
            f"expected one of: {', '.join(sorted(allowed))}"
        )


def string_field(
    params: Mapping[str, str],
    name: str,
    *,
    default: "str | None" = None,
    required: bool = False,
) -> "str | None":
    """A plain string parameter; ``required`` fields must be non-empty."""
    value = params.get(name)
    if value is None or value == "":
        if required:
            raise BadRequestError(f"missing required parameter {name!r}")
        return default
    return value


def int_field(
    params: Mapping[str, str],
    name: str,
    *,
    default: "int | None" = None,
    minimum: "int | None" = None,
    maximum: "int | None" = None,
) -> "int | None":
    """An integer parameter with inclusive bounds."""
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise BadRequestError(f"parameter {name!r} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise BadRequestError(f"parameter {name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise BadRequestError(f"parameter {name!r} must be <= {maximum}, got {value}")
    return value


def float_field(
    params: Mapping[str, str],
    name: str,
    *,
    default: "float | None" = None,
    minimum: "float | None" = None,
    maximum: "float | None" = None,
) -> "float | None":
    """A finite float parameter with inclusive bounds."""
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise BadRequestError(f"parameter {name!r} must be a number, got {raw!r}") from None
    if value != value or value in (float("inf"), float("-inf")):
        raise BadRequestError(f"parameter {name!r} must be finite, got {raw!r}")
    if minimum is not None and value < minimum:
        raise BadRequestError(f"parameter {name!r} must be >= {minimum:g}, got {value:g}")
    if maximum is not None and value > maximum:
        raise BadRequestError(f"parameter {name!r} must be <= {maximum:g}, got {value:g}")
    return value


def bool_field(params: Mapping[str, str], name: str, *, default: bool = False) -> bool:
    """A boolean parameter: true/false, 1/0, yes/no (case-insensitive)."""
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    token = raw.strip().lower()
    if token in ("1", "true", "yes", "on"):
        return True
    if token in ("0", "false", "no", "off"):
        return False
    raise BadRequestError(f"parameter {name!r} must be a boolean, got {raw!r}")


def choice_field(
    params: Mapping[str, str],
    name: str,
    choices: "tuple[str, ...]",
    *,
    default: "str | None" = None,
) -> "str | None":
    """A parameter restricted to an explicit value set."""
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    if raw not in choices:
        raise BadRequestError(
            f"parameter {name!r} must be one of {', '.join(choices)}; got {raw!r}"
        )
    return raw


def stable_json(payload: Any) -> bytes:
    """Byte-stable JSON: sorted keys, compact separators, trailing newline.

    Every 2xx and error body goes through this one encoder, which is
    what makes responses reproducible byte-for-byte across runs — the
    service-side analogue of the CLI's byte-identical artifacts.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")
