"""A fine-grained LUT fabric — the physical substrate of the USP class.

Every cell is a ``k``-input lookup table with an optionally registered
output, and — matching the taxonomy's ``vxv`` cells — any cell may source
any other cell's output, any external input, or a constant. Cells carry
no fixed role: configuration alone decides whether a region behaves as an
IP, a DP or a memory, which is precisely the paper's universal-flow
argument.

The simulation is genuinely gate-level: combinational cells settle in
topological order each cycle, then registered cells latch. Configuration
cost is counted per cell (truth table + input-select words), making the
USP's configuration overhead a measured number instead of an estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.machine.base import traced_run

__all__ = ["Source", "CellConfig", "LutFabric"]

#: A cell-input source: ("cell", index) | ("input", name) | ("const", 0 or 1)
Source = tuple[str, "int | str"]


def _validate_source(source: Source) -> None:
    if not isinstance(source, tuple) or len(source) != 2:
        raise ConfigurationError(f"malformed source {source!r}")
    kind, ref = source
    if kind == "cell":
        if not isinstance(ref, int) or ref < 0:
            raise ConfigurationError(f"bad cell reference {ref!r}")
    elif kind == "input":
        if not isinstance(ref, str) or not ref:
            raise ConfigurationError(f"bad input reference {ref!r}")
    elif kind == "const":
        if ref not in (0, 1):
            raise ConfigurationError(f"const source must be 0 or 1, got {ref!r}")
    else:
        raise ConfigurationError(f"unknown source kind {kind!r}")


@dataclass(frozen=True, slots=True)
class CellConfig:
    """Configuration of one LUT cell.

    ``truth_table`` is the function as an integer: output bit for input
    pattern ``p`` is ``(truth_table >> p) & 1`` where ``p`` packs input 0
    into the least-significant position.
    """

    sources: tuple[Source, ...]
    truth_table: int
    registered: bool = False

    def __post_init__(self) -> None:
        if not self.sources:
            raise ConfigurationError("a cell needs at least one input source")
        for source in self.sources:
            _validate_source(source)
        patterns = 1 << len(self.sources)
        if not 0 <= self.truth_table < (1 << patterns):
            raise ConfigurationError(
                f"truth table {self.truth_table:#x} exceeds {patterns} patterns"
            )


class LutFabric:
    """``n_cells`` k-input LUTs over a global (vxv) routing fabric."""

    def __init__(self, n_cells: int, *, k: int = 4):
        if n_cells <= 0:
            raise ConfigurationError("fabric needs at least one cell")
        if not 1 <= k <= 6:
            raise ConfigurationError("LUT arity must lie in 1..6")
        self.n_cells = n_cells
        self.k = k
        self._configs: dict[int, CellConfig] = {}
        self._outputs: dict[str, int] = {}
        self._state: list[int] = [0] * n_cells
        self._order: list[int] | None = None
        self._input_names: set[str] = set()

    # -- configuration -----------------------------------------------------

    def configure_cell(self, index: int, config: CellConfig) -> None:
        """Program cell ``index`` with ``config``, validating sources and arity."""
        if not 0 <= index < self.n_cells:
            raise ConfigurationError(
                f"cell index {index} outside fabric of {self.n_cells} cells"
            )
        if len(config.sources) > self.k:
            raise ConfigurationError(
                f"cell {index}: {len(config.sources)} sources exceed k={self.k}"
            )
        for source in config.sources:
            kind, ref = source
            if kind == "cell" and ref >= self.n_cells:
                raise ConfigurationError(
                    f"cell {index} sources missing cell {ref}"
                )
            if kind == "input":
                self._input_names.add(ref)
        self._configs[index] = config
        self._order = None

    def name_output(self, name: str, cell: int) -> None:
        """Expose a cell's output under a symbolic name."""
        if cell not in self._configs:
            raise ConfigurationError(f"cannot expose unconfigured cell {cell}")
        self._outputs[name] = cell

    def clear(self) -> None:
        """Wipe the whole fabric configuration."""
        self._configs.clear()
        self._outputs.clear()
        self._state = [0] * self.n_cells
        self._order = None
        self._input_names.clear()

    @property
    def used_cells(self) -> int:
        """Number of cells currently configured."""
        return len(self._configs)

    @property
    def utilization(self) -> float:
        """Fraction of the fabric's cells currently configured."""
        return self.used_cells / self.n_cells

    @property
    def input_names(self) -> set[str]:
        """The external input names the configuration references."""
        return set(self._input_names)

    @property
    def output_names(self) -> tuple[str, ...]:
        """The declared output names."""
        return tuple(self._outputs)

    # -- cost accounting ------------------------------------------------------

    def config_bits_per_cell(self) -> int:
        """Truth table + per-input source select + register flag."""
        source_space = self.n_cells + len(self._input_names) + 2  # cells+inputs+consts
        select = self.k * max(1, math.ceil(math.log2(max(source_space, 2))))
        return (1 << self.k) + select + 1

    def config_bits(self) -> int:
        """Total configuration bits of the *used* portion of the fabric."""
        return self.used_cells * self.config_bits_per_cell()

    def config_bits_full(self) -> int:
        """Bits to program the whole fabric (what a bitstream carries)."""
        return self.n_cells * self.config_bits_per_cell()

    # -- evaluation ---------------------------------------------------------

    def _topological_order(self) -> list[int]:
        """Combinational evaluation order; registered outputs break cycles."""
        if self._order is not None:
            return self._order
        comb_deps: dict[int, list[int]] = {}
        for index, config in self._configs.items():
            if config.registered:
                continue  # evaluated too, but ordering handled as comb node
            deps = []
            for kind, ref in config.sources:
                if kind == "cell":
                    upstream = self._configs.get(ref)  # type: ignore[arg-type]
                    if upstream is not None and not upstream.registered:
                        deps.append(ref)
            comb_deps[index] = deps  # type: ignore[assignment]
        order: list[int] = []
        visiting: set[int] = set()
        done: set[int] = set()

        def visit(node: int) -> None:
            if node in done:
                return
            if node in visiting:
                raise ConfigurationError(
                    f"combinational loop through cell {node} (insert a "
                    "registered cell to break it)"
                )
            visiting.add(node)
            for dep in comb_deps.get(node, ()):
                visit(dep)
            visiting.discard(node)
            done.add(node)
            order.append(node)

        for node in comb_deps:
            visit(node)
        self._order = order
        return order

    def _source_value(
        self, source: Source, inputs: dict[str, int], values: list[int]
    ) -> int:
        kind, ref = source
        if kind == "const":
            return int(ref)
        if kind == "input":
            try:
                return inputs[ref] & 1  # type: ignore[index]
            except KeyError as exc:
                raise ConfigurationError(f"unbound fabric input {ref!r}") from exc
        return values[ref] & 1  # type: ignore[index]

    def _evaluate_cell(
        self, config: CellConfig, inputs: dict[str, int], values: list[int]
    ) -> int:
        pattern = 0
        for position, source in enumerate(config.sources):
            pattern |= self._source_value(source, inputs, values) << position
        return (config.truth_table >> pattern) & 1

    def step(self, inputs: "dict[str, int] | None" = None) -> dict[str, int]:
        """One clock cycle: settle combinational logic, latch registers.

        Returns the named outputs *after* the cycle. Registered cells see
        pre-cycle values of their sources (standard synchronous
        semantics).
        """
        bound = dict(inputs or {})
        values = list(self._state)
        # Combinational settle.
        for index in self._topological_order():
            config = self._configs[index]
            values[index] = self._evaluate_cell(config, bound, values)
        # Register latch: registered cells sample the settled values.
        next_state = list(values)
        for index, config in self._configs.items():
            if config.registered:
                next_state[index] = self._evaluate_cell(config, bound, values)
        self._state = next_state
        return {name: self._state[cell] for name, cell in self._outputs.items()}

    def peek(self, name: str) -> int:
        """Current value of a named output without advancing the clock."""
        try:
            return self._state[self._outputs[name]]
        except KeyError as exc:
            raise ConfigurationError(f"unknown output {name!r}") from exc

    @traced_run("fabric.run")
    def run(
        self,
        cycles: int,
        inputs: "dict[str, int] | None" = None,
    ) -> dict[str, int]:
        """Clock the fabric ``cycles`` times with constant inputs."""
        if cycles < 0:
            raise ConfigurationError("cycle count must be non-negative")
        outputs: dict[str, int] = {
            name: self._state[cell] for name, cell in self._outputs.items()
        }
        for _ in range(cycles):
            outputs = self.step(inputs)
        return outputs
