"""The instruction-flow uni-processor (IUP) — the Von Neumann machine.

One IP fetches from one IM and drives one DP over direct links (Table I
row 6). It executes the scalar core ISA and nothing else: programs using
lane, global-memory or message extensions are refused before execution
starts, demonstrating the flexibility floor of the IUP class.
"""

from __future__ import annotations

from repro.machine.base import Capability, ExecutionResult, check_capabilities, traced_run
from repro.machine.program import Program, required_capabilities
from repro.machine.scalar import ExtensionPort, ScalarCore

__all__ = ["Uniprocessor"]


class Uniprocessor:
    """IUP: a single scalar core behind a fetch-decode-execute loop."""

    def __init__(self, *, memory_size: int = 4096):
        self.memory_size = memory_size
        self.core = ScalarCore(core_id=0, memory_size=memory_size)
        self._port = ExtensionPort()  # refuses every extension

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        return {Capability.INSTRUCTION_EXECUTION}

    def reset(self) -> None:
        """Restore run state to the post-construction configuration."""
        self.core = ScalarCore(core_id=0, memory_size=self.memory_size)

    def load_memory(self, base: int, values: "list[int]") -> None:
        """Initialise the data memory before a run."""
        self.core.write_block(base, values)

    def read_memory(self, base: int, count: int) -> list[int]:
        """Read ``count`` words of data memory starting at ``base``."""
        return self.core.read_block(base, count)

    @traced_run("machine.run")
    def run(self, program: Program, *, max_cycles: int = 1_000_000) -> ExecutionResult:
        """Execute to HALT; one instruction per cycle."""
        check_capabilities(
            self.capabilities(), required_capabilities(program), machine="IUP"
        )
        cycles, executed = self.core.run_to_halt(
            program, self._port, max_cycles=max_cycles
        )
        return ExecutionResult(
            cycles=cycles,
            operations=executed,
            outputs={"registers": list(self.core.registers)},
            stats={"machine": "IUP", "program": program.name},
        )
