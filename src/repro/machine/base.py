"""Shared machine-model abstractions.

Every executable machine in this package — dataflow engines, the
uniprocessor, array processors, multiprocessors, spatial and universal
machines — reports its work through :class:`ExecutionResult` and declares
the structural capabilities it provides. Programs declare the
capabilities they *require*; the mismatch check is the operational form
of the paper's flexibility argument (§III-B): a machine can run a program
only when its class provides every capability the program needs.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import CapabilityError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["Capability", "ExecutionResult", "check_capabilities", "machine_label", "traced_run"]

# Always-on run accounting, shared by every machine class; per-run cost
# is three integer adds, so even benchmark-loop run() calls are safe.
_MACHINE_RUNS = _metrics.REGISTRY.counter("machine.runs", help="machine run() invocations")
_MACHINE_CYCLES = _metrics.REGISTRY.counter("machine.cycles", help="cycles retired across runs")
_MACHINE_OPS = _metrics.REGISTRY.counter("machine.operations", help="operations retired in runs")


class Capability(enum.Enum):
    """Structural abilities a machine class may or may not provide."""

    DATA_PARALLEL = "data-parallel lanes (multiple DPs under one IP)"
    LANE_SHUFFLE = "inter-lane data exchange (DP-DP switch)"
    GLOBAL_MEMORY = "access to any memory bank (DP-DM switch)"
    MESSAGE_PASSING = "inter-core messages (DP-DP switch across cores)"
    MULTIPLE_STREAMS = "independent instruction streams (multiple IPs)"
    IP_COMPOSITION = "fusing IPs into a wider issue unit (IP-IP link)"
    DATAFLOW_EXECUTION = "token-driven firing without an IP"
    INSTRUCTION_EXECUTION = "stored-program execution (an IP)"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ExecutionResult:
    """Outcome of running one program on one machine."""

    cycles: int
    operations: int
    outputs: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.operations < 0:
            raise ValueError("cycles and operations must be non-negative")

    @property
    def operations_per_cycle(self) -> float:
        """Achieved parallelism: mean operations retired per cycle."""
        return self.operations / self.cycles if self.cycles else 0.0

    def merge_stats(self, **extra: Any) -> "ExecutionResult":
        """Fold extra key/value pairs into ``stats`` and return ``self``."""
        self.stats.update(extra)
        return self


def machine_label(machine: Any) -> str:
    """Best human-readable identity for a machine instance.

    Prefers the sub-type label (``IAP-IV``), then a machine-level
    ``label`` attribute (the spatial machine), then the class name.
    """
    subtype = getattr(machine, "subtype", None)
    label = getattr(subtype, "label", None)
    if label is not None:
        return label
    label = getattr(machine, "label", None)
    if label is not None:
        return label
    return type(machine).__name__


def traced_run(span_name: str) -> "Callable[[Callable[..., Any]], Callable[..., Any]]":
    """Instrument a machine execution method with a span plus run counters.

    Wraps a bound method whose first argument is the machine. The span
    (named ``span_name``, e.g. ``machine.run``) carries the machine
    label and — when the method returns an :class:`ExecutionResult` —
    its retired cycle and operation counts. With tracing disabled the
    wrapper's cost is one flag check and the counter increments.
    """

    def decorate(fn: "Callable[..., Any]") -> "Callable[..., Any]":
        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            _MACHINE_RUNS.inc()
            if not _trace.GLOBAL_TRACER.enabled:
                result = fn(self, *args, **kwargs)
                if isinstance(result, ExecutionResult):
                    _MACHINE_CYCLES.inc(result.cycles)
                    _MACHINE_OPS.inc(result.operations)
                return result
            with _trace.span(span_name, machine=machine_label(self)) as run_span:
                result = fn(self, *args, **kwargs)
                if isinstance(result, ExecutionResult):
                    _MACHINE_CYCLES.inc(result.cycles)
                    _MACHINE_OPS.inc(result.operations)
                    run_span.set_attributes(
                        cycles=result.cycles, operations=result.operations
                    )
                return result

        return wrapper

    return decorate


def check_capabilities(
    provided: "set[Capability]", required: "set[Capability]", *, machine: str
) -> None:
    """Raise :class:`CapabilityError` listing every missing capability."""
    missing = required - provided
    if missing:
        detail = "; ".join(sorted(cap.value for cap in missing))
        raise CapabilityError(
            f"{machine} cannot run this program — missing: {detail}"
        )
