"""Shared machine-model abstractions.

Every executable machine in this package — dataflow engines, the
uniprocessor, array processors, multiprocessors, spatial and universal
machines — reports its work through :class:`ExecutionResult` and declares
the structural capabilities it provides. Programs declare the
capabilities they *require*; the mismatch check is the operational form
of the paper's flexibility argument (§III-B): a machine can run a program
only when its class provides every capability the program needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import CapabilityError

__all__ = ["Capability", "ExecutionResult", "check_capabilities"]


class Capability(enum.Enum):
    """Structural abilities a machine class may or may not provide."""

    DATA_PARALLEL = "data-parallel lanes (multiple DPs under one IP)"
    LANE_SHUFFLE = "inter-lane data exchange (DP-DP switch)"
    GLOBAL_MEMORY = "access to any memory bank (DP-DM switch)"
    MESSAGE_PASSING = "inter-core messages (DP-DP switch across cores)"
    MULTIPLE_STREAMS = "independent instruction streams (multiple IPs)"
    IP_COMPOSITION = "fusing IPs into a wider issue unit (IP-IP link)"
    DATAFLOW_EXECUTION = "token-driven firing without an IP"
    INSTRUCTION_EXECUTION = "stored-program execution (an IP)"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ExecutionResult:
    """Outcome of running one program on one machine."""

    cycles: int
    operations: int
    outputs: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.operations < 0:
            raise ValueError("cycles and operations must be non-negative")

    @property
    def operations_per_cycle(self) -> float:
        """Achieved parallelism: mean operations retired per cycle."""
        return self.operations / self.cycles if self.cycles else 0.0

    def merge_stats(self, **extra: Any) -> "ExecutionResult":
        self.stats.update(extra)
        return self


def check_capabilities(
    provided: "set[Capability]", required: "set[Capability]", *, machine: str
) -> None:
    """Raise :class:`CapabilityError` listing every missing capability."""
    missing = required - provided
    if missing:
        detail = "; ".join(sorted(cap.value for cap in missing))
        raise CapabilityError(
            f"{machine} cannot run this program — missing: {detail}"
        )
