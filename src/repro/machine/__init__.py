"""Executable machine models for the taxonomy's classes: token-driven
data-flow engines (DUP/DMP), the Von Neumann uni-processor (IUP), SIMD
array processors (IAP), MIMD multiprocessors (IMP), spatially-composable
processors (ISP) and the LUT-fabric universal machine (USP)."""

from repro.machine.array_processor import ArrayProcessor, ArraySubtype
from repro.machine.base import Capability, ExecutionResult, check_capabilities
from repro.machine.dataflow import (
    DataflowGraph,
    DataflowMachine,
    DataflowSubtype,
    DFNode,
    DFOp,
)
from repro.machine.fabric import CellConfig, LutFabric
from repro.machine.instruction import Uniprocessor
from repro.machine.morph import MorphDemonstration, can_emulate, demonstrate_morphs
from repro.machine.multiprocessor import Multiprocessor, MultiprocessorSubtype
from repro.machine.netlist import Bus, NetlistBuilder
from repro.machine.program import (
    Instruction,
    NUM_REGISTERS,
    Opcode,
    Program,
    assemble,
    ins,
    required_capabilities,
)
from repro.machine.scalar import ExtensionPort, ScalarCore, StepOutcome
from repro.machine.spatial import SpatialMachine, VliwBundle, VliwProgram
from repro.machine.universal import (
    SoftInstruction,
    SoftOp,
    SoftProgram,
    UniversalMachine,
)

__all__ = [
    "Capability",
    "ExecutionResult",
    "check_capabilities",
    "DFOp",
    "DFNode",
    "DataflowGraph",
    "DataflowMachine",
    "DataflowSubtype",
    "Uniprocessor",
    "ArrayProcessor",
    "ArraySubtype",
    "Multiprocessor",
    "MultiprocessorSubtype",
    "SpatialMachine",
    "VliwBundle",
    "VliwProgram",
    "CellConfig",
    "LutFabric",
    "Bus",
    "NetlistBuilder",
    "UniversalMachine",
    "SoftOp",
    "SoftInstruction",
    "SoftProgram",
    "Instruction",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "assemble",
    "ins",
    "required_capabilities",
    "ExtensionPort",
    "ScalarCore",
    "StepOutcome",
    "MorphDemonstration",
    "can_emulate",
    "demonstrate_morphs",
]
