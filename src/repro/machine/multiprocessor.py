"""MIMD multiprocessors — the IMP classes.

``n`` instruction processors each run their own program on their own DP
and local DM (IMP-I is "separate Von Neumann machines"). The switched
sites enable cross-core interaction:

* a **DP-DP switch** carries messages: ``SEND``/``RECV`` over per-pair
  FIFOs (IMP-II and friends);
* a **DP-DM switch** builds a flat shared address space over the banks:
  ``GLD``/``GST`` (IMP-III and friends);
* ``BARRIER`` synchronises all cores (available on every IMP — it only
  needs the streams, not a switch).

Execution interleaves cores cycle by cycle (one instruction each per
cycle); blocking RECV and BARRIER stall individual cores. A watchdog
turns mutual stalls into a diagnosed deadlock error.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.core.errors import CapabilityError, ProgramError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPolicy,
    FaultRuntime,
)
from repro.machine.base import Capability, ExecutionResult, check_capabilities, traced_run
from repro.machine.program import Program, required_capabilities
from repro.machine.scalar import ExtensionPort, ScalarCore

__all__ = ["MultiprocessorSubtype", "Multiprocessor"]


def _imp_members() -> dict[str, tuple[str, bool, bool, bool, bool]]:
    """Generate the 16 IMP sub-types from the Table-I ordinal encoding.

    Ordinal bits (MSB first): IP-DP, IP-IM, DP-DM, DP-DP switched.
    """
    from repro.core.naming import roman

    members = {}
    for ordinal in range(1, 17):
        bits = ordinal - 1
        members[f"IMP_{roman(ordinal)}"] = (
            f"IMP-{roman(ordinal)}",
            bool(bits & 8),  # ip_dp switched
            bool(bits & 4),  # ip_im switched
            bool(bits & 2),  # dp_dm switched
            bool(bits & 1),  # dp_dp switched
        )
    return members


class MultiprocessorSubtype(enum.Enum):
    """All 16 IMP sub-types, behaviourally.

    The DP-side switches enable shared memory (DP-DM) and messages
    (DP-DP) exactly as in the IAP model. The IP-side switches govern
    instruction distribution: a switched IP-IM lets any IP fetch from
    any instruction memory, which the model exposes as a shared task
    pool (:meth:`Multiprocessor.run_task_pool` — cores pick up the next
    pending program when they halt). A switched IP-DP lets IPs drive
    any DP; behaviourally transparent in this model (contexts are
    symmetric), it still participates in classification and costing.
    """

    locals().update(_imp_members())

    def __init__(
        self,
        label: str,
        ip_dp_switched: bool,
        im_switched: bool,
        dm_switched: bool,
        dp_switched: bool,
    ):
        self.label = label
        self.ip_dp_switched = ip_dp_switched
        self.im_switched = im_switched
        self.dm_switched = dm_switched
        self.dp_switched = dp_switched


class _CorePort(ExtensionPort):
    """Extension semantics closing over the whole multiprocessor."""

    def __init__(self, machine: "Multiprocessor"):
        self.machine = machine

    def global_load(self, core: ScalarCore, address: int) -> int:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GLD is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        return self.machine.cores[bank].load(offset)

    def global_store(self, core: ScalarCore, address: int, value: int) -> None:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GST is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        self.machine.cores[bank].store(offset, value)

    def send(self, core: ScalarCore, destination: int, value: int) -> None:
        if not self.machine.subtype.dp_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DP switch: "
                "SEND is unavailable"
            )
        if not 0 <= destination < self.machine.n_cores:
            raise ProgramError(
                f"SEND to core {destination}, outside 0..{self.machine.n_cores - 1}"
            )
        machine = self.machine
        latency = machine.message_latency(core.core_id, destination)
        machine._fifos[(core.core_id, destination)].append(
            (machine._cycle + latency, value)
        )

    def receive(self, core: ScalarCore, source: int) -> "int | None":
        if not self.machine.subtype.dp_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DP switch: "
                "RECV is unavailable"
            )
        if not 0 <= source < self.machine.n_cores:
            raise ProgramError(
                f"RECV from core {source}, outside 0..{self.machine.n_cores - 1}"
            )
        fifo = self.machine._fifos[(source, core.core_id)]
        if not fifo:
            return None  # stall
        ready_cycle, value = fifo[0]
        if ready_cycle > self.machine._cycle:
            return None  # message still in flight on the network
        fifo.popleft()
        return value

    def barrier(self, core: ScalarCore) -> bool:
        machine = self.machine
        if core.core_id in machine._barrier_release:
            # Released by a previously-completed barrier round.
            machine._barrier_release.discard(core.core_id)
            return True
        machine._at_barrier.add(core.core_id)
        live = {c.core_id for c in machine.cores if not c.halted}
        if live <= machine._at_barrier:
            # Everyone still running has arrived: open the barrier.
            machine._barrier_release = set(machine._at_barrier)
            machine._at_barrier.clear()
            machine._barrier_release.discard(core.core_id)
            return True
        return False


class Multiprocessor:
    """IMP: ``n`` independent instruction streams with optional switches."""

    def __init__(
        self,
        n_cores: int,
        subtype: MultiprocessorSubtype = MultiprocessorSubtype.IMP_IV,
        *,
        bank_size: int = 1024,
        network: "object | None" = None,
    ):
        """``network`` optionally provides the DP-DP switch's concrete
        implementation (any :class:`~repro.interconnect.topology.Interconnect`
        with ``n_cores`` ports): message latency then follows the
        topology's routed cycle count instead of the default single
        cycle — a crossbar delivers next cycle, a 3-hop window or a mesh
        charges its relay distance. This is where the taxonomy's ``'x'``
        cell meets its silicon realisation."""
        if n_cores <= 1:
            raise ValueError(
                "a multiprocessor needs at least 2 cores (1 core is an IUP)"
            )
        if network is not None:
            ports = getattr(network, "n_inputs", None)
            if ports != n_cores or getattr(network, "n_outputs", None) != n_cores:
                raise ValueError(
                    f"network must expose {n_cores}x{n_cores} ports, got "
                    f"{ports}x{getattr(network, 'n_outputs', None)}"
                )
            if not subtype.dp_switched:
                raise ValueError(
                    f"{subtype.label} has no DP-DP switch to implement "
                    "with a network"
                )
        self.n_cores = n_cores
        self.subtype = subtype
        self.bank_size = bank_size
        self.network = network
        self.cores = [
            ScalarCore(core_id=i, memory_size=bank_size) for i in range(n_cores)
        ]
        self._port = _CorePort(self)
        #: (src, dst) -> deque of (ready_cycle, value)
        self._fifos: dict[tuple[int, int], deque[tuple[int, int]]] = {
            (src, dst): deque()
            for src in range(n_cores)
            for dst in range(n_cores)
        }
        self._at_barrier: set[int] = set()
        self._barrier_release: set[int] = set()
        self._cycle = 0

    def message_latency(self, source: int, destination: int) -> int:
        """Cycles a message spends on the DP-DP network.

        When the network carries fault state this is where it bites: a
        mesh detour lengthens the route (more cycles), while a dead port
        or a partition makes :meth:`route` raise :class:`FaultError`.
        """
        if self.network is None:
            return 1
        return max(self.network.route(source, destination).cycles, 1)

    def _fabric_fault(self, event: "FaultEvent") -> None:
        """Fold a PORT/LINK fault event into the attached network.

        PORT events kill an output port; LINK events cut a deterministic
        edge of the topology graph (``target`` indexes the sorted edge
        list). Transient fabric events are applied permanently — wire
        repair is below this model's abstraction level.
        """
        net = self.network
        if event.kind is FaultKind.PORT:
            net.fail_output_port(event.target % net.n_outputs)
            return
        edges = sorted(tuple(sorted(edge)) for edge in net.as_graph().edges())
        a, b = edges[event.target % len(edges)]
        net.fail_link(a, b)

    # -- capability view --------------------------------------------------

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        caps = {
            Capability.INSTRUCTION_EXECUTION,
            Capability.MULTIPLE_STREAMS,
            Capability.DATA_PARALLEL,
        }
        if self.subtype.dp_switched:
            caps.add(Capability.MESSAGE_PASSING)
        if self.subtype.dm_switched:
            caps.add(Capability.GLOBAL_MEMORY)
        return caps

    # -- memory -----------------------------------------------------------

    def split_global_address(self, address: int) -> tuple[int, int]:
        """Split a global address into ``(core index, local address)``."""
        bank, offset = divmod(address, self.bank_size)
        if not 0 <= bank < self.n_cores:
            raise ProgramError(
                f"global address {address} maps to bank {bank}, outside "
                f"0..{self.n_cores - 1}"
            )
        return bank, offset

    def reset(self) -> None:
        """Restore run state to the post-construction configuration."""
        self.__init__(
            self.n_cores,
            self.subtype,
            bank_size=self.bank_size,
            network=self.network,
        )

    # -- execution -----------------------------------------------------------

    @traced_run("machine.run")
    def run(
        self,
        programs: "list[Program] | Program",
        *,
        max_cycles: int = 1_000_000,
        faults: "FaultPlan | FaultInjector | None" = None,
        policy: "FaultPolicy | None" = None,
    ) -> ExecutionResult:
        """Run one program per core (or broadcast a single program SPMD).

        Cycle model: each cycle every non-halted core attempts one
        instruction; stalls (empty RECV FIFO, waiting barrier) retry next
        cycle. Deadlock (all live cores stalled with no message in
        flight) raises ProgramError with the stuck-core set.

        With ``faults``/``policy`` the machine degrades per the policy.
        Remap needs *both* IP-side reach (a switched IP-IM so a survivor
        can fetch the dead core's program) and DP-side reach (a switched
        DP-DM so it can touch the dead core's bank) — that is why richer
        IMP sub-types tolerate faults that kill an IMP-I. PORT/LINK
        events land on the attached DP-DP network when one is present;
        a mesh reroutes, a dead port raises FaultError on the next SEND
        that needs it.
        """
        if isinstance(programs, Program):
            programs = [programs] * self.n_cores
        if len(programs) != self.n_cores:
            raise ProgramError(
                f"expected {self.n_cores} programs, got {len(programs)}"
            )
        for program in programs:
            check_capabilities(
                self.capabilities(),
                required_capabilities(program),
                machine=self.subtype.label,
            )
        runtime = FaultRuntime.create(
            faults,
            policy,
            n_units=self.n_cores,
            can_remap=self.subtype.im_switched and self.subtype.dm_switched,
            machine=self.subtype.label,
            unit_noun="core",
            fabric_handler=self._fabric_fault if self.network is not None else None,
        )
        # Each run starts its programs from scratch; registers and memory
        # persist (kernels preload data between runs) but control state
        # must not leak from a previous run or a fused-group execution.
        for core in self.cores:
            core.pc = 0
            core.halted = False
        cycles = 0
        operations = 0
        while any(not core.halted for core in self.cores):
            if runtime is None:
                cycles += 1
            else:
                cycles += runtime.issue_cost()
                cycles += runtime.absorb(cycles)
            self._cycle = cycles
            if cycles > max_cycles:
                raise ProgramError(
                    f"{self.subtype.label}: exceeded {max_cycles} cycles"
                )
            executing = (
                None if runtime is None else set(runtime.executing_units(cycles))
            )
            progressed = False
            for core, program in zip(self.cores, programs):
                if core.halted:
                    continue
                if executing is not None and core.core_id not in executing:
                    # Degrade policy: a dead core halts for good; a
                    # stunned one just misses this round. Either way the
                    # machine as a whole is still making progress.
                    if core.core_id in runtime.dead:
                        core.halted = True
                    progressed = True
                    continue
                if core.pc >= len(program):
                    raise ProgramError(
                        f"core {core.core_id}: PC {core.pc} ran past the "
                        f"end of {program.name!r} (missing HALT?)"
                    )
                outcome = core.execute(program[core.pc], self._port)
                if outcome.executed:
                    operations += 1
                    progressed = True
            if not progressed:
                in_flight = any(
                    fifo and fifo[0][0] > cycles
                    for fifo in self._fifos.values()
                )
                if in_flight:
                    continue  # stalls will clear when messages land
                stuck = [c.core_id for c in self.cores if not c.halted]
                raise ProgramError(
                    f"deadlock: cores {stuck} are all stalled "
                    "(blocking RECV with empty FIFOs or barrier mismatch)"
                )
        stats = {
            "machine": self.subtype.label,
            "n_cores": self.n_cores,
        }
        if runtime is not None:
            stats.update(runtime.stats())
            stats["nominal_parallelism"] = float(self.n_cores)
            stats["achieved_parallelism"] = (
                operations / cycles if cycles else 0.0
            )
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(core.registers) for core in self.cores],
            },
            stats=stats,
        )

    @traced_run("machine.run_task_pool")
    def run_task_pool(
        self,
        programs: "list[Program]",
        *,
        max_cycles: int = 1_000_000,
    ) -> ExecutionResult:
        """Drain a shared pool of programs — more tasks than cores.

        This is what the IP-IM *switch* buys operationally: any IP can
        fetch from any instruction memory, so a core that halts simply
        re-binds to the next pending program. Sub-types whose IP-IM site
        is direct (each IP hard-wired to its own IM) refuse the call —
        they can only ever run the n programs they were built with.

        Returns per-task completion order in ``stats["schedule"]`` as
        (task index, core id, completion cycle) triples. Blocking
        opcodes (RECV/BARRIER) are rejected: tasks in a pool must be
        independent.
        """
        if not self.subtype.im_switched:
            raise CapabilityError(
                f"{self.subtype.label} has a direct IP-IM connection: each "
                "IP is wired to its own instruction memory, so a shared "
                "task pool needs the IP-IM switch (IMP-V and richer)"
            )
        if not programs:
            raise ProgramError("task pool must not be empty")
        for program in programs:
            check_capabilities(
                self.capabilities(),
                required_capabilities(program),
                machine=self.subtype.label,
            )
            for instruction in program:
                if instruction.op.value in ("recv", "barrier"):
                    raise ProgramError(
                        "task-pool programs must be non-blocking "
                        f"({program.name!r} uses {instruction.op.value})"
                    )
        for core in self.cores:
            core.pc = 0
            core.halted = False
        pending = deque(range(len(programs)))
        running: dict[int, int] = {}  # core id -> task index
        for core in self.cores:
            if pending:
                running[core.core_id] = pending.popleft()
                core.pc = 0
                core.halted = False
            else:
                core.halted = True
        cycles = 0
        operations = 0
        schedule: list[tuple[int, int, int]] = []
        while running:
            cycles += 1
            if cycles > max_cycles:
                raise ProgramError(
                    f"{self.subtype.label}: task pool exceeded {max_cycles} cycles"
                )
            finished: list[int] = []
            for core in self.cores:
                task = running.get(core.core_id)
                if task is None:
                    continue
                program = programs[task]
                if core.pc >= len(program):
                    raise ProgramError(
                        f"task {task}: PC ran past {program.name!r} "
                        "(missing HALT?)"
                    )
                outcome = core.execute(program[core.pc], self._port)
                if outcome.executed:
                    operations += 1
                if outcome.halted:
                    schedule.append((task, core.core_id, cycles))
                    finished.append(core.core_id)
            for core_id in finished:
                del running[core_id]
                core = self.cores[core_id]
                if pending:
                    running[core_id] = pending.popleft()
                    core.pc = 0
                    core.halted = False
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(core.registers) for core in self.cores],
            },
            stats={
                "machine": self.subtype.label,
                "n_cores": self.n_cores,
                "tasks": len(programs),
                "schedule": schedule,
            },
        )
