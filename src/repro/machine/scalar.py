"""The scalar execution core shared by all instruction-flow machines.

One :class:`ScalarCore` is a register file plus a local data-memory bank
plus a program counter — the DP+DM pair under one IP. Machines compose
cores: the uniprocessor owns one, the array processor replicates the DP
state across lanes under one shared PC, the multiprocessor runs one core
per instruction stream.

Extension opcodes (SHUF/GLD/GST/SEND/RECV/BARRIER) are delegated to an
:class:`ExtensionPort` supplied by the owning machine; the default port
rejects them, which is how an IUP refuses an array program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CapabilityError, ProgramError
from repro.machine.program import Instruction, NUM_REGISTERS, Opcode, Program

__all__ = ["ExtensionPort", "ScalarCore", "StepOutcome"]


class ExtensionPort:
    """Hooks for opcodes whose semantics live outside a single core.

    The base implementation refuses everything — a machine grants a
    capability by overriding the corresponding hook.
    """

    def shuffle(self, core: "ScalarCore", rs1: int, rs2: int) -> int:
        """Hook for SHUF; the base port refuses (needs a DP-DP switch)."""
        raise CapabilityError(
            "SHUF requires inter-lane connectivity (a DP-DP switch)"
        )

    def global_load(self, core: "ScalarCore", address: int) -> int:
        """Hook for GLD; the base port refuses (needs a DP-DM switch)."""
        raise CapabilityError("GLD requires a DP-DM switch (global memory)")

    def global_store(self, core: "ScalarCore", address: int, value: int) -> None:
        """Hook for GST; the base port refuses (needs a DP-DM switch)."""
        raise CapabilityError("GST requires a DP-DM switch (global memory)")

    def send(self, core: "ScalarCore", destination: int, value: int) -> None:
        """Hook for SEND; the base port refuses (needs inter-core connectivity)."""
        raise CapabilityError("SEND requires inter-core connectivity")

    def receive(self, core: "ScalarCore", source: int) -> "int | None":
        """Return the received value, or None to stall (message not there)."""
        raise CapabilityError("RECV requires inter-core connectivity")

    def barrier(self, core: "ScalarCore") -> bool:
        """Return True when the core may pass the barrier."""
        raise CapabilityError("BARRIER requires multiple instruction streams")


@dataclass(frozen=True, slots=True)
class StepOutcome:
    """What one instruction step did."""

    executed: bool   # False when the core stalled (blocking RECV/BARRIER)
    halted: bool


@dataclass
class ScalarCore:
    """Architected state of one DP (+ its DM bank) under one PC."""

    core_id: int = 0
    memory_size: int = 1024
    registers: list[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    memory: list[int] = field(default_factory=list)
    pc: int = 0
    halted: bool = False

    def __post_init__(self) -> None:
        if self.memory_size <= 0:
            raise ValueError("memory size must be positive")
        if not self.memory:
            self.memory = [0] * self.memory_size
        if len(self.registers) != NUM_REGISTERS:
            raise ProgramError(f"register file must have {NUM_REGISTERS} entries")

    # -- memory ---------------------------------------------------------

    def load(self, address: int) -> int:
        """Read one word of local data memory."""
        self._check_address(address)
        return self.memory[address]

    def store(self, address: int, value: int) -> None:
        """Write one word of local data memory."""
        self._check_address(address)
        self.memory[address] = value

    def _check_address(self, address: int) -> None:
        if not 0 <= address < len(self.memory):
            raise ProgramError(
                f"core {self.core_id}: memory address {address} out of "
                f"range 0..{len(self.memory) - 1}"
            )

    def write_block(self, base: int, values: "list[int]") -> None:
        """Test/kernel helper: bulk-initialise the local bank."""
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    def read_block(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words of local data memory."""
        return [self.load(base + offset) for offset in range(count)]

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        instruction: Instruction,
        port: ExtensionPort,
        *,
        lane_id: int = 0,
    ) -> StepOutcome:
        """Execute one instruction against this core's state.

        The PC advances (or branches) only when the step completes; a
        stalled step (blocking RECV, waiting BARRIER) leaves all state
        untouched so it can retry next cycle.
        """
        if self.halted:
            return StepOutcome(executed=False, halted=True)
        regs = self.registers
        op = instruction.op
        next_pc = self.pc + 1

        if op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
            self.pc = next_pc
            return StepOutcome(executed=True, halted=True)
        elif op is Opcode.LDI:
            regs[instruction.rd] = instruction.imm
        elif op is Opcode.MOV:
            regs[instruction.rd] = regs[instruction.rs1]
        elif op is Opcode.LD:
            regs[instruction.rd] = self.load(regs[instruction.rs1] + instruction.imm)
        elif op is Opcode.ST:
            self.store(regs[instruction.rs1] + instruction.imm, regs[instruction.rs2])
        elif op is Opcode.ADD:
            regs[instruction.rd] = regs[instruction.rs1] + regs[instruction.rs2]
        elif op is Opcode.SUB:
            regs[instruction.rd] = regs[instruction.rs1] - regs[instruction.rs2]
        elif op is Opcode.MUL:
            regs[instruction.rd] = regs[instruction.rs1] * regs[instruction.rs2]
        elif op is Opcode.DIV:
            divisor = regs[instruction.rs2]
            if divisor == 0:
                raise ProgramError(f"core {self.core_id}: division by zero")
            regs[instruction.rd] = int(regs[instruction.rs1] / divisor)
        elif op is Opcode.AND:
            regs[instruction.rd] = regs[instruction.rs1] & regs[instruction.rs2]
        elif op is Opcode.OR:
            regs[instruction.rd] = regs[instruction.rs1] | regs[instruction.rs2]
        elif op is Opcode.XOR:
            regs[instruction.rd] = regs[instruction.rs1] ^ regs[instruction.rs2]
        elif op is Opcode.SHL:
            regs[instruction.rd] = regs[instruction.rs1] << instruction.imm
        elif op is Opcode.SHR:
            regs[instruction.rd] = regs[instruction.rs1] >> instruction.imm
        elif op is Opcode.ADDI:
            regs[instruction.rd] = regs[instruction.rs1] + instruction.imm
        elif op is Opcode.SLT:
            regs[instruction.rd] = int(regs[instruction.rs1] < regs[instruction.rs2])
        elif op is Opcode.BEQ:
            if regs[instruction.rs1] == regs[instruction.rs2]:
                next_pc = instruction.imm
        elif op is Opcode.BNE:
            if regs[instruction.rs1] != regs[instruction.rs2]:
                next_pc = instruction.imm
        elif op is Opcode.BLT:
            if regs[instruction.rs1] < regs[instruction.rs2]:
                next_pc = instruction.imm
        elif op is Opcode.JMP:
            next_pc = instruction.imm
        elif op is Opcode.LANEID:
            regs[instruction.rd] = lane_id
        elif op is Opcode.SHUF:
            regs[instruction.rd] = port.shuffle(self, instruction.rs1, instruction.rs2)
        elif op is Opcode.GLD:
            regs[instruction.rd] = port.global_load(
                self, regs[instruction.rs1] + instruction.imm
            )
        elif op is Opcode.GST:
            port.global_store(
                self, regs[instruction.rs1] + instruction.imm, regs[instruction.rs2]
            )
        elif op is Opcode.SEND:
            port.send(self, regs[instruction.rs1], regs[instruction.rs2])
        elif op is Opcode.RECV:
            received = port.receive(self, regs[instruction.rs1])
            if received is None:
                return StepOutcome(executed=False, halted=False)  # stall
            regs[instruction.rd] = received
        elif op is Opcode.BARRIER:
            if not port.barrier(self):
                return StepOutcome(executed=False, halted=False)  # stall
        else:  # pragma: no cover - exhaustive
            raise ProgramError(f"unimplemented opcode {op}")

        self.pc = next_pc
        return StepOutcome(executed=True, halted=self.halted)

    def run_to_halt(
        self, program: Program, port: ExtensionPort, *, max_cycles: int = 1_000_000
    ) -> tuple[int, int]:
        """Fetch-execute to HALT; returns (cycles, instructions_executed)."""
        cycles = 0
        executed = 0
        while not self.halted:
            if self.pc >= len(program):
                raise ProgramError(
                    f"core {self.core_id}: PC {self.pc} ran past the end of "
                    f"{program.name!r} (missing HALT?)"
                )
            cycles += 1
            if cycles > max_cycles:
                raise ProgramError(
                    f"core {self.core_id}: exceeded {max_cycles} cycles "
                    f"(infinite loop in {program.name!r}?)"
                )
            outcome = self.execute(program[self.pc], port)
            if outcome.executed:
                executed += 1
        return cycles, executed
