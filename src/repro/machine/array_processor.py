"""SIMD array processors — the IAP-I..IV classes of Fig. 4.

One instruction processor broadcasts each instruction to ``n`` data
processors (lanes); every lane owns a register file and a local
data-memory bank. The four sub-types differ exactly as the taxonomy
says:

* **IAP-I** — each DP is hard-wired to its own DM; lanes can neither
  exchange registers nor touch other banks.
* **IAP-II** — adds the DP-DP crossbar: the ``SHUF`` instruction works.
* **IAP-III** — adds the DP-DM crossbar instead: ``GLD``/``GST`` reach
  any bank through a flat global address space.
* **IAP-IV** — both switches: the most flexible array organisation.

Control flow is SIMD: branches must resolve identically on every lane
(divergence raises ProgramError — there is only one program counter).
"""

from __future__ import annotations

import enum

from repro.core.errors import CapabilityError, ProgramError
from repro.faults import FaultInjector, FaultPlan, FaultPolicy, FaultRuntime
from repro.machine.base import Capability, ExecutionResult, check_capabilities
from repro.machine.program import Instruction, Opcode, Program, required_capabilities
from repro.machine.scalar import ExtensionPort, ScalarCore

__all__ = ["ArraySubtype", "ArrayProcessor"]


class ArraySubtype(enum.Enum):
    """IAP sub-types with their switch complement."""

    IAP_I = ("IAP-I", False, False)
    IAP_II = ("IAP-II", False, True)
    IAP_III = ("IAP-III", True, False)
    IAP_IV = ("IAP-IV", True, True)

    def __init__(self, label: str, dm_switched: bool, dp_switched: bool):
        self.label = label
        self.dm_switched = dm_switched
        self.dp_switched = dp_switched


class _LanePort(ExtensionPort):
    """Extension semantics for one lane, closing over the whole array."""

    def __init__(self, machine: "ArrayProcessor"):
        self.machine = machine
        #: register snapshot for SHUF (pre-instruction values, so the
        #: exchange is simultaneous across lanes as real hardware is).
        self.snapshot: list[list[int]] = []

    def shuffle(self, core: ScalarCore, rs1: int, rs2: int) -> int:
        if not self.machine.subtype.dp_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DP switch: "
                "SHUF is unavailable"
            )
        source_lane = core.registers[rs2] % self.machine.n_lanes
        return self.snapshot[source_lane][rs1]

    def global_load(self, core: ScalarCore, address: int) -> int:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GLD is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        return self.machine.lanes[bank].load(offset)

    def global_store(self, core: ScalarCore, address: int, value: int) -> None:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GST is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        self.machine.lanes[bank].store(offset, value)


class ArrayProcessor:
    """IAP: one shared program counter over ``n`` SIMD lanes."""

    def __init__(
        self,
        n_lanes: int,
        subtype: ArraySubtype = ArraySubtype.IAP_IV,
        *,
        bank_size: int = 1024,
    ):
        if n_lanes <= 1:
            raise ValueError(
                "an array processor needs at least 2 lanes (1 lane is an IUP)"
            )
        self.n_lanes = n_lanes
        self.subtype = subtype
        self.bank_size = bank_size
        self.lanes = [
            ScalarCore(core_id=i, memory_size=bank_size) for i in range(n_lanes)
        ]
        self._port = _LanePort(self)

    # -- capability view ------------------------------------------------

    def capabilities(self) -> set[Capability]:
        caps = {Capability.INSTRUCTION_EXECUTION, Capability.DATA_PARALLEL}
        if self.subtype.dp_switched:
            caps.add(Capability.LANE_SHUFFLE)
        if self.subtype.dm_switched:
            caps.add(Capability.GLOBAL_MEMORY)
        return caps

    # -- memory helpers ---------------------------------------------------

    def split_global_address(self, address: int) -> tuple[int, int]:
        """Flat global address -> (bank, offset)."""
        bank, offset = divmod(address, self.bank_size)
        if not 0 <= bank < self.n_lanes:
            raise ProgramError(
                f"global address {address} maps to bank {bank}, outside "
                f"0..{self.n_lanes - 1}"
            )
        return bank, offset

    def scatter(self, base: int, values: "list[int]") -> None:
        """Distribute ``values`` round-robin across lane banks at ``base``.

        Element ``i`` lands in lane ``i % n_lanes`` at offset
        ``base + i // n_lanes`` — the canonical SIMD data layout used by
        the kernel library.
        """
        per_lane: list[list[int]] = [[] for _ in range(self.n_lanes)]
        for index, value in enumerate(values):
            per_lane[index % self.n_lanes].append(value)
        for lane, chunk in zip(self.lanes, per_lane):
            lane.write_block(base, chunk)

    def gather(self, base: int, count: int) -> list[int]:
        """Inverse of :meth:`scatter`."""
        out: list[int] = []
        for index in range(count):
            lane = self.lanes[index % self.n_lanes]
            out.append(lane.load(base + index // self.n_lanes))
        return out

    def reset(self) -> None:
        self.lanes = [
            ScalarCore(core_id=i, memory_size=self.bank_size)
            for i in range(self.n_lanes)
        ]

    # -- execution -------------------------------------------------------------

    def _branch_decision(self, instruction: Instruction, lane: ScalarCore) -> bool:
        regs = lane.registers
        if instruction.op is Opcode.BEQ:
            return regs[instruction.rs1] == regs[instruction.rs2]
        if instruction.op is Opcode.BNE:
            return regs[instruction.rs1] != regs[instruction.rs2]
        if instruction.op is Opcode.BLT:
            return regs[instruction.rs1] < regs[instruction.rs2]
        return True  # JMP

    def run(
        self,
        program: Program,
        *,
        max_cycles: int = 1_000_000,
        faults: "FaultPlan | FaultInjector | None" = None,
        policy: "FaultPolicy | None" = None,
    ) -> ExecutionResult:
        """Broadcast-execute to HALT.

        Every cycle all lanes execute the same instruction; lane-variant
        behaviour comes from LANEID and per-lane data. Divergent branch
        conditions are a program error on a single-PC machine.

        ``faults`` injects a seeded :class:`FaultPlan` and ``policy``
        decides how the array responds. Remapping is only possible when
        the sub-type has a switched DP-DM or DP-DP site — a lane's work
        can be rehosted only if its state is reachable through an ``x``
        cell; IAP-I's all-direct wiring cannot remap (spare lanes still
        can step in, being full replicas).
        """
        check_capabilities(
            self.capabilities(),
            required_capabilities(program),
            machine=self.subtype.label,
        )
        runtime = FaultRuntime.create(
            faults,
            policy,
            n_units=self.n_lanes,
            can_remap=self.subtype.dm_switched or self.subtype.dp_switched,
            machine=self.subtype.label,
            unit_noun="lane",
        )
        pc = 0
        cycles = 0
        operations = 0
        while True:
            if pc >= len(program):
                raise ProgramError(
                    f"array PC {pc} ran past the end of {program.name!r}"
                )
            if runtime is None:
                cycles += 1
            else:
                cycles += runtime.issue_cost()
                cycles += runtime.absorb(cycles)
            if cycles > max_cycles:
                raise ProgramError(
                    f"{self.subtype.label}: exceeded {max_cycles} cycles"
                )
            if runtime is None:
                live = range(self.n_lanes)
            else:
                live = runtime.executing_units(cycles)
                if not live:
                    # Every surviving lane is momentarily stunned; the
                    # array idles this cycle and retries the same pc.
                    continue
            instruction = program[pc]
            if instruction.is_branch:
                decisions = {
                    self._branch_decision(instruction, self.lanes[i]) for i in live
                }
                if len(decisions) > 1:
                    raise ProgramError(
                        f"divergent branch at pc={pc} ({instruction}): a "
                        "single-IP array processor has one program counter"
                    )
                taken = decisions.pop()
                pc = instruction.imm if taken else pc + 1
                operations += len(live)
                continue
            if instruction.op is Opcode.HALT:
                operations += len(live)
                break
            if instruction.op is Opcode.SHUF:
                # Snapshot pre-instruction registers so the exchange is
                # simultaneous (hardware semantics), then execute per lane.
                self._port.snapshot = [list(lane.registers) for lane in self.lanes]
            for lane_id in live:
                lane = self.lanes[lane_id]
                lane.pc = pc
                outcome = lane.execute(instruction, self._port, lane_id=lane_id)
                assert outcome.executed
                operations += 1
            pc += 1
        stats = {
            "machine": self.subtype.label,
            "n_lanes": self.n_lanes,
            "program": program.name,
        }
        if runtime is not None:
            stats.update(runtime.stats())
            stats["nominal_parallelism"] = float(self.n_lanes)
            stats["achieved_parallelism"] = (
                operations / cycles if cycles else 0.0
            )
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(lane.registers) for lane in self.lanes],
            },
            stats=stats,
        )
