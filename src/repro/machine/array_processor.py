"""SIMD array processors — the IAP-I..IV classes of Fig. 4.

One instruction processor broadcasts each instruction to ``n`` data
processors (lanes); every lane owns a register file and a local
data-memory bank. The four sub-types differ exactly as the taxonomy
says:

* **IAP-I** — each DP is hard-wired to its own DM; lanes can neither
  exchange registers nor touch other banks.
* **IAP-II** — adds the DP-DP crossbar: the ``SHUF`` instruction works.
* **IAP-III** — adds the DP-DM crossbar instead: ``GLD``/``GST`` reach
  any bank through a flat global address space.
* **IAP-IV** — both switches: the most flexible array organisation.

Control flow is SIMD: branches must resolve identically on every lane
(divergence raises ProgramError — there is only one program counter).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.errors import CapabilityError, ProgramError
from repro.faults import FaultInjector, FaultPlan, FaultPolicy, FaultRuntime
from repro.machine.base import Capability, ExecutionResult, check_capabilities, traced_run
from repro.machine.program import Instruction, Opcode, Program, required_capabilities
from repro.machine.scalar import ExtensionPort, ScalarCore

__all__ = ["ArraySubtype", "ArrayProcessor", "vectorizable"]

#: Opcodes the NumPy lane-dispatch path implements. The port-mediated
#: extensions (GLD/GST and the message group) keep the interpreted path:
#: their semantics live in the owning machine, not in lane-local state.
_VECTOR_OPS = frozenset(
    {
        Opcode.NOP, Opcode.HALT, Opcode.LDI, Opcode.MOV, Opcode.LD, Opcode.ST,
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND, Opcode.OR,
        Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.ADDI, Opcode.SLT,
        Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JMP,
        Opcode.LANEID, Opcode.SHUF,
    }
)

#: Below this width the per-instruction ndarray overhead beats the win.
_VECTOR_MIN_LANES = 8

#: int(a < b) as a NumPy ufunc over Python objects (exact int semantics).
_SLT_UFUNC = np.frompyfunc(lambda a, b: int(a < b), 2, 1)
#: int(a / b) — the scalar core's truncating division, bit for bit.
_DIV_UFUNC = np.frompyfunc(lambda a, b: int(a / b), 2, 1)


def vectorizable(program: Program) -> bool:
    """Whether every opcode of ``program`` has a NumPy lane-dispatch form."""
    return all(instruction.op in _VECTOR_OPS for instruction in program)


class ArraySubtype(enum.Enum):
    """IAP sub-types with their switch complement."""

    IAP_I = ("IAP-I", False, False)
    IAP_II = ("IAP-II", False, True)
    IAP_III = ("IAP-III", True, False)
    IAP_IV = ("IAP-IV", True, True)

    def __init__(self, label: str, dm_switched: bool, dp_switched: bool):
        self.label = label
        self.dm_switched = dm_switched
        self.dp_switched = dp_switched


class _LanePort(ExtensionPort):
    """Extension semantics for one lane, closing over the whole array."""

    def __init__(self, machine: "ArrayProcessor"):
        self.machine = machine
        #: register snapshot for SHUF (pre-instruction values, so the
        #: exchange is simultaneous across lanes as real hardware is).
        self.snapshot: list[list[int]] = []

    def shuffle(self, core: ScalarCore, rs1: int, rs2: int) -> int:
        if not self.machine.subtype.dp_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DP switch: "
                "SHUF is unavailable"
            )
        source_lane = core.registers[rs2] % self.machine.n_lanes
        return self.snapshot[source_lane][rs1]

    def global_load(self, core: ScalarCore, address: int) -> int:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GLD is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        return self.machine.lanes[bank].load(offset)

    def global_store(self, core: ScalarCore, address: int, value: int) -> None:
        if not self.machine.subtype.dm_switched:
            raise CapabilityError(
                f"{self.machine.subtype.label} has no DP-DM switch: "
                "GST is unavailable"
            )
        bank, offset = self.machine.split_global_address(address)
        self.machine.lanes[bank].store(offset, value)


class ArrayProcessor:
    """IAP: one shared program counter over ``n`` SIMD lanes."""

    def __init__(
        self,
        n_lanes: int,
        subtype: ArraySubtype = ArraySubtype.IAP_IV,
        *,
        bank_size: int = 1024,
    ):
        if n_lanes <= 1:
            raise ValueError(
                "an array processor needs at least 2 lanes (1 lane is an IUP)"
            )
        self.n_lanes = n_lanes
        self.subtype = subtype
        self.bank_size = bank_size
        self.lanes = [
            ScalarCore(core_id=i, memory_size=bank_size) for i in range(n_lanes)
        ]
        self._port = _LanePort(self)

    # -- capability view ------------------------------------------------

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        caps = {Capability.INSTRUCTION_EXECUTION, Capability.DATA_PARALLEL}
        if self.subtype.dp_switched:
            caps.add(Capability.LANE_SHUFFLE)
        if self.subtype.dm_switched:
            caps.add(Capability.GLOBAL_MEMORY)
        return caps

    # -- memory helpers ---------------------------------------------------

    def split_global_address(self, address: int) -> tuple[int, int]:
        """Flat global address -> (bank, offset)."""
        bank, offset = divmod(address, self.bank_size)
        if not 0 <= bank < self.n_lanes:
            raise ProgramError(
                f"global address {address} maps to bank {bank}, outside "
                f"0..{self.n_lanes - 1}"
            )
        return bank, offset

    def scatter(self, base: int, values: "list[int]") -> None:
        """Distribute ``values`` round-robin across lane banks at ``base``.

        Element ``i`` lands in lane ``i % n_lanes`` at offset
        ``base + i // n_lanes`` — the canonical SIMD data layout used by
        the kernel library.
        """
        per_lane: list[list[int]] = [[] for _ in range(self.n_lanes)]
        for index, value in enumerate(values):
            per_lane[index % self.n_lanes].append(value)
        for lane, chunk in zip(self.lanes, per_lane):
            lane.write_block(base, chunk)

    def gather(self, base: int, count: int) -> list[int]:
        """Inverse of :meth:`scatter`."""
        out: list[int] = []
        for index in range(count):
            lane = self.lanes[index % self.n_lanes]
            out.append(lane.load(base + index // self.n_lanes))
        return out

    def reset(self) -> None:
        """Restore run state to the post-construction configuration."""
        self.lanes = [
            ScalarCore(core_id=i, memory_size=self.bank_size)
            for i in range(self.n_lanes)
        ]

    # -- execution -------------------------------------------------------------

    def _branch_decision(self, instruction: Instruction, lane: ScalarCore) -> bool:
        regs = lane.registers
        if instruction.op is Opcode.BEQ:
            return regs[instruction.rs1] == regs[instruction.rs2]
        if instruction.op is Opcode.BNE:
            return regs[instruction.rs1] != regs[instruction.rs2]
        if instruction.op is Opcode.BLT:
            return regs[instruction.rs1] < regs[instruction.rs2]
        return True  # JMP

    @traced_run("machine.run")
    def run(
        self,
        program: Program,
        *,
        max_cycles: int = 1_000_000,
        faults: "FaultPlan | FaultInjector | None" = None,
        policy: "FaultPolicy | None" = None,
        vectorize: "bool | None" = None,
    ) -> ExecutionResult:
        """Broadcast-execute to HALT.

        Every cycle all lanes execute the same instruction; lane-variant
        behaviour comes from LANEID and per-lane data. Divergent branch
        conditions are a program error on a single-PC machine.

        ``faults`` injects a seeded :class:`FaultPlan` and ``policy``
        decides how the array responds. Remapping is only possible when
        the sub-type has a switched DP-DM or DP-DP site — a lane's work
        can be rehosted only if its state is reachable through an ``x``
        cell; IAP-I's all-direct wiring cannot remap (spare lanes still
        can step in, being full replicas).

        ``vectorize`` selects the lane-dispatch strategy. ``None``
        (default) picks the NumPy path automatically when the run is
        fault-free, every opcode is vectorizable and the array is wide
        enough to profit; ``True`` forces it (``ValueError`` when the
        program or a fault plan makes that impossible); ``False`` forces
        the per-lane interpreter. Both paths produce identical results —
        NumPy dispatches each instruction across all lanes at once but
        the values remain Python integers, so there is no overflow or
        rounding divergence.
        """
        check_capabilities(
            self.capabilities(),
            required_capabilities(program),
            machine=self.subtype.label,
        )
        if vectorize is None:
            vectorize = (
                faults is None
                and self.n_lanes >= _VECTOR_MIN_LANES
                and vectorizable(program)
            )
        elif vectorize:
            if faults is not None:
                raise ValueError("vectorized dispatch cannot inject faults")
            if not vectorizable(program):
                bad = sorted(
                    {
                        str(i.op)
                        for i in program
                        if i.op not in _VECTOR_OPS
                    }
                )
                raise ValueError(
                    f"program {program.name!r} uses non-vectorizable "
                    f"opcodes: {', '.join(bad)}"
                )
        if vectorize:
            return self._run_vectorized(program, max_cycles=max_cycles)
        runtime = FaultRuntime.create(
            faults,
            policy,
            n_units=self.n_lanes,
            can_remap=self.subtype.dm_switched or self.subtype.dp_switched,
            machine=self.subtype.label,
            unit_noun="lane",
        )
        pc = 0
        cycles = 0
        operations = 0
        while True:
            if pc >= len(program):
                raise ProgramError(
                    f"array PC {pc} ran past the end of {program.name!r}"
                )
            if runtime is None:
                cycles += 1
            else:
                cycles += runtime.issue_cost()
                cycles += runtime.absorb(cycles)
            if cycles > max_cycles:
                raise ProgramError(
                    f"{self.subtype.label}: exceeded {max_cycles} cycles"
                )
            if runtime is None:
                live = range(self.n_lanes)
            else:
                live = runtime.executing_units(cycles)
                if not live:
                    # Every surviving lane is momentarily stunned; the
                    # array idles this cycle and retries the same pc.
                    continue
            instruction = program[pc]
            if instruction.is_branch:
                decisions = {
                    self._branch_decision(instruction, self.lanes[i]) for i in live
                }
                if len(decisions) > 1:
                    raise ProgramError(
                        f"divergent branch at pc={pc} ({instruction}): a "
                        "single-IP array processor has one program counter"
                    )
                taken = decisions.pop()
                pc = instruction.imm if taken else pc + 1
                operations += len(live)
                continue
            if instruction.op is Opcode.HALT:
                operations += len(live)
                break
            if instruction.op is Opcode.SHUF:
                # Snapshot pre-instruction registers so the exchange is
                # simultaneous (hardware semantics), then execute per lane.
                self._port.snapshot = [list(lane.registers) for lane in self.lanes]
            for lane_id in live:
                lane = self.lanes[lane_id]
                lane.pc = pc
                outcome = lane.execute(instruction, self._port, lane_id=lane_id)
                assert outcome.executed
                operations += 1
            pc += 1
        stats = {
            "machine": self.subtype.label,
            "n_lanes": self.n_lanes,
            "program": program.name,
        }
        if runtime is not None:
            stats.update(runtime.stats())
            stats["nominal_parallelism"] = float(self.n_lanes)
            stats["achieved_parallelism"] = (
                operations / cycles if cycles else 0.0
            )
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(lane.registers) for lane in self.lanes],
            },
            stats=stats,
        )

    def _run_vectorized(
        self, program: Program, *, max_cycles: int
    ) -> ExecutionResult:
        """NumPy lane dispatch: one array op per instruction, not per lane.

        State lives in object-dtype ndarrays (``R``: L×16 registers,
        ``M``: L×bank memories) whose elements stay Python integers —
        arbitrary precision, exactly the interpreter's arithmetic — while
        instruction decode and dispatch happen once per cycle instead of
        once per lane. Error messages and mutation order match the
        interpreted path; lane state is written back even when a program
        error aborts the run mid-flight.
        """
        n_lanes = self.n_lanes
        bank = self.bank_size
        lane_index = np.arange(n_lanes)
        lane_ids = np.array([int(i) for i in range(n_lanes)], dtype=object)
        R = np.array([lane.registers for lane in self.lanes], dtype=object)
        touches_memory = any(
            instruction.op in (Opcode.LD, Opcode.ST) for instruction in program
        )
        M = (
            np.array([lane.memory for lane in self.lanes], dtype=object)
            if touches_memory
            else None
        )
        pc = 0
        cycles = 0
        operations = 0
        body_pc: "int | None" = None

        def first_true(mask: np.ndarray) -> int:
            return int(np.argmax(mask.astype(bool)))

        def checked_addresses(rs1: int, imm: int) -> np.ndarray:
            addresses = R[:, rs1] + imm
            invalid = (addresses < 0) | (addresses >= bank)
            if invalid.astype(bool).any():
                lane = first_true(invalid)
                raise ProgramError(
                    f"core {lane}: memory address {addresses[lane]} out of "
                    f"range 0..{bank - 1}"
                )
            return addresses.astype(np.intp)

        try:
            while True:
                if pc >= len(program):
                    raise ProgramError(
                        f"array PC {pc} ran past the end of {program.name!r}"
                    )
                cycles += 1
                if cycles > max_cycles:
                    raise ProgramError(
                        f"{self.subtype.label}: exceeded {max_cycles} cycles"
                    )
                instruction = program[pc]
                op = instruction.op
                rd, rs1, rs2 = instruction.rd, instruction.rs1, instruction.rs2
                imm = instruction.imm
                if instruction.is_branch:
                    if op is Opcode.BEQ:
                        truth = (R[:, rs1] == R[:, rs2]).astype(bool)
                    elif op is Opcode.BNE:
                        truth = (R[:, rs1] != R[:, rs2]).astype(bool)
                    elif op is Opcode.BLT:
                        truth = (R[:, rs1] < R[:, rs2]).astype(bool)
                    else:  # JMP
                        truth = np.ones(n_lanes, dtype=bool)
                    taken = bool(truth[0])
                    if not (truth == taken).all():
                        raise ProgramError(
                            f"divergent branch at pc={pc} ({instruction}): a "
                            "single-IP array processor has one program counter"
                        )
                    pc = imm if taken else pc + 1
                    operations += n_lanes
                    continue
                if op is Opcode.HALT:
                    operations += n_lanes
                    break
                if op is Opcode.NOP:
                    pass
                elif op is Opcode.LDI:
                    R[:, rd] = imm
                elif op is Opcode.MOV:
                    R[:, rd] = R[:, rs1]
                elif op is Opcode.LD:
                    assert M is not None
                    R[:, rd] = M[lane_index, checked_addresses(rs1, imm)]
                elif op is Opcode.ST:
                    assert M is not None
                    M[lane_index, checked_addresses(rs1, imm)] = R[:, rs2]
                elif op is Opcode.ADD:
                    R[:, rd] = R[:, rs1] + R[:, rs2]
                elif op is Opcode.SUB:
                    R[:, rd] = R[:, rs1] - R[:, rs2]
                elif op is Opcode.MUL:
                    R[:, rd] = R[:, rs1] * R[:, rs2]
                elif op is Opcode.DIV:
                    divisors = R[:, rs2]
                    zero = divisors == 0
                    if zero.astype(bool).any():
                        raise ProgramError(
                            f"core {first_true(zero)}: division by zero"
                        )
                    R[:, rd] = _DIV_UFUNC(R[:, rs1], divisors)
                elif op is Opcode.AND:
                    R[:, rd] = R[:, rs1] & R[:, rs2]
                elif op is Opcode.OR:
                    R[:, rd] = R[:, rs1] | R[:, rs2]
                elif op is Opcode.XOR:
                    R[:, rd] = R[:, rs1] ^ R[:, rs2]
                elif op is Opcode.SHL:
                    R[:, rd] = R[:, rs1] << imm
                elif op is Opcode.SHR:
                    R[:, rd] = R[:, rs1] >> imm
                elif op is Opcode.ADDI:
                    R[:, rd] = R[:, rs1] + imm
                elif op is Opcode.SLT:
                    R[:, rd] = _SLT_UFUNC(R[:, rs1], R[:, rs2])
                elif op is Opcode.LANEID:
                    R[:, rd] = lane_ids
                elif op is Opcode.SHUF:
                    # Fancy indexing materialises the exchanged values
                    # before the assignment lands: the simultaneous
                    # pre-instruction snapshot of the interpreted path.
                    sources = (R[:, rs2] % n_lanes).astype(np.intp)
                    R[:, rd] = R[sources, rs1]
                else:  # pragma: no cover - vectorizable() guards this
                    raise ProgramError(f"unimplemented vector opcode {op}")
                operations += n_lanes
                body_pc = pc + 1
                pc += 1
        finally:
            for i, lane in enumerate(self.lanes):
                lane.registers = list(R[i])
                if M is not None:
                    lane.memory = list(M[i])
                if body_pc is not None:
                    lane.pc = body_pc
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(lane.registers) for lane in self.lanes],
            },
            stats={
                "machine": self.subtype.label,
                "n_lanes": self.n_lanes,
                "program": program.name,
            },
        )
