"""Instruction-set architecture and program representation.

A deliberately small RISC-flavoured ISA shared by every instruction-flow
machine in this package. The scalar core runs everywhere; three
extension groups exist only on machines whose taxonomy class provides
the corresponding switch:

* **lane extensions** (``LANEID``, ``SHUF``) — array processors; ``SHUF``
  needs the DP-DP switch (IAP-II/IV);
* **global-memory extensions** (``GLD``, ``GST``) — any machine whose
  DP-DM site is switched (IAP-III/IV, shared-memory IMPs);
* **message extensions** (``SEND``, ``RECV``, ``BARRIER``) — multi-
  processors; SEND/RECV need the DP-DP switch across cores (IMP-II …).

Programs are built either programmatically (:class:`Program` and the
``ins`` helper) or from assembly text via :func:`assemble`, which
supports labels, comments and decimal/hex immediates.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.core.errors import ProgramError
from repro.machine.base import Capability

__all__ = [
    "Opcode",
    "Instruction",
    "Program",
    "assemble",
    "ins",
    "NUM_REGISTERS",
    "required_capabilities",
]

#: Architectural register count (r0..r15); r0 is general-purpose.
NUM_REGISTERS = 16


class Opcode(enum.Enum):
    """Operation codes, grouped by extension."""

    # scalar core ------------------------------------------------------
    NOP = "nop"
    HALT = "halt"
    LDI = "ldi"      # rd <- imm
    MOV = "mov"      # rd <- rs1
    LD = "ld"        # rd <- dm[rs1 + imm]          (local bank)
    ST = "st"        # dm[rs1 + imm] <- rs2         (local bank)
    ADD = "add"      # rd <- rs1 + rs2
    SUB = "sub"      # rd <- rs1 - rs2
    MUL = "mul"      # rd <- rs1 * rs2
    DIV = "div"      # rd <- rs1 // rs2 (toward zero; trap on zero)
    AND = "and"      # rd <- rs1 & rs2
    OR = "or"        # rd <- rs1 | rs2
    XOR = "xor"      # rd <- rs1 ^ rs2
    SHL = "shl"      # rd <- rs1 << imm
    SHR = "shr"      # rd <- rs1 >> imm (arithmetic)
    ADDI = "addi"    # rd <- rs1 + imm
    SLT = "slt"      # rd <- 1 if rs1 < rs2 else 0
    BEQ = "beq"      # if rs1 == rs2: pc <- imm
    BNE = "bne"      # if rs1 != rs2: pc <- imm
    BLT = "blt"      # if rs1 <  rs2: pc <- imm
    JMP = "jmp"      # pc <- imm
    # lane extensions ---------------------------------------------------
    LANEID = "laneid"  # rd <- lane index (0 on scalar machines)
    SHUF = "shuf"      # rd <- lane[rs2 of this lane].regs[rs1]
    # global-memory extensions -------------------------------------------
    GLD = "gld"      # rd <- global_dm[rs1 + imm]
    GST = "gst"      # global_dm[rs1 + imm] <- rs2
    # message extensions ---------------------------------------------------
    SEND = "send"    # send rs2 to core rs1
    RECV = "recv"    # rd <- blocking receive from core rs1
    BARRIER = "barrier"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Opcodes whose execution requires a capability beyond plain execution.
_CAPABILITY_OF: dict[Opcode, Capability] = {
    Opcode.SHUF: Capability.LANE_SHUFFLE,
    Opcode.GLD: Capability.GLOBAL_MEMORY,
    Opcode.GST: Capability.GLOBAL_MEMORY,
    Opcode.SEND: Capability.MESSAGE_PASSING,
    Opcode.RECV: Capability.MESSAGE_PASSING,
}

_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JMP})

#: Which operand fields each opcode uses: (rd, rs1, rs2, imm).
_OPERAND_SHAPE: dict[Opcode, tuple[bool, bool, bool, bool]] = {
    Opcode.NOP: (False, False, False, False),
    Opcode.HALT: (False, False, False, False),
    Opcode.LDI: (True, False, False, True),
    Opcode.MOV: (True, True, False, False),
    Opcode.LD: (True, True, False, True),
    Opcode.ST: (False, True, True, True),
    Opcode.ADD: (True, True, True, False),
    Opcode.SUB: (True, True, True, False),
    Opcode.MUL: (True, True, True, False),
    Opcode.DIV: (True, True, True, False),
    Opcode.AND: (True, True, True, False),
    Opcode.OR: (True, True, True, False),
    Opcode.XOR: (True, True, True, False),
    Opcode.SHL: (True, True, False, True),
    Opcode.SHR: (True, True, False, True),
    Opcode.ADDI: (True, True, False, True),
    Opcode.SLT: (True, True, True, False),
    Opcode.BEQ: (False, True, True, True),
    Opcode.BNE: (False, True, True, True),
    Opcode.BLT: (False, True, True, True),
    Opcode.JMP: (False, False, False, True),
    Opcode.LANEID: (True, False, False, False),
    Opcode.SHUF: (True, True, True, False),
    Opcode.GLD: (True, True, False, True),
    Opcode.GST: (False, True, True, True),
    Opcode.SEND: (False, True, True, False),
    Opcode.RECV: (True, True, False, False),
    Opcode.BARRIER: (False, False, False, False),
}


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction. Unused fields are zero."""

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGISTERS:
                raise ProgramError(
                    f"{self.op.value}: register {name}={value} out of "
                    f"range 0..{NUM_REGISTERS - 1}"
                )

    @property
    def is_branch(self) -> bool:
        """True for control-transfer opcodes."""
        return self.op in _BRANCH_OPS

    def render(self) -> str:
        """The instruction as one line of assembly-style text."""
        uses_rd, uses_rs1, uses_rs2, uses_imm = _OPERAND_SHAPE[self.op]
        parts = [self.op.value]
        operands: list[str] = []
        if uses_rd:
            operands.append(f"r{self.rd}")
        if uses_rs1:
            operands.append(f"r{self.rs1}")
        if uses_rs2:
            operands.append(f"r{self.rs2}")
        if uses_imm:
            operands.append(str(self.imm))
        if operands:
            parts.append(" " + ", ".join(operands))
        return "".join(parts)

    def __str__(self) -> str:
        return self.render()


def ins(op: "Opcode | str", rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> Instruction:
    """Terse instruction constructor accepting the mnemonic as a string."""
    opcode = op if isinstance(op, Opcode) else _MNEMONICS[op.lower()]
    return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


_MNEMONICS = {op.value: op for op in Opcode}


@dataclass
class Program:
    """A validated instruction sequence with optional metadata."""

    instructions: list[Instruction]
    name: str = "program"
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ProgramError("a program must contain at least one instruction")
        for index, instruction in enumerate(self.instructions):
            if instruction.is_branch:
                target = instruction.imm
                if not 0 <= target < len(self.instructions):
                    raise ProgramError(
                        f"instruction {index} ({instruction}) branches to "
                        f"{target}, outside 0..{len(self.instructions) - 1}"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def render(self) -> str:
        """The whole program as assembly-style text."""
        reverse_labels: dict[int, list[str]] = {}
        for label, target in self.labels.items():
            reverse_labels.setdefault(target, []).append(label)
        lines = []
        for index, instruction in enumerate(self.instructions):
            for label in reverse_labels.get(index, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.render()}")
        return "\n".join(lines)


def required_capabilities(program: Program) -> set[Capability]:
    """The capability set a machine must provide to run ``program``."""
    required = {Capability.INSTRUCTION_EXECUTION}
    for instruction in program:
        cap = _CAPABILITY_OF.get(instruction.op)
        if cap is not None:
            required.add(cap)
        if instruction.op is Opcode.BARRIER:
            required.add(Capability.MULTIPLE_STREAMS)
    return required


# -- assembler -------------------------------------------------------------

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_REG_RE = re.compile(r"^r([0-9]+)$", re.IGNORECASE)


def _parse_value(token: str, labels: dict[str, int]) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise ProgramError(f"cannot parse operand {token!r}") from exc


def assemble(text: str, *, name: str = "program") -> Program:
    """Two-pass assembler for the textual form of the ISA.

    Syntax: one instruction per line, operands comma-separated, ``;`` or
    ``#`` introduce comments, ``label:`` lines define branch targets used
    as immediates (``jmp loop``).

    >>> program = assemble('''
    ...     ldi r1, 10
    ... loop:
    ...     addi r1, r1, -1
    ...     bne r1, r0, loop
    ...     halt
    ... ''')
    >>> len(program)
    4
    """
    raw_lines = text.splitlines()
    # First pass: strip comments, collect labels against instruction index.
    cleaned: list[str] = []
    labels: dict[str, int] = {}
    for raw in raw_lines:
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise ProgramError(f"duplicate label {label!r}")
            labels[label] = len(cleaned)
            continue
        cleaned.append(line)
    if not cleaned:
        raise ProgramError("no instructions in assembly source")
    for label, target in labels.items():
        if target >= len(cleaned):
            # trailing label: point at a virtual end; only valid if unused
            labels[label] = len(cleaned) - 1

    instructions: list[Instruction] = []
    for line in cleaned:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in _MNEMONICS:
            raise ProgramError(f"unknown mnemonic {mnemonic!r} in line {line!r}")
        opcode = _MNEMONICS[mnemonic]
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t.strip() for t in operand_text.split(",") if t.strip()]
        uses_rd, uses_rs1, uses_rs2, uses_imm = _OPERAND_SHAPE[opcode]
        expected = sum((uses_rd, uses_rs1, uses_rs2, uses_imm))
        if len(tokens) != expected:
            raise ProgramError(
                f"{mnemonic} expects {expected} operand(s), got "
                f"{len(tokens)} in line {line!r}"
            )
        fields = {"rd": 0, "rs1": 0, "rs2": 0, "imm": 0}
        cursor = 0

        def take_register(field_name: str) -> None:
            nonlocal cursor
            match = _REG_RE.match(tokens[cursor])
            if not match:
                raise ProgramError(
                    f"{mnemonic}: operand {tokens[cursor]!r} is not a register"
                )
            fields[field_name] = int(match.group(1))
            cursor += 1

        if uses_rd:
            take_register("rd")
        if uses_rs1:
            take_register("rs1")
        if uses_rs2:
            take_register("rs2")
        if uses_imm:
            fields["imm"] = _parse_value(tokens[cursor], labels)
            cursor += 1
        instructions.append(Instruction(opcode, **fields))
    return Program(instructions, name=name, labels=labels)
