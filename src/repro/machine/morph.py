"""Morphability: which classes can emulate which (§III-B, operationally).

The paper's flexibility ordering rests on emulation arguments: "IMP-I can
act as an array processor if all the processors are executing the same
program", "IAP-I can act as a uni-processor by turning off its extra
DPs", while the converses fail for lack of processors or switches. This
module encodes the argument as a structural dominance relation over
taxonomy classes and, separately, *demonstrates* representative cases by
actually running the same kernels on the machine models
(:func:`demonstrate_morphs`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import Multiplicity
from repro.core.connectivity import LINK_SITES
from repro.core.naming import MachineType, ProcessingType
from repro.core.taxonomy import TaxonomyClass

__all__ = ["can_emulate", "MorphDemonstration", "demonstrate_morphs"]

_PT_RANK = {
    ProcessingType.UNI: 0,
    ProcessingType.ARRAY: 1,
    ProcessingType.MULTI: 2,
    ProcessingType.SPATIAL: 3,
}


def _multiplicity_dominates(a: Multiplicity, b: Multiplicity) -> bool:
    """Population a suffices to stand in for population b.

    ``v`` covers everything (the fabric instantiates what it needs);
    ``n`` covers ``n``, ``1`` and ``0`` (extra processors switch off);
    ``1`` covers ``1`` and ``0``.
    """
    if a is Multiplicity.VARIABLE:
        return True
    return a.rank >= b.rank


def can_emulate(emulator: TaxonomyClass, target: TaxonomyClass) -> bool:
    """Structural dominance: ``emulator`` can morph into ``target``.

    Rules distilled from §III-B:

    * every class emulates itself;
    * USP emulates everything (universal flow implements both paradigms);
    * data-flow and instruction-flow machines cannot substitute each
      other (their flexibility values are "not comparable");
    * within a paradigm, the emulator needs (a) at least the target's
      processing-type rank — an IMP can act as an IAP or IUP, never the
      converse — (b) component populations that dominate the target's,
      and (c) a link complement that dominates the target's site by site
      (a missing switch cannot be faked; a direct link can stand in for
      an absent one by being left unused).

    NI classes neither emulate nor are emulated (they do not exist).
    """
    if not emulator.implementable or not target.implementable:
        return False
    if emulator.serial == target.serial:
        return True
    assert emulator.name is not None and target.name is not None
    if emulator.name.machine_type is MachineType.UNIVERSAL_FLOW:
        return True
    if target.name.machine_type is MachineType.UNIVERSAL_FLOW:
        return False
    if emulator.name.machine_type is not target.name.machine_type:
        return False
    if _PT_RANK[emulator.name.processing_type] < _PT_RANK[target.name.processing_type]:
        return False
    sig_a, sig_b = emulator.signature, target.signature
    if not _multiplicity_dominates(sig_a.ips.multiplicity, sig_b.ips.multiplicity):
        return False
    if not _multiplicity_dominates(sig_a.dps.multiplicity, sig_b.dps.multiplicity):
        return False
    for site in LINK_SITES:
        # Site-by-site dominance. Note the rank comparison already
        # handles the shape differences between families (IMP's n-n
        # IP-DP wiring and IAP's 1-n broadcast are both DIRECT, so a
        # wider machine running the same program everywhere passes).
        if sig_a.link(site).kind.rank < sig_b.link(site).kind.rank:
            return False
    return True


@dataclass(frozen=True, slots=True)
class MorphDemonstration:
    """One executed emulation (or refusal) with its evidence."""

    emulator: str
    target_behaviour: str
    succeeded: bool
    evidence: str


def demonstrate_morphs() -> list[MorphDemonstration]:
    """Run the paper's §III-B emulation arguments on the machine models.

    Each entry executes a kernel natively associated with one class on a
    machine of another class (or shows the converse refusal), returning
    the observed evidence. Used by tests and the morph ablation bench.
    """
    from repro.core.errors import CapabilityError, ReproError
    from repro.machine.array_processor import ArrayProcessor, ArraySubtype
    from repro.machine.dataflow import DataflowMachine
    from repro.machine.instruction import Uniprocessor
    from repro.machine.kernels import (
        dataflow_dot_product,
        simd_reduction_shuffle,
        simd_vector_add,
        vector_add_reference,
    )
    from repro.machine.multiprocessor import Multiprocessor, MultiprocessorSubtype
    from repro.machine.universal import UniversalMachine

    demos: list[MorphDemonstration] = []
    a = [3, 1, 4, 1, 5, 9, 2, 6]
    b = [2, 7, 1, 8, 2, 8, 1, 8]
    expected = vector_add_reference(a, b)

    # IMP-I acts as an array processor: same program on every core (SPMD).
    imp = Multiprocessor(4, MultiprocessorSubtype.IMP_I)
    per_core = len(a) // 4
    program = simd_vector_add(per_core)
    for index, value in enumerate(a):
        imp.cores[index % 4].store(0 + index // 4, value)
    for index, value in enumerate(b):
        imp.cores[index % 4].store(64 + index // 4, value)
    imp.run(program)
    got = [imp.cores[i % 4].load(128 + i // 4) for i in range(len(a))]
    demos.append(
        MorphDemonstration(
            emulator="IMP-I",
            target_behaviour="IAP-I data-parallel vector add",
            succeeded=got == expected,
            evidence=f"SPMD result {got} == reference {expected}",
        )
    )

    # IAP-I acts as a uni-processor: extra lanes compute, only lane 0 is read.
    iap = ArrayProcessor(4, ArraySubtype.IAP_I)
    scalar_len = 4
    iap.lanes[0].write_block(0, a[:scalar_len])
    iap.lanes[0].write_block(64, b[:scalar_len])
    # Other lanes hold zeros; they add zeros harmlessly.
    iap.run(simd_vector_add(scalar_len))
    got_scalar = iap.lanes[0].read_block(128, scalar_len)
    demos.append(
        MorphDemonstration(
            emulator="IAP-I",
            target_behaviour="IUP scalar vector add (lanes 1..3 idle)",
            succeeded=got_scalar == vector_add_reference(a[:scalar_len], b[:scalar_len]),
            evidence=f"lane-0 result {got_scalar}",
        )
    )

    # IUP cannot act as an array processor needing SHUF (no DPs to shuffle).
    iup = Uniprocessor()
    try:
        iup.run(simd_reduction_shuffle(4))
        refused = False
        detail = "unexpectedly ran"
    except (CapabilityError, ReproError) as exc:
        refused = True
        detail = str(exc)
    demos.append(
        MorphDemonstration(
            emulator="IUP",
            target_behaviour="IAP-II shuffle reduction (must refuse)",
            succeeded=refused,
            evidence=detail,
        )
    )

    # IAP-I cannot run the shuffle program either (no DP-DP switch).
    iap1 = ArrayProcessor(4, ArraySubtype.IAP_I)
    try:
        iap1.run(simd_reduction_shuffle(4))
        refused = False
        detail = "unexpectedly ran"
    except CapabilityError as exc:
        refused = True
        detail = str(exc)
    demos.append(
        MorphDemonstration(
            emulator="IAP-I",
            target_behaviour="IAP-II shuffle reduction (must refuse)",
            succeeded=refused,
            evidence=detail,
        )
    )

    # USP implements a data-flow machine...
    usp = UniversalMachine(n_cells=6000)
    graph = dataflow_dot_product(4)
    usp.configure_dataflow(graph, width=12)
    df_inputs = {f"a{i}": a[i] for i in range(4)} | {f"b{i}": b[i] for i in range(4)}
    df_result = usp.run_dataflow(df_inputs)
    df_expected = graph.evaluate(df_inputs)["dot"]
    demos.append(
        MorphDemonstration(
            emulator="USP",
            target_behaviour="DMP dataflow dot product",
            succeeded=df_result.outputs["dot"] == df_expected,
            evidence=(
                f"fabric dot={df_result.outputs['dot']} vs reference "
                f"{df_expected} using {df_result.stats['cells']} cells, "
                f"{df_result.stats['config_bits']} config bits"
            ),
        )
    )

    # ... and the same fabric reconfigures into an instruction-flow machine.
    from repro.machine.universal import SoftInstruction, SoftOp, SoftProgram

    soft = SoftProgram(
        [
            SoftInstruction(SoftOp.LDI, 5),        # acc = 5 (loop counter)
            SoftInstruction(SoftOp.ADD, 255),      # acc -= 1 (mod 256)
            SoftInstruction(SoftOp.JNZ, 1),        # loop while acc != 0
            SoftInstruction(SoftOp.HALT),
        ],
        name="countdown",
    )
    usp.configure_soft_processor(soft)
    cpu_result = usp.run_soft_processor()
    ref_acc, _ = soft.reference_run()
    demos.append(
        MorphDemonstration(
            emulator="USP",
            target_behaviour="IUP stored-program execution (soft CPU)",
            succeeded=cpu_result.outputs["acc"] == ref_acc,
            evidence=(
                f"soft CPU halted with acc={cpu_result.outputs['acc']} "
                f"(reference {ref_acc}) after {cpu_result.cycles} cycles, "
                f"{cpu_result.stats['config_bits']} config bits"
            ),
        )
    )

    # A data-flow machine cannot run instruction-flow programs at all:
    # DataflowMachine has no run(Program) interface; the structural
    # classifier captures this as machine-type incomparability, checked
    # in can_emulate tests rather than here.
    return demos
