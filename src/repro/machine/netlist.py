"""Netlist builder: structured macros over the raw LUT fabric.

Synthesising machines onto :class:`~repro.machine.fabric.LutFabric`
by hand-writing truth tables does not scale; this module provides the
small standard-cell layer real FPGA flows have — gates, multiplexers,
adders, registers, buses — each macro returning the cell indices that
carry its outputs.

All arithmetic is two's-complement over explicit bit vectors, so the
synthesised datapaths match the reference integer semantics modulo
``2**width`` (documented and tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.machine.fabric import CellConfig, LutFabric, Source

__all__ = ["Bus", "NetlistBuilder"]


#: A bit is a fabric source; a Bus is LSB-first bits.
@dataclass(frozen=True, slots=True)
class Bus:
    """An ordered (LSB-first) vector of fabric sources."""

    bits: tuple[Source, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ConfigurationError("a bus needs at least one bit")

    @property
    def width(self) -> int:
        """Number of bit lanes on the bus."""
        return len(self.bits)

    def __getitem__(self, index: int) -> Source:
        return self.bits[index]

    def __iter__(self):
        return iter(self.bits)


def _table_from_function(func, arity: int) -> int:
    """Build a truth-table integer from a Python function of ``arity`` bits."""
    table = 0
    for pattern in range(1 << arity):
        bits = [(pattern >> i) & 1 for i in range(arity)]
        if func(*bits):
            table |= 1 << pattern
    return table


# Pre-computed common tables (arity noted).
_TABLE_NOT = _table_from_function(lambda a: not a, 1)
_TABLE_BUF = _table_from_function(lambda a: a, 1)
_TABLE_AND = _table_from_function(lambda a, b: a and b, 2)
_TABLE_OR = _table_from_function(lambda a, b: a or b, 2)
_TABLE_XOR = _table_from_function(lambda a, b: a ^ b, 2)
_TABLE_MUX = _table_from_function(lambda a, b, s: b if s else a, 3)
_TABLE_SUM = _table_from_function(lambda a, b, c: a ^ b ^ c, 3)
_TABLE_CARRY = _table_from_function(lambda a, b, c: (a + b + c) >= 2, 3)
_TABLE_AND3 = _table_from_function(lambda a, b, c: a and b and c, 3)
_TABLE_OR3 = _table_from_function(lambda a, b, c: a or b or c, 3)


class NetlistBuilder:
    """Allocates fabric cells and wires macros together."""

    def __init__(self, fabric: LutFabric):
        self.fabric = fabric
        self._next_cell = 0

    # -- allocation ------------------------------------------------------

    def alloc(self) -> int:
        """Claim the next free cell index, raising once the fabric is exhausted."""
        if self._next_cell >= self.fabric.n_cells:
            raise ConfigurationError(
                f"fabric exhausted: all {self.fabric.n_cells} cells in use "
                "(instantiate a larger LutFabric)"
            )
        cell = self._next_cell
        self._next_cell += 1
        return cell

    @property
    def cells_used(self) -> int:
        """Number of cells allocated so far."""
        return self._next_cell

    def _cell(self, sources: "list[Source]", table: int, *, registered: bool = False) -> Source:
        index = self.alloc()
        self.fabric.configure_cell(
            index, CellConfig(tuple(sources), table, registered=registered)
        )
        return ("cell", index)

    # -- primitives ------------------------------------------------------

    @staticmethod
    def const(bit: int) -> Source:
        """A constant-bit source (``0`` or ``1``)."""
        return ("const", 1 if bit else 0)

    @staticmethod
    def input_bit(name: str) -> Source:
        """A source reading the external input bit ``name``."""
        return ("input", name)

    def input_bus(self, name: str, width: int) -> Bus:
        """External bus ``name``: bits appear as inputs ``name[i]``."""
        return Bus(tuple(("input", f"{name}[{i}]") for i in range(width)))

    def buf(self, a: Source, *, registered: bool = False) -> Source:
        """A buffer cell: output follows ``a`` (optionally registered)."""
        return self._cell([a], _TABLE_BUF, registered=registered)

    def not_(self, a: Source) -> Source:
        """A NOT cell over ``a``."""
        return self._cell([a], _TABLE_NOT)

    def and_(self, a: Source, b: Source) -> Source:
        """An AND cell over ``a`` and ``b``."""
        return self._cell([a, b], _TABLE_AND)

    def and3(self, a: Source, b: Source, c: Source) -> Source:
        """A three-input AND cell."""
        return self._cell([a, b, c], _TABLE_AND3)

    def or_(self, a: Source, b: Source) -> Source:
        """An OR cell over ``a`` and ``b``."""
        return self._cell([a, b], _TABLE_OR)

    def or3(self, a: Source, b: Source, c: Source) -> Source:
        """A three-input OR cell."""
        return self._cell([a, b, c], _TABLE_OR3)

    def xor_(self, a: Source, b: Source) -> Source:
        """An XOR cell over ``a`` and ``b``."""
        return self._cell([a, b], _TABLE_XOR)

    def mux(self, select: Source, when0: Source, when1: Source) -> Source:
        """2-way mux: ``when1`` if select else ``when0``."""
        return self._cell([when0, when1, select], _TABLE_MUX)

    def lut(self, sources: "list[Source]", func) -> Source:
        """Arbitrary function cell: ``func`` maps bit args to truth value."""
        return self._cell(sources, _table_from_function(func, len(sources)))

    # -- word-level macros ---------------------------------------------------

    def const_bus(self, value: int, width: int) -> Bus:
        """A bus of constant bits encoding ``value``."""
        return Bus(tuple(self.const((value >> i) & 1) for i in range(width)))

    def mux_bus(self, select: Source, when0: Bus, when1: Bus) -> Bus:
        """A two-way bus multiplexer steered by ``select``."""
        self._check_widths(when0, when1)
        return Bus(
            tuple(self.mux(select, a, b) for a, b in zip(when0, when1))
        )

    def register_bus(self, next_value: Bus) -> Bus:
        """Width FFs latching ``next_value`` each cycle.

        Returned sources read the *current* (pre-clock) register value.
        """
        return Bus(tuple(self.buf(bit, registered=True) for bit in next_value))

    def register_placeholder(self, width: int) -> Bus:
        """Registers whose next-value logic is not built yet.

        State machines need feedback (the PC incrementer reads the PC);
        allocate the register cells first, build the logic that reads
        them, then close the loop with :meth:`drive_register`.
        """
        bits: list[Source] = []
        for _ in range(width):
            index = self.alloc()
            self.fabric.configure_cell(
                index,
                CellConfig((("const", 0),), _TABLE_BUF, registered=True),
            )
            bits.append(("cell", index))
        return Bus(tuple(bits))

    def drive_register(self, placeholder: Bus, next_value: Bus) -> None:
        """Close a placeholder register's feedback loop."""
        self._check_widths(placeholder, next_value)
        for reg_bit, next_bit in zip(placeholder, next_value):
            kind, index = reg_bit
            if kind != "cell":
                raise ConfigurationError("placeholder bits must be cells")
            self.fabric.configure_cell(
                int(index),
                CellConfig((next_bit,), _TABLE_BUF, registered=True),
            )

    def adder(self, a: Bus, b: Bus, *, carry_in: "Source | None" = None) -> tuple[Bus, Source]:
        """Ripple-carry add; returns (sum bus, carry-out)."""
        self._check_widths(a, b)
        carry: Source = carry_in if carry_in is not None else self.const(0)
        bits: list[Source] = []
        for bit_a, bit_b in zip(a, b):
            bits.append(self._cell([bit_a, bit_b, carry], _TABLE_SUM))
            carry = self._cell([bit_a, bit_b, carry], _TABLE_CARRY)
        return Bus(tuple(bits)), carry

    def negate(self, a: Bus) -> Bus:
        """Two's-complement negation (~a + 1)."""
        inverted = Bus(tuple(self.not_(bit) for bit in a))
        one = self.const_bus(1, a.width)
        total, _ = self.adder(inverted, one)
        return total

    def subtractor(self, a: Bus, b: Bus) -> Bus:
        """a - b via a + ~b + 1."""
        self._check_widths(a, b)
        inverted = Bus(tuple(self.not_(bit) for bit in b))
        total, _ = self.adder(a, inverted, carry_in=self.const(1))
        return total

    def bitwise(self, op: str, a: Bus, b: Bus) -> Bus:
        """Apply a two-input cell lane-by-lane across two buses."""
        self._check_widths(a, b)
        gate = {"and": self.and_, "or": self.or_, "xor": self.xor_}[op]
        return Bus(tuple(gate(x, y) for x, y in zip(a, b)))

    def and_bus_bit(self, a: Bus, gate_bit: Source) -> Bus:
        """Mask a bus by a single bit (used by the shift-add multiplier)."""
        return Bus(tuple(self.and_(bit, gate_bit) for bit in a))

    def shift_left_const(self, a: Bus, amount: int) -> Bus:
        """Logical shift by a constant, width-preserving (bits fall off)."""
        if amount < 0:
            raise ConfigurationError("shift amount must be non-negative")
        bits: list[Source] = [self.const(0)] * min(amount, a.width)
        bits.extend(a.bits[: max(a.width - amount, 0)])
        return Bus(tuple(bits))

    def multiplier(self, a: Bus, b: Bus) -> Bus:
        """Shift-add array multiplier, result truncated to the operand width.

        Cost grows with width² — the honest silicon story for putting a
        multiplier on a fine-grained fabric.
        """
        self._check_widths(a, b)
        accumulator = self.const_bus(0, a.width)
        for position in range(b.width):
            partial = self.and_bus_bit(self.shift_left_const(a, position), b[position])
            accumulator, _ = self.adder(accumulator, partial)
        return accumulator

    def is_zero(self, a: Bus) -> Source:
        """1 when every bit of the bus is 0 (OR-tree + NOT)."""
        return self.not_(self.any_bit(a))

    def any_bit(self, a: Bus) -> Source:
        """OR-reduction of the bus."""
        spread = list(a.bits)
        while len(spread) > 1:
            merged: list[Source] = []
            for i in range(0, len(spread) - 1, 2):
                merged.append(self.or_(spread[i], spread[i + 1]))
            if len(spread) % 2:
                merged.append(spread[-1])
            spread = merged
        return spread[0]

    def equals(self, a: Bus, b: Bus) -> Source:
        """1 when the buses carry equal values."""
        self._check_widths(a, b)
        diffs = Bus(tuple(self.xor_(x, y) for x, y in zip(a, b)))
        return self.is_zero(diffs)

    def less_than(self, a: Bus, b: Bus) -> Source:
        """Unsigned a < b via the borrow of a - b."""
        self._check_widths(a, b)
        inverted = Bus(tuple(self.not_(bit) for bit in b))
        _, carry = self.adder(a, inverted, carry_in=self.const(1))
        return self.not_(carry)

    def min_(self, a: Bus, b: Bus) -> Bus:
        """A bus carrying the smaller of ``a`` and ``b``."""
        lt = self.less_than(a, b)
        return self.mux_bus(lt, b, a)

    def max_(self, a: Bus, b: Bus) -> Bus:
        """A bus carrying the larger of ``a`` and ``b``."""
        lt = self.less_than(a, b)
        return self.mux_bus(lt, a, b)

    def rom(self, address: Bus, words: "list[int]", word_width: int) -> Bus:
        """Read-only memory: one LUT per output bit over the address bus.

        Capacity is ``2**address.width`` words — on a k=4 fabric a 4-bit
        address ROM fits each output bit in exactly one cell, which is
        how the soft processor stores its program.
        """
        capacity = 1 << address.width
        if len(words) > capacity:
            raise ConfigurationError(
                f"{len(words)} words exceed ROM capacity {capacity}"
            )
        if address.width > self.fabric.k:
            raise ConfigurationError(
                f"ROM address width {address.width} exceeds LUT arity "
                f"{self.fabric.k}"
            )
        padded = list(words) + [0] * (capacity - len(words))
        bits: list[Source] = []
        for bit_position in range(word_width):
            table = 0
            for addr, word in enumerate(padded):
                if (word >> bit_position) & 1:
                    table |= 1 << addr
            bits.append(self._cell(list(address.bits), table))
        return Bus(tuple(bits))

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _check_widths(a: Bus, b: Bus) -> None:
        if a.width != b.width:
            raise ConfigurationError(
                f"bus width mismatch: {a.width} vs {b.width}"
            )
