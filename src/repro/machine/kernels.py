"""Kernel library: the same small workloads expressed for every paradigm.

The morphability argument of §III-B ("IMP-I can act as an array
processor…", "IAP-I can act as a uni-processor…") is only checkable if
the *same computation* exists in every machine's native form. This module
provides that: each kernel has a pure-Python reference plus builders for
the scalar ISA, the SIMD array ISA, the message-passing MIMD form and the
dataflow-graph form.

Data layout conventions (shared with the machines' scatter/gather
helpers): vector element ``i`` lives in bank ``i % n`` at offset
``base + i // n``; scalar machines use a single flat bank.
"""

from __future__ import annotations

from repro.core.errors import ProgramError
from repro.machine.dataflow import DataflowGraph
from repro.machine.program import Program, assemble

__all__ = [
    "vector_add_reference",
    "dot_product_reference",
    "reduction_reference",
    "fir_reference",
    "scalar_vector_add",
    "scalar_dot_product",
    "scalar_fir",
    "simd_vector_add",
    "simd_reduction_shuffle",
    "simd_gather_reverse",
    "mimd_ring_reduction",
    "mimd_shared_memory_sum",
    "dataflow_vector_add",
    "dataflow_dot_product",
    "dataflow_fir",
    "dataflow_polynomial",
]


# ---------------------------------------------------------------------------
# References
# ---------------------------------------------------------------------------


def vector_add_reference(a: "list[int]", b: "list[int]") -> list[int]:
    """Pure-Python oracle for the vector-add kernel."""
    if len(a) != len(b):
        raise ProgramError("vector length mismatch")
    return [x + y for x, y in zip(a, b)]


def dot_product_reference(a: "list[int]", b: "list[int]") -> int:
    """Pure-Python oracle for the dot-product kernel."""
    if len(a) != len(b):
        raise ProgramError("vector length mismatch")
    return sum(x * y for x, y in zip(a, b))


def reduction_reference(values: "list[int]") -> int:
    """Pure-Python oracle for the reduction kernel."""
    return sum(values)


def fir_reference(signal: "list[int]", taps: "list[int]") -> list[int]:
    """Causal FIR: y[i] = sum_k taps[k] * signal[i-k] (zero-padded)."""
    out = []
    for i in range(len(signal)):
        acc = 0
        for k, tap in enumerate(taps):
            if i - k >= 0:
                acc += tap * signal[i - k]
        out.append(acc)
    return out


# ---------------------------------------------------------------------------
# Scalar (IUP) kernels
# ---------------------------------------------------------------------------


def scalar_vector_add(length: int, *, a_base: int = 0, b_base: int = 256, out_base: int = 512) -> Program:
    """Element-wise add over a flat bank; result at ``out_base``."""
    if length <= 0:
        raise ProgramError("length must be positive")
    return assemble(
        f"""
        ; r1=i, r2=length, r3..r5 scratch
            ldi r1, 0
            ldi r2, {length}
        loop:
            ld  r3, r1, {a_base}
            ld  r4, r1, {b_base}
            add r5, r3, r4
            st  r1, r5, {out_base}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """,
        name=f"scalar-vector-add-{length}",
    )


def scalar_dot_product(length: int, *, a_base: int = 0, b_base: int = 256) -> Program:
    """Dot product over a flat bank; result left in r6."""
    if length <= 0:
        raise ProgramError("length must be positive")
    return assemble(
        f"""
            ldi r1, 0
            ldi r2, {length}
            ldi r6, 0
        loop:
            ld  r3, r1, {a_base}
            ld  r4, r1, {b_base}
            mul r5, r3, r4
            add r6, r6, r5
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """,
        name=f"scalar-dot-{length}",
    )


def scalar_fir(length: int, n_taps: int, *, sig_base: int = 0, tap_base: int = 256, out_base: int = 512) -> Program:
    """Causal FIR over a flat bank (bounds handled with an inner guard)."""
    if length <= 0 or n_taps <= 0:
        raise ProgramError("length and taps must be positive")
    return assemble(
        f"""
        ; r1=i, r2=length, r7=k, r8=taps, r9=i-k
            ldi r1, 0
            ldi r2, {length}
        outer:
            ldi r6, 0          ; acc
            ldi r7, 0          ; k
            ldi r8, {n_taps}
        inner:
            sub r9, r1, r7     ; i-k
            blt r9, r0, skip   ; r0 == 0: skip negative indices
            ld  r3, r7, {tap_base}
            ld  r4, r9, {sig_base}
            mul r5, r3, r4
            add r6, r6, r5
        skip:
            addi r7, r7, 1
            bne r7, r8, inner
            st  r1, r6, {out_base}
            addi r1, r1, 1
            bne r1, r2, outer
            halt
        """,
        name=f"scalar-fir-{length}x{n_taps}",
    )


# ---------------------------------------------------------------------------
# SIMD (IAP) kernels
# ---------------------------------------------------------------------------


def simd_vector_add(elements_per_lane: int, *, a_base: int = 0, b_base: int = 64, out_base: int = 128) -> Program:
    """Each lane adds its slice of scattered vectors (works on IAP-I)."""
    if elements_per_lane <= 0:
        raise ProgramError("elements_per_lane must be positive")
    return assemble(
        f"""
            ldi r1, 0
            ldi r2, {elements_per_lane}
        loop:
            ld  r3, r1, {a_base}
            ld  r4, r1, {b_base}
            add r5, r3, r4
            st  r1, r5, {out_base}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """,
        name=f"simd-vector-add-{elements_per_lane}",
    )


def simd_reduction_shuffle(n_lanes: int, *, value_addr: int = 0) -> Program:
    """Log-step tree reduction using SHUF (requires the DP-DP switch).

    Each lane starts with dm[value_addr]; after log2(n) shuffle-add steps
    lane 0's r3 holds the total. ``n_lanes`` must be a power of two.
    """
    if n_lanes < 2 or n_lanes & (n_lanes - 1):
        raise ProgramError("shuffle reduction needs a power-of-two lane count")
    lines = [
        "    laneid r1",
        f"    ld  r3, r0, {value_addr}",
    ]
    stride = n_lanes // 2
    while stride >= 1:
        lines += [
            f"    ldi r4, {stride}",
            "    add r5, r1, r4",     # partner lane = laneid + stride
            "    shuf r6, r3, r5",    # fetch partner's r3 (mod n wraps)
            "    add r3, r3, r6",
        ]
        stride //= 2
    lines.append("    halt")
    return Program(
        assemble("\n".join(lines)).instructions,
        name=f"simd-shuffle-reduce-{n_lanes}",
    )


def simd_gather_reverse(n_lanes: int, bank_size: int, *, src_addr: int = 0, dst_addr: int = 1) -> Program:
    """Lane ``i`` loads lane ``n-1-i``'s element via GLD (needs DP-DM switch)."""
    if n_lanes < 2:
        raise ProgramError("gather reverse needs at least two lanes")
    return assemble(
        f"""
            laneid r1
            ldi r2, {n_lanes - 1}
            sub r3, r2, r1        ; partner = n-1-lane
            ldi r4, {bank_size}
            mul r5, r3, r4        ; partner bank base
            gld r6, r5, {src_addr}
            st  r0, r6, {dst_addr}
            halt
        """,
        name=f"simd-gather-reverse-{n_lanes}",
    )


# ---------------------------------------------------------------------------
# MIMD (IMP) kernels
# ---------------------------------------------------------------------------


def mimd_ring_reduction(n_cores: int, *, value_addr: int = 0) -> list[Program]:
    """Ring all-reduce by message passing (requires DP-DP / SEND-RECV).

    Every core contributes dm[value_addr]; core 0 ends with the total in
    r6. Cores pass partial sums around the ring.
    """
    if n_cores < 2:
        raise ProgramError("ring reduction needs at least two cores")
    programs = []
    for core in range(n_cores):
        succ = (core + 1) % n_cores
        pred = (core - 1) % n_cores
        if core == 0:
            text = f"""
                ld  r6, r0, {value_addr}
                ldi r1, {succ}
                send r1, r6
                ldi r2, {pred}
                recv r6, r2
                halt
            """
        else:
            text = f"""
                ld  r3, r0, {value_addr}
                ldi r2, {pred}
                recv r5, r2
                add r6, r5, r3
                ldi r1, {succ}
                send r1, r6
                halt
            """
        programs.append(assemble(text, name=f"ring-reduce-core{core}"))
    return programs


def mimd_shared_memory_sum(
    n_cores: int,
    *,
    value_addr: int = 0,
    result_addr: int = 1,
    bank_size: int = 1024,
) -> list[Program]:
    """Core 0 gathers every bank's value through GLD (needs DP-DM switch).

    Workers simply halt (their contribution already sits in their bank);
    core 0 sums bank[i][value_addr] into its r6 and stores at
    result_addr. Barriers keep the phases ordered. ``bank_size`` must
    match the target machine's bank size (global addresses are
    bank*bank_size+offset).
    """
    if n_cores < 2:
        raise ProgramError("shared-memory sum needs at least two cores")
    worker = assemble(
        """
            barrier
            halt
        """,
        name="shared-sum-worker",
    )
    gather_lines = ["    barrier", "    ldi r6, 0"]
    for core in range(n_cores):
        gather_lines += [
            f"    ldi r1, {core * bank_size + value_addr}",
            "    gld r2, r1, 0",
            "    add r6, r6, r2",
        ]
    gather_lines += [f"    st r0, r6, {result_addr}", "    halt"]
    leader = Program(
        assemble("\n".join(gather_lines)).instructions, name="shared-sum-leader"
    )
    return [leader] + [worker] * (n_cores - 1)


# ---------------------------------------------------------------------------
# Dataflow kernels
# ---------------------------------------------------------------------------


def dataflow_vector_add(length: int) -> DataflowGraph:
    """Fully parallel element-wise add: one ADD node per element."""
    if length <= 0:
        raise ProgramError("length must be positive")
    graph = DataflowGraph(name=f"df-vector-add-{length}")
    for i in range(length):
        graph.input(f"a{i}")
        graph.input(f"b{i}")
        graph.add(f"s{i}", "add", f"a{i}", f"b{i}")
        graph.output(f"y{i}", f"s{i}")
    return graph


def dataflow_dot_product(length: int) -> DataflowGraph:
    """Multiply lanes then a balanced adder tree."""
    if length <= 0:
        raise ProgramError("length must be positive")
    graph = DataflowGraph(name=f"df-dot-{length}")
    level = []
    for i in range(length):
        graph.input(f"a{i}")
        graph.input(f"b{i}")
        graph.add(f"p{i}", "mul", f"a{i}", f"b{i}")
        level.append(f"p{i}")
    round_id = 0
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            node = f"t{round_id}_{i // 2}"
            graph.add(node, "add", level[i], level[i + 1])
            merged.append(node)
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
        round_id += 1
    graph.output("dot", level[0])
    return graph


def dataflow_fir(length: int, taps: "list[int]") -> DataflowGraph:
    """Unrolled causal FIR with constant taps."""
    if length <= 0 or not taps:
        raise ProgramError("length and taps must be non-trivial")
    graph = DataflowGraph(name=f"df-fir-{length}x{len(taps)}")
    for i in range(length):
        graph.input(f"x{i}")
    for k, tap in enumerate(taps):
        graph.const(f"c{k}", tap)
    for i in range(length):
        terms = []
        for k in range(len(taps)):
            if i - k < 0:
                continue
            node = f"m{i}_{k}"
            graph.add(node, "mul", f"c{k}", f"x{i - k}")
            terms.append(node)
        acc = terms[0]
        for j, term in enumerate(terms[1:], start=1):
            node = f"a{i}_{j}"
            graph.add(node, "add", acc, term)
            acc = node
        graph.output(f"y{i}", acc)
    return graph


def dataflow_polynomial(coefficients: "list[int]") -> DataflowGraph:
    """Horner evaluation of sum(c_k * x^k) as a dataflow chain."""
    if not coefficients:
        raise ProgramError("need at least one coefficient")
    graph = DataflowGraph(name=f"df-poly-{len(coefficients) - 1}")
    graph.input("x")
    acc = graph.const("cN", coefficients[-1])
    for index in range(len(coefficients) - 2, -1, -1):
        mul = graph.add(f"h{index}m", "mul", acc, "x")
        graph.const(f"c{index}", coefficients[index])
        acc = graph.add(f"h{index}a", "add", mul, f"c{index}")
    graph.output("y", acc)
    return graph
