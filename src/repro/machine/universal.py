"""The universal-flow spatial processor (USP) — a reconfigurable machine.

The paper's USP claim is that a fine-grained fabric "can implement both
Instruction flow or data flow machines" (§II-C-1). This module proves it
operationally on the gate-level :class:`~repro.machine.fabric.LutFabric`:

* :meth:`UniversalMachine.configure_dataflow` synthesises a dataflow
  graph into a combinational/arithmetic netlist — the fabric *becomes* a
  data-flow machine (no instruction processor anywhere);
* :meth:`UniversalMachine.configure_soft_processor` synthesises a small
  stored-program accumulator CPU — program ROM, program counter, decode,
  datapath, all out of LUT cells — the fabric *becomes* an
  instruction-flow machine.

Both configurations report their measured configuration-bit counts,
which is the quantitative form of the paper's "enormous reconfiguration
overhead" argument for the USP class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import CapabilityError, ConfigurationError, ProgramError
from repro.faults import FaultInjector, FaultPlan, FaultPolicy, FaultRuntime
from repro.machine.base import Capability, ExecutionResult, traced_run
from repro.machine.dataflow import DataflowGraph, DFOp
from repro.machine.fabric import LutFabric
from repro.machine.netlist import Bus, NetlistBuilder

__all__ = ["SoftOp", "SoftInstruction", "SoftProgram", "UniversalMachine"]


# ---------------------------------------------------------------------------
# Soft processor ISA (the instruction-flow personality)
# ---------------------------------------------------------------------------


class SoftOp(enum.Enum):
    """2-bit opcode space of the soft accumulator CPU."""

    LDI = 0   # acc <- imm
    ADD = 1   # acc <- acc + imm  (mod 256)
    JNZ = 2   # if acc != 0: pc <- imm & 0xF
    HALT = 3

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class SoftInstruction:
    """One 10-bit soft instruction: 2-bit opcode + 8-bit operand."""

    op: SoftOp
    operand: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.operand < 256:
            raise ProgramError("soft operand must fit in 8 bits")
        if self.op is SoftOp.JNZ and self.operand >= 16:
            raise ProgramError("soft JNZ target must fit in 4 bits (16-entry ROM)")

    def encode(self) -> int:
        """The instruction packed into its ROM word (op high bits, operand low)."""
        return (self.op.value << 8) | self.operand


@dataclass
class SoftProgram:
    """Up to 16 soft instructions (the ROM capacity of a 4-bit PC)."""

    instructions: list[SoftInstruction]
    name: str = "soft-program"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ProgramError("soft program must not be empty")
        if len(self.instructions) > 16:
            raise ProgramError("soft program exceeds the 16-entry ROM")
        for instruction in self.instructions:
            if instruction.op is SoftOp.JNZ and instruction.operand >= len(
                self.instructions
            ) and instruction.operand >= 16:
                raise ProgramError("JNZ target outside ROM")

    def words(self) -> list[int]:
        """The program encoded as ROM words."""
        return [instruction.encode() for instruction in self.instructions]

    def reference_run(self, *, max_cycles: int = 10_000) -> tuple[int, int]:
        """Pure-Python semantics: returns (final accumulator, cycles)."""
        acc = 0
        pc = 0
        cycles = 0
        while True:
            cycles += 1
            if cycles > max_cycles:
                raise ProgramError("soft reference run exceeded max_cycles")
            if pc >= len(self.instructions):
                raise ProgramError("soft PC ran past the program")
            instruction = self.instructions[pc]
            if instruction.op is SoftOp.LDI:
                acc = instruction.operand
                pc += 1
            elif instruction.op is SoftOp.ADD:
                acc = (acc + instruction.operand) & 0xFF
                pc += 1
            elif instruction.op is SoftOp.JNZ:
                pc = instruction.operand if acc != 0 else pc + 1
            else:  # HALT
                return acc, cycles


# ---------------------------------------------------------------------------
# The universal machine
# ---------------------------------------------------------------------------

#: Dataflow ops the synthesiser supports, with rough cell-cost notes.
_SYNTHESISABLE = {
    DFOp.INPUT, DFOp.CONST, DFOp.OUTPUT,
    DFOp.ADD, DFOp.SUB, DFOp.NEG,
    DFOp.AND, DFOp.OR, DFOp.XOR,
    DFOp.MUL, DFOp.MIN, DFOp.MAX,
}


class UniversalMachine:
    """USP: one LUT fabric, many personalities."""

    def __init__(self, n_cells: int = 4096, *, k: int = 4):
        self.fabric = LutFabric(n_cells, k=k)
        self._personality: str | None = None
        self._dataflow: DataflowGraph | None = None
        self._width: int = 0
        self._soft_program: SoftProgram | None = None

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        return {
            Capability.DATAFLOW_EXECUTION,
            Capability.INSTRUCTION_EXECUTION,
            Capability.DATA_PARALLEL,
            Capability.LANE_SHUFFLE,
            Capability.GLOBAL_MEMORY,
            Capability.MESSAGE_PASSING,
            Capability.MULTIPLE_STREAMS,
            Capability.IP_COMPOSITION,
        }

    @property
    def personality(self) -> str | None:
        """Which machine the fabric currently implements (None = blank)."""
        return self._personality

    def config_bits_used(self) -> int:
        """Measured configuration cost of the current personality."""
        return self.fabric.config_bits()

    # -- data-flow personality ------------------------------------------------

    def configure_dataflow(self, graph: DataflowGraph, *, width: int = 8) -> int:
        """Synthesise a dataflow graph; returns cells used.

        Arithmetic is two's-complement modulo ``2**width``. Unsupported
        operators (DIV) raise ConfigurationError — they would need a
        sequential divider macro.
        """
        if width < 2 or width > 16:
            raise ConfigurationError("synthesis width must lie in 2..16")
        graph.validate()
        for node in graph.nodes.values():
            if node.op not in _SYNTHESISABLE:
                raise ConfigurationError(
                    f"operator {node.op.value!r} (node {node.node_id!r}) is "
                    "not synthesisable on the fabric"
                )
        self.fabric.clear()
        builder = NetlistBuilder(self.fabric)
        buses: dict[str, Bus] = {}
        for node_id in graph.topological_order():
            node = graph.node(node_id)
            if node.op is DFOp.INPUT:
                buses[node_id] = builder.input_bus(node_id, width)
            elif node.op is DFOp.CONST:
                assert node.value is not None
                buses[node_id] = builder.const_bus(node.value & ((1 << width) - 1), width)
            elif node.op is DFOp.OUTPUT:
                source_bus = buses[node.inputs[0]]
                # Materialise output bits as named cells.
                out_bits = [builder.buf(bit) for bit in source_bus]
                for position, bit in enumerate(out_bits):
                    _, cell = bit
                    self.fabric.name_output(f"{node_id}[{position}]", int(cell))
                buses[node_id] = Bus(tuple(out_bits))
            elif node.op is DFOp.NEG:
                buses[node_id] = builder.negate(buses[node.inputs[0]])
            else:
                a = buses[node.inputs[0]]
                b = buses[node.inputs[1]]
                if node.op is DFOp.ADD:
                    buses[node_id], _ = builder.adder(a, b)
                elif node.op is DFOp.SUB:
                    buses[node_id] = builder.subtractor(a, b)
                elif node.op is DFOp.MUL:
                    buses[node_id] = builder.multiplier(a, b)
                elif node.op is DFOp.AND:
                    buses[node_id] = builder.bitwise("and", a, b)
                elif node.op is DFOp.OR:
                    buses[node_id] = builder.bitwise("or", a, b)
                elif node.op is DFOp.XOR:
                    buses[node_id] = builder.bitwise("xor", a, b)
                elif node.op is DFOp.MIN:
                    buses[node_id] = builder.min_(a, b)
                elif node.op is DFOp.MAX:
                    buses[node_id] = builder.max_(a, b)
                else:  # pragma: no cover - guarded above
                    raise ConfigurationError(f"unhandled op {node.op}")
        self._personality = "dataflow"
        self._dataflow = graph
        self._width = width
        self._soft_program = None
        return builder.cells_used

    @traced_run("machine.run_dataflow")
    def run_dataflow(
        self,
        inputs: "dict[str, int] | None" = None,
        *,
        faults: "FaultPlan | FaultInjector | None" = None,
        policy: "FaultPolicy | None" = None,
    ) -> ExecutionResult:
        """Evaluate the configured dataflow netlist on bound inputs.

        Combinational settle takes one fabric cycle; outputs are read as
        width-bit two's-complement integers.

        The USP is the taxonomy's most fault-flexible class: every cell
        sits behind switched fine-granularity interconnect, so a dead
        LUT cell is always remappable — the netlist re-places onto spare
        cells. Each permanent cell fault costs one extra reconfiguration
        cycle; transients cost their stall as usual. ``fail-fast`` still
        aborts, and ``retry`` still refuses permanent faults.
        """
        if self._personality != "dataflow" or self._dataflow is None:
            raise CapabilityError(
                "fabric is not configured as a dataflow machine"
            )
        runtime = FaultRuntime.create(
            faults,
            policy,
            n_units=max(self.fabric.used_cells, 1),
            can_remap=True,  # fine-granularity 'x' everywhere (§II-C-1)
            machine="USP(dataflow)",
            unit_noun="cell",
        )
        graph = self._dataflow
        width = self._width
        bound = dict(inputs or {})
        missing = set(graph.input_names) - set(bound)
        if missing:
            raise ProgramError(f"unbound dataflow inputs: {sorted(missing)}")
        bit_inputs: dict[str, int] = {}
        mask = (1 << width) - 1
        for name, value in bound.items():
            encoded = value & mask
            for position in range(width):
                bit_inputs[f"{name}[{position}]"] = (encoded >> position) & 1
        cycles = 1
        if runtime is not None:
            # The evaluation is combinational, so the whole plan lands
            # before the settle: drain every event, then charge one
            # reconfiguration cycle per dead cell routed around.
            cycles += runtime.absorb(FaultPlan.DRAIN_CYCLE)
            cycles += runtime.remap_events + runtime.degraded_units
        raw = self.fabric.step(bit_inputs)
        outputs: dict[str, int] = {}
        for name in graph.output_names:
            value = 0
            for position in range(width):
                value |= raw[f"{name}[{position}]"] << position
            if value & (1 << (width - 1)):  # sign-extend
                value -= 1 << width
            outputs[name] = value
        stats = {
            "machine": "USP(dataflow)",
            "cells": self.fabric.used_cells,
            "config_bits": self.config_bits_used(),
            "width": width,
        }
        if runtime is not None:
            stats.update(runtime.stats())
        return ExecutionResult(
            cycles=cycles,
            operations=graph.operator_count(),
            outputs=outputs,
            stats=stats,
        )

    # -- instruction-flow personality ---------------------------------------

    def configure_soft_processor(self, program: SoftProgram) -> int:
        """Synthesise the accumulator CPU with ``program`` in ROM.

        Architecture (everything below is LUT cells on the fabric):

        * 4-bit PC register + ripple incrementer,
        * 10-bit instruction ROM (one LUT per bit over the PC),
        * 2-bit opcode decode,
        * 8-bit accumulator with LDI/ADD datapath (ripple adder + muxes),
        * sticky HALT flag freezing PC and accumulator,
        * JNZ redirect when the accumulator is non-zero.

        Returns cells used.
        """
        self.fabric.clear()
        builder = NetlistBuilder(self.fabric)

        pc = builder.register_placeholder(4)
        acc = builder.register_placeholder(8)
        halted = builder.register_placeholder(1)

        word = builder.rom(pc, program.words(), 10)
        operand = Bus(word.bits[:8])
        op0, op1 = word.bits[8], word.bits[9]

        not_op0 = builder.not_(op0)
        not_op1 = builder.not_(op1)
        is_ldi = builder.and_(not_op1, not_op0)      # 00
        is_add = builder.and_(not_op1, op0)          # 01
        is_jnz = builder.and_(op1, not_op0)          # 10
        is_halt = builder.and_(op1, op0)             # 11

        # Accumulator datapath.
        total, _ = builder.adder(acc, operand)
        after_ldi = builder.mux_bus(is_ldi, acc, operand)
        after_add = builder.mux_bus(is_add, after_ldi, total)
        running = builder.not_(halted[0])
        acc_next = builder.mux_bus(running, acc, after_add)
        builder.drive_register(acc, acc_next)

        # Program counter.
        one = builder.const_bus(1, 4)
        pc_inc, _ = builder.adder(pc, one)
        acc_nonzero = builder.any_bit(acc)
        take_jump = builder.and3(is_jnz, acc_nonzero, running)
        target = Bus(operand.bits[:4])
        pc_next_running = builder.mux_bus(take_jump, pc_inc, target)
        freeze = builder.or_(halted[0], is_halt)
        pc_next = builder.mux_bus(freeze, pc_next_running, pc)
        builder.drive_register(pc, pc_next)

        # Sticky halt.
        halt_next = builder.or_(halted[0], is_halt)
        builder.drive_register(halted, Bus((halt_next,)))

        # Observability.
        for position, bit in enumerate(acc):
            _, cell = bit
            self.fabric.name_output(f"acc[{position}]", int(cell))
        for position, bit in enumerate(pc):
            _, cell = bit
            self.fabric.name_output(f"pc[{position}]", int(cell))
        _, halt_cell = halted[0]
        self.fabric.name_output("halted", int(halt_cell))

        self._personality = "soft-processor"
        self._soft_program = program
        self._dataflow = None
        return builder.cells_used

    @traced_run("machine.run_soft_processor")
    def run_soft_processor(self, *, max_cycles: int = 10_000) -> ExecutionResult:
        """Clock the soft CPU until its HALT flag rises; returns the acc."""
        if self._personality != "soft-processor" or self._soft_program is None:
            raise CapabilityError(
                "fabric is not configured as a soft instruction processor"
            )
        cycles = 0
        while True:
            cycles += 1
            if cycles > max_cycles:
                raise ProgramError("soft processor exceeded max_cycles")
            outputs = self.fabric.step()
            if outputs["halted"]:
                break
        acc = sum(outputs[f"acc[{i}]"] << i for i in range(8))
        return ExecutionResult(
            cycles=cycles,
            operations=cycles,  # one instruction per cycle until halt
            outputs={"acc": acc},
            stats={
                "machine": "USP(soft-processor)",
                "cells": self.fabric.used_cells,
                "config_bits": self.config_bits_used(),
                "program": self._soft_program.name,
            },
        )
