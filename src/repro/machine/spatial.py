"""Instruction-flow spatial processors — the ISP classes (Fig. 5).

What distinguishes ISP from IMP is the IP-IP switch: instruction
processors "can be connected together to create a bigger or more complex
IP" (§II-C-2b). The executable model realises that as *IP fusion*: a
group of cores surrenders its individual program counters to a fused
controller that issues one VLIW bundle per cycle — one slot per member
DP — from a single wide instruction memory.

The same hardware can therefore morph between organisations:

* no fusion — behaves exactly like the IMP of the same sub-type;
* one group of all cores — behaves like a wide VLIW/array machine;
* arbitrary partition into groups — a mix of wide and narrow machines,
  sized "to match the resources needed to run an algorithm".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ProgramError
from repro.machine.base import Capability, ExecutionResult, check_capabilities, traced_run
from repro.machine.multiprocessor import Multiprocessor, MultiprocessorSubtype
from repro.machine.program import Instruction, Program, required_capabilities

__all__ = ["VliwBundle", "VliwProgram", "SpatialMachine"]


@dataclass(frozen=True, slots=True)
class VliwBundle:
    """One wide instruction: one slot per fused DP (None = that DP idles)."""

    slots: tuple["Instruction | None", ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ProgramError("a VLIW bundle needs at least one slot")
        from repro.machine.program import Opcode

        for slot in self.slots:
            if slot is None:
                continue
            if slot.is_branch:
                raise ProgramError(
                    "branches live in the bundle's control slot, not data "
                    "slots; use VliwProgram(control=...)"
                )
            if slot.op is Opcode.HALT:
                raise ProgramError(
                    "HALT has no meaning inside a fused bundle — the fused "
                    "controller stops when the bundle list ends"
                )

    @property
    def width(self) -> int:
        """Number of operation slots in the bundle."""
        return len(self.slots)


@dataclass
class VliwProgram:
    """A straight-line-with-loops wide program for a fused IP group.

    ``control`` optionally maps bundle index -> branch instruction
    evaluated on member 0's registers after the bundle's data slots
    complete (the fused controller owns control flow).
    """

    bundles: list[VliwBundle]
    name: str = "vliw"
    control: dict[int, Instruction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bundles:
            raise ProgramError("a VLIW program needs at least one bundle")
        widths = {bundle.width for bundle in self.bundles}
        if len(widths) != 1:
            raise ProgramError(f"inconsistent bundle widths: {sorted(widths)}")
        for index, branch in self.control.items():
            if not 0 <= index < len(self.bundles):
                raise ProgramError(f"control entry {index} out of range")
            if not branch.is_branch:
                raise ProgramError("control slots must hold branch instructions")
            if not 0 <= branch.imm <= len(self.bundles):
                raise ProgramError(
                    f"control branch at {index} targets {branch.imm}, outside "
                    f"0..{len(self.bundles)}"
                )

    @property
    def width(self) -> int:
        """The widest bundle in the program."""
        return self.bundles[0].width

    def __len__(self) -> int:
        return len(self.bundles)


class SpatialMachine(Multiprocessor):
    """ISP: a multiprocessor whose IPs can fuse into wider issue units."""

    def __init__(
        self,
        n_cores: int,
        subtype: MultiprocessorSubtype = MultiprocessorSubtype.IMP_IV,
        *,
        bank_size: int = 1024,
    ):
        super().__init__(n_cores, subtype, bank_size=bank_size)
        self._groups: list[tuple[int, ...]] = []

    @property
    def label(self) -> str:
        """Display label for this machine instance."""
        # ISP shares the sub-type numbering with IMP; the IP-IP switch is
        # what this class adds.
        return self.subtype.label.replace("IMP", "ISP")

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        caps = super().capabilities()
        caps.add(Capability.IP_COMPOSITION)
        return caps

    # -- fusion ------------------------------------------------------------

    def fuse(self, members: "list[int]") -> int:
        """Fuse cores into one issue group; returns the group index.

        Members must be distinct, in range, and not already fused — the
        IP-IP switch associates each IP with at most one composite.
        """
        if len(members) < 2:
            raise ProgramError("a fused group needs at least two IPs")
        if len(set(members)) != len(members):
            raise ProgramError("duplicate cores in fusion request")
        already = {m for group in self._groups for m in group}
        for member in members:
            if not 0 <= member < self.n_cores:
                raise ProgramError(f"core {member} out of range")
            if member in already:
                raise ProgramError(f"core {member} is already fused")
        self._groups.append(tuple(members))
        return len(self._groups) - 1

    def defuse(self) -> None:
        """Dissolve all fused groups (back to plain IMP behaviour)."""
        self._groups = []

    @property
    def groups(self) -> list[tuple[int, ...]]:
        """The currently fused issue groups, in creation order."""
        return list(self._groups)

    # -- execution -----------------------------------------------------------

    @traced_run("machine.run_fused")
    def run_fused(
        self,
        group: int,
        program: VliwProgram,
        *,
        max_cycles: int = 1_000_000,
    ) -> ExecutionResult:
        """Execute a wide program on one fused group.

        Each cycle issues one bundle: slot ``k`` executes on member ``k``'s
        DP; the optional control slot then redirects the shared bundle
        counter using member 0's registers.
        """
        if not 0 <= group < len(self._groups):
            raise ProgramError(f"no fused group {group}")
        members = self._groups[group]
        if program.width != len(members):
            raise ProgramError(
                f"program width {program.width} != group size {len(members)}"
            )
        flat = [slot for bundle in program.bundles for slot in bundle.slots if slot]
        if flat:
            check_capabilities(
                self.capabilities(),
                required_capabilities(Program(flat, name=program.name)),
                machine=self.label,
            )
        pc = 0
        cycles = 0
        operations = 0
        cores = [self.cores[m] for m in members]
        while pc < len(program):
            cycles += 1
            if cycles > max_cycles:
                raise ProgramError(f"{self.label}: exceeded {max_cycles} cycles")
            bundle = program.bundles[pc]
            for core, slot in zip(cores, bundle.slots):
                if slot is None:
                    continue
                core.pc = pc
                outcome = core.execute(slot, self._port)
                if not outcome.executed:
                    raise ProgramError(
                        "blocking operations are not allowed inside VLIW "
                        "bundles"
                    )
                operations += 1
            branch = program.control.get(pc)
            if branch is not None:
                lead = cores[0]
                regs = lead.registers
                taken = True
                from repro.machine.program import Opcode

                if branch.op is Opcode.BEQ:
                    taken = regs[branch.rs1] == regs[branch.rs2]
                elif branch.op is Opcode.BNE:
                    taken = regs[branch.rs1] != regs[branch.rs2]
                elif branch.op is Opcode.BLT:
                    taken = regs[branch.rs1] < regs[branch.rs2]
                pc = branch.imm if taken else pc + 1
            else:
                pc += 1
        return ExecutionResult(
            cycles=cycles,
            operations=operations,
            outputs={
                "registers": [list(core.registers) for core in cores],
            },
            stats={
                "machine": self.label,
                "group": members,
                "issue_width": program.width,
            },
        )
