"""Token-driven data-flow machines (DUP and DMP-I..IV).

A data-flow machine has no instruction processor: "data elements carry
instructions which are then executed on the arrival of the data at the
inputs of the processing elements" (§II-C-1). The executable model is a
static, acyclic dataflow graph whose operator nodes fire when all input
tokens are present.

:class:`DataflowMachine` schedules a graph onto ``n`` data processors.
Each DP fires at most one ready operator per cycle; a value crossing a
partition boundary costs extra latency that depends on the machine's
sub-type, and sub-types without any inter-DP path (DMP-I) refuse graphs
whose partitions exchange data — the operational face of the sub-type
flexibility ladder of Fig. 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import CapabilityError, ProgramError
from repro.machine.base import Capability, ExecutionResult, traced_run

__all__ = ["DFOp", "DFNode", "DataflowGraph", "DataflowMachine", "DataflowSubtype"]


class DFOp(enum.Enum):
    """Operator vocabulary of the dataflow graphs."""

    INPUT = "input"
    CONST = "const"
    OUTPUT = "output"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NEG = "neg"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_ARITY: dict[DFOp, int] = {
    DFOp.INPUT: 0,
    DFOp.CONST: 0,
    DFOp.OUTPUT: 1,
    DFOp.NEG: 1,
    DFOp.ADD: 2,
    DFOp.SUB: 2,
    DFOp.MUL: 2,
    DFOp.DIV: 2,
    DFOp.MIN: 2,
    DFOp.MAX: 2,
    DFOp.AND: 2,
    DFOp.OR: 2,
    DFOp.XOR: 2,
}


def _apply(op: DFOp, args: list[int]) -> int:
    if op is DFOp.NEG:
        return -args[0]
    a, b = args
    if op is DFOp.ADD:
        return a + b
    if op is DFOp.SUB:
        return a - b
    if op is DFOp.MUL:
        return a * b
    if op is DFOp.DIV:
        if b == 0:
            raise ProgramError("dataflow division by zero")
        return int(a / b)
    if op is DFOp.MIN:
        return min(a, b)
    if op is DFOp.MAX:
        return max(a, b)
    if op is DFOp.AND:
        return a & b
    if op is DFOp.OR:
        return a | b
    if op is DFOp.XOR:
        return a ^ b
    raise ProgramError(f"operator {op} cannot be applied")  # pragma: no cover


@dataclass(frozen=True, slots=True)
class DFNode:
    """One operator node: id, op, ordered input node ids, optional literal."""

    node_id: str
    op: DFOp
    inputs: tuple[str, ...] = ()
    value: int | None = None  # CONST literal

    def __post_init__(self) -> None:
        expected = _ARITY[self.op]
        if len(self.inputs) != expected:
            raise ProgramError(
                f"node {self.node_id!r}: {self.op.value} takes {expected} "
                f"input(s), got {len(self.inputs)}"
            )
        if self.op is DFOp.CONST and self.value is None:
            raise ProgramError(f"CONST node {self.node_id!r} needs a value")
        if self.op is not DFOp.CONST and self.value is not None:
            raise ProgramError(f"only CONST nodes carry a literal value")


class DataflowGraph:
    """A static acyclic dataflow program.

    Build with :meth:`add`; INPUT nodes are bound at run time by name,
    OUTPUT nodes name the results.
    """

    def __init__(self, name: str = "dataflow"):
        self.name = name
        self._nodes: dict[str, DFNode] = {}
        self._order: list[str] | None = None

    # -- construction ------------------------------------------------------

    def add(
        self,
        node_id: str,
        op: "DFOp | str",
        *inputs: str,
        value: int | None = None,
    ) -> str:
        """Add a node; returns its id for chaining."""
        if node_id in self._nodes:
            raise ProgramError(f"duplicate dataflow node id {node_id!r}")
        resolved = op if isinstance(op, DFOp) else DFOp(op)
        for upstream in inputs:
            if upstream not in self._nodes:
                raise ProgramError(
                    f"node {node_id!r} references unknown input {upstream!r} "
                    "(add nodes in dependency order)"
                )
        self._nodes[node_id] = DFNode(node_id, resolved, tuple(inputs), value)
        self._order = None
        return node_id

    def input(self, node_id: str) -> str:
        """Add an INPUT node named ``node_id``."""
        return self.add(node_id, DFOp.INPUT)

    def const(self, node_id: str, value: int) -> str:
        """Add a CONST node named ``node_id`` holding ``value``."""
        return self.add(node_id, DFOp.CONST, value=value)

    def output(self, node_id: str, source: str) -> str:
        """Add an OUTPUT node named ``node_id`` fed by ``source``."""
        return self.add(node_id, DFOp.OUTPUT, source)

    # -- structure -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> dict[str, DFNode]:
        """Every node keyed by id, in insertion order."""
        return dict(self._nodes)

    def node(self, node_id: str) -> DFNode:
        """Look up one node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise ProgramError(f"unknown dataflow node {node_id!r}") from exc

    @property
    def input_names(self) -> tuple[str, ...]:
        """Ids of the INPUT nodes, in insertion order."""
        return tuple(n.node_id for n in self._nodes.values() if n.op is DFOp.INPUT)

    @property
    def output_names(self) -> tuple[str, ...]:
        """Ids of the OUTPUT nodes, in insertion order."""
        return tuple(n.node_id for n in self._nodes.values() if n.op is DFOp.OUTPUT)

    def topological_order(self) -> list[str]:
        """Insertion order is already topological (enforced by add)."""
        if self._order is None:
            self._order = list(self._nodes)
        return self._order

    def edges(self) -> list[tuple[str, str]]:
        """Every producer-to-consumer edge in the graph."""
        return [
            (upstream, node.node_id)
            for node in self._nodes.values()
            for upstream in node.inputs
        ]

    def operator_count(self) -> int:
        """Nodes that occupy a DP when firing (everything but INPUT)."""
        return sum(1 for n in self._nodes.values() if n.op is not DFOp.INPUT)

    def validate(self) -> None:
        """Check the graph is well-formed, raising if it is not."""
        if not self.output_names:
            raise ProgramError(f"graph {self.name!r} has no OUTPUT node")

    # -- reference semantics ----------------------------------------------

    def evaluate(self, inputs: "dict[str, int] | None" = None) -> dict[str, int]:
        """Pure functional evaluation — the semantic ground truth that
        every machine execution is checked against."""
        self.validate()
        bound = dict(inputs or {})
        missing = set(self.input_names) - set(bound)
        if missing:
            raise ProgramError(f"unbound dataflow inputs: {sorted(missing)}")
        values: dict[str, int] = {}
        for node_id in self.topological_order():
            node = self._nodes[node_id]
            if node.op is DFOp.INPUT:
                values[node_id] = bound[node_id]
            elif node.op is DFOp.CONST:
                assert node.value is not None
                values[node_id] = node.value
            elif node.op is DFOp.OUTPUT:
                values[node_id] = values[node.inputs[0]]
            else:
                values[node_id] = _apply(op=node.op, args=[values[i] for i in node.inputs])
        return {name: values[name] for name in self.output_names}


class DataflowSubtype(enum.Enum):
    """The four DMP sub-types of Fig. 3 (plus the uni-processor DUP)."""

    DUP = ("DUP", False, False)
    DMP_I = ("DMP-I", False, False)
    DMP_II = ("DMP-II", False, True)
    DMP_III = ("DMP-III", True, False)
    DMP_IV = ("DMP-IV", True, True)

    def __init__(self, label: str, dm_switched: bool, dp_switched: bool):
        self.label = label
        self.dm_switched = dm_switched    # DP-DM crossbar (shared memory path)
        self.dp_switched = dp_switched    # DP-DP crossbar (direct token path)

    @property
    def cross_partition_latency(self) -> int | None:
        """Extra cycles for a value crossing DPs; ``None`` = impossible.

        A DP-DP crossbar forwards tokens directly (1 cycle); without it, a
        DP-DM crossbar lets the producer write and the consumer read a
        shared bank (2 cycles); DMP-I has neither path.
        """
        if self.dp_switched:
            return 1
        if self.dm_switched:
            return 2
        return None


@dataclass
class _PendingValue:
    value: int
    ready_at: int


class DataflowMachine:
    """``n`` data processors firing a static dataflow graph.

    Parameters
    ----------
    n_dps:
        Data-processor count; 1 models DUP.
    subtype:
        The DMP sub-type governing cross-partition communication.
    placement:
        Optional explicit node->DP map; defaults to round-robin over the
        topological order (INPUT nodes live with their first consumer).
    """

    def __init__(
        self,
        n_dps: int,
        subtype: DataflowSubtype = DataflowSubtype.DMP_IV,
        *,
        placement: "dict[str, int] | None" = None,
    ):
        if n_dps <= 0:
            raise ValueError("n_dps must be positive")
        if n_dps == 1 and subtype is not DataflowSubtype.DUP:
            # A single DP is exactly the DUP class.
            subtype = DataflowSubtype.DUP
        if n_dps > 1 and subtype is DataflowSubtype.DUP:
            raise ValueError("DUP has exactly one data processor")
        self.n_dps = n_dps
        self.subtype = subtype
        self._placement_override = dict(placement) if placement else None

    # -- capability view -----------------------------------------------------

    def capabilities(self) -> set[Capability]:
        """The capability set this machine grants; programs needing more are refused."""
        caps = {Capability.DATAFLOW_EXECUTION}
        if self.n_dps > 1:
            caps.add(Capability.DATA_PARALLEL)
        if self.subtype.dp_switched:
            caps.add(Capability.LANE_SHUFFLE)
        if self.subtype.dm_switched:
            caps.add(Capability.GLOBAL_MEMORY)
        return caps

    # -- placement ---------------------------------------------------------

    def place(self, graph: DataflowGraph) -> dict[str, int]:
        """Node -> DP assignment used by :meth:`run`."""
        if self._placement_override is not None:
            placement = dict(self._placement_override)
            unknown = set(placement) - set(graph.nodes)
            if unknown:
                raise ProgramError(f"placement names unknown nodes: {sorted(unknown)}")
            for node_id in graph.topological_order():
                if node_id not in placement:
                    raise ProgramError(f"placement misses node {node_id!r}")
                if not 0 <= placement[node_id] < self.n_dps:
                    raise ProgramError(
                        f"placement of {node_id!r} onto DP "
                        f"{placement[node_id]} exceeds 0..{self.n_dps - 1}"
                    )
            return placement
        placement: dict[str, int] = {}
        cursor = 0
        for node_id in graph.topological_order():
            node = graph.node(node_id)
            if node.op is DFOp.INPUT:
                continue  # assigned with first consumer below
            placement[node_id] = cursor % self.n_dps
            cursor += 1
        for node_id in graph.topological_order():
            node = graph.node(node_id)
            if node.op is DFOp.INPUT:
                consumers = [
                    placement[n.node_id]
                    for n in graph.nodes.values()
                    if node_id in n.inputs
                ]
                placement[node_id] = consumers[0] if consumers else 0
        return placement

    def _check_feasible(self, graph: DataflowGraph, placement: dict[str, int]) -> None:
        latency = self.subtype.cross_partition_latency
        if latency is not None or self.n_dps == 1:
            return
        crossings = [
            (src, dst)
            for src, dst in graph.edges()
            if placement[src] != placement[dst]
        ]
        if crossings:
            raise CapabilityError(
                f"{self.subtype.label} has no inter-DP path (neither DP-DP "
                f"nor DP-DM switch) but the placement crosses partitions on "
                f"{len(crossings)} edge(s), e.g. {crossings[0][0]!r}->"
                f"{crossings[0][1]!r}"
            )

    # -- execution ------------------------------------------------------------

    @traced_run("machine.run")
    def run(
        self,
        graph: DataflowGraph,
        inputs: "dict[str, int] | None" = None,
        *,
        max_cycles: int = 100_000,
    ) -> ExecutionResult:
        """Fire the graph to completion; outputs match graph.evaluate()."""
        graph.validate()
        placement = self.place(graph)
        self._check_feasible(graph, placement)
        bound = dict(inputs or {})
        missing = set(graph.input_names) - set(bound)
        if missing:
            raise ProgramError(f"unbound dataflow inputs: {sorted(missing)}")

        cross_latency = self.subtype.cross_partition_latency or 0
        # value availability per consumer side: (node, consumer) -> ready_at
        produced: dict[str, _PendingValue] = {}
        for name in graph.input_names:
            produced[name] = _PendingValue(bound[name], ready_at=0)
        fired: set[str] = set(graph.input_names)
        pending = [
            node_id
            for node_id in graph.topological_order()
            if node_id not in fired
        ]
        operations = 0
        cycle = 0
        while pending:
            cycle += 1
            if cycle > max_cycles:
                raise ProgramError("dataflow execution exceeded max_cycles")
            busy: set[int] = set()
            fired_now: list[str] = []
            for node_id in pending:
                dp = placement[node_id]
                if dp in busy:
                    continue
                node = graph.node(node_id)
                ready = True
                for upstream in node.inputs:
                    token = produced.get(upstream)
                    if token is None:
                        ready = False
                        break
                    arrival = token.ready_at
                    if placement[upstream] != dp:
                        arrival += cross_latency
                    if arrival > cycle - 1:
                        ready = False
                        break
                if not ready:
                    continue
                busy.add(dp)
                if node.op is DFOp.CONST:
                    assert node.value is not None
                    result = node.value
                elif node.op is DFOp.OUTPUT:
                    result = produced[node.inputs[0]].value
                else:
                    result = _apply(
                        node.op, [produced[u].value for u in node.inputs]
                    )
                produced[node_id] = _PendingValue(result, ready_at=cycle)
                fired_now.append(node_id)
                operations += 1
            if not fired_now and pending:
                # No DP could fire: every remaining node waits on in-flight
                # tokens; advance time (idle cycle).
                earliest = None
                for node_id in pending:
                    node = graph.node(node_id)
                    arrivals = []
                    ok = True
                    for upstream in node.inputs:
                        token = produced.get(upstream)
                        if token is None:
                            ok = False
                            break
                        arrival = token.ready_at
                        if placement[upstream] != placement[node_id]:
                            arrival += cross_latency
                        arrivals.append(arrival)
                    if ok:
                        worst = max(arrivals, default=0)
                        earliest = worst if earliest is None else min(earliest, worst)
                if earliest is None:
                    raise ProgramError(
                        "dataflow deadlock: remaining nodes depend on "
                        "never-produced values"
                    )
                cycle = max(cycle, earliest)
            for node_id in fired_now:
                pending.remove(node_id)
                fired.add(node_id)

        outputs = {name: produced[name].value for name in graph.output_names}
        return ExecutionResult(
            cycles=cycle,
            operations=operations,
            outputs=outputs,
            stats={
                "machine": self.subtype.label,
                "n_dps": self.n_dps,
                "graph": graph.name,
                "nodes": len(graph),
            },
        )

    # -- streaming ------------------------------------------------------------

    @traced_run("machine.run_stream")
    def run_stream(
        self,
        graph: DataflowGraph,
        waves: "list[dict[str, int]]",
        *,
        max_cycles: int = 1_000_000,
    ) -> ExecutionResult:
        """Pipelined execution of successive input waves.

        Streaming is the natural operating mode of the surveyed data-flow
        fabrics (Colt's wormhole streams, PipeRench's virtualised
        pipeline): while one wave's late operators fire, the next wave's
        early operators already occupy idle DPs. The model replicates
        the graph per wave (tags tokens by wave) and lets the ordinary
        firing rule overlap them — pipelining *emerges* from dataflow
        scheduling rather than being bolted on.

        Returns per-wave outputs in ``outputs["waves"]`` and the
        steady-state throughput (waves per cycle) in the stats.
        """
        if not waves:
            raise ProgramError("a stream needs at least one input wave")
        graph.validate()
        combined = DataflowGraph(name=f"{graph.name}@x{len(waves)}")
        combined_inputs: dict[str, int] = {}
        for wave_index, wave in enumerate(waves):
            missing = set(graph.input_names) - set(wave)
            if missing:
                raise ProgramError(
                    f"wave {wave_index} misses inputs: {sorted(missing)}"
                )
            rename = {
                node_id: f"w{wave_index}__{node_id}"
                for node_id in graph.nodes
            }
            for node_id in graph.topological_order():
                node = graph.node(node_id)
                if node.op is DFOp.INPUT:
                    combined.input(rename[node_id])
                    combined_inputs[rename[node_id]] = wave[node_id]
                elif node.op is DFOp.CONST:
                    assert node.value is not None
                    combined.const(rename[node_id], node.value)
                elif node.op is DFOp.OUTPUT:
                    combined.output(rename[node_id], rename[node.inputs[0]])
                else:
                    combined.add(
                        rename[node_id],
                        node.op,
                        *[rename[upstream] for upstream in node.inputs],
                    )
        result = self.run(combined, combined_inputs, max_cycles=max_cycles)
        per_wave = [
            {
                name: result.outputs[f"w{wave_index}__{name}"]
                for name in graph.output_names
            }
            for wave_index in range(len(waves))
        ]
        result.outputs = {"waves": per_wave}
        result.stats["waves"] = len(waves)
        result.stats["throughput_waves_per_cycle"] = (
            len(waves) / result.cycles if result.cycles else 0.0
        )
        return result
