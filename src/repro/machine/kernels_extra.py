"""Extended kernel library: matrix multiply, prefix scan and stencils.

Same contract as :mod:`repro.machine.kernels` — every kernel has a pure
Python reference plus per-paradigm builders — covering the denser
workloads the surveyed architectures were actually built for (DSP
filter banks, linear algebra, scan-based primitives).

Data layouts: matrices are flat row-major; SIMD kernels use one lane
per row/element with lane-local banks.
"""

from __future__ import annotations

from repro.core.errors import ProgramError
from repro.machine.dataflow import DataflowGraph
from repro.machine.program import Program, assemble

__all__ = [
    "matmul_reference",
    "prefix_sum_reference",
    "stencil3_reference",
    "scalar_matmul",
    "scalar_prefix_sum",
    "scalar_stencil3",
    "simd_matmul_rowwise",
    "simd_prefix_scan",
    "dataflow_matmul",
    "dataflow_stencil3",
    "dataflow_prefix_sum",
]


# ---------------------------------------------------------------------------
# References
# ---------------------------------------------------------------------------


def matmul_reference(a: "list[int]", b: "list[int]", n: int) -> list[int]:
    """Row-major n x n product."""
    if len(a) != n * n or len(b) != n * n:
        raise ProgramError("matrices must be flat row-major n*n")
    out = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i * n + k] * b[k * n + j]
            out[i * n + j] = acc
    return out


def prefix_sum_reference(values: "list[int]") -> list[int]:
    """Inclusive prefix sum."""
    out = []
    acc = 0
    for value in values:
        acc += value
        out.append(acc)
    return out


def stencil3_reference(values: "list[int]", weights: "tuple[int, int, int]") -> list[int]:
    """1-D 3-point stencil with zero boundary: y[i] = w0*x[i-1]+w1*x[i]+w2*x[i+1]."""
    n = len(values)
    out = []
    for i in range(n):
        left = values[i - 1] if i - 1 >= 0 else 0
        right = values[i + 1] if i + 1 < n else 0
        out.append(weights[0] * left + weights[1] * values[i] + weights[2] * right)
    return out


# ---------------------------------------------------------------------------
# Scalar (IUP) kernels
# ---------------------------------------------------------------------------


def scalar_matmul(n: int, *, a_base: int = 0, b_base: int = 256, out_base: int = 512) -> Program:
    """Triple-loop n x n matmul over a flat bank."""
    if n <= 0:
        raise ProgramError("n must be positive")
    return assemble(
        f"""
        ; r1=i, r2=j, r3=k, r4=n, r5..r9 scratch, r10=acc
            ldi r4, {n}
            ldi r1, 0
        i_loop:
            ldi r2, 0
        j_loop:
            ldi r10, 0
            ldi r3, 0
        k_loop:
            mul r5, r1, r4      ; i*n
            add r5, r5, r3      ; i*n + k
            ld  r6, r5, {a_base}
            mul r7, r3, r4      ; k*n
            add r7, r7, r2      ; k*n + j
            ld  r8, r7, {b_base}
            mul r9, r6, r8
            add r10, r10, r9
            addi r3, r3, 1
            bne r3, r4, k_loop
            mul r5, r1, r4
            add r5, r5, r2
            st  r5, r10, {out_base}
            addi r2, r2, 1
            bne r2, r4, j_loop
            addi r1, r1, 1
            bne r1, r4, i_loop
            halt
        """,
        name=f"scalar-matmul-{n}",
    )


def scalar_prefix_sum(length: int, *, in_base: int = 0, out_base: int = 256) -> Program:
    """Assemble a scalar prefix-sum program over ``length`` input words."""
    if length <= 0:
        raise ProgramError("length must be positive")
    return assemble(
        f"""
            ldi r1, 0
            ldi r2, {length}
            ldi r6, 0          ; running sum
        loop:
            ld  r3, r1, {in_base}
            add r6, r6, r3
            st  r1, r6, {out_base}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """,
        name=f"scalar-prefix-{length}",
    )


def scalar_stencil3(length: int, weights: "tuple[int, int, int]", *, in_base: int = 0, out_base: int = 256) -> Program:
    """3-point stencil with explicit zero-boundary guards."""
    if length <= 0:
        raise ProgramError("length must be positive")
    w0, w1, w2 = weights
    return assemble(
        f"""
        ; r1=i, r2=length, r6=acc, r7=idx, r8=limit-check scratch
            ldi r1, 0
            ldi r2, {length}
        loop:
            ld  r3, r1, {in_base}
            ldi r4, {w1}
            mul r6, r3, r4       ; acc = w1 * x[i]
            ; left neighbour (skip when i == 0)
            beq r1, r0, no_left
            addi r7, r1, -1
            ld  r3, r7, {in_base}
            ldi r4, {w0}
            mul r5, r3, r4
            add r6, r6, r5
        no_left:
            ; right neighbour (skip when i == length-1)
            addi r7, r1, 1
            beq r7, r2, no_right
            ld  r3, r7, {in_base}
            ldi r4, {w2}
            mul r5, r3, r4
            add r6, r6, r5
        no_right:
            st  r1, r6, {out_base}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """,
        name=f"scalar-stencil3-{length}",
    )


# ---------------------------------------------------------------------------
# SIMD (IAP) kernels
# ---------------------------------------------------------------------------


def simd_matmul_rowwise(n: int, *, a_row_base: int = 0, b_base: int = 64, out_base: int = 640) -> Program:
    """Lane ``i`` computes row ``i`` of the product.

    Layout: each lane's bank holds its own row of A at ``a_row_base``
    and a *full copy* of B (row-major) at ``b_base`` — all accesses are
    lane-local, so this runs on IAP-I. The result row lands at
    ``out_base``.
    """
    if n <= 0:
        raise ProgramError("n must be positive")
    return assemble(
        f"""
        ; r2=j, r3=k, r4=n, r5..r9 scratch, r10=acc
            ldi r4, {n}
            ldi r2, 0
        j_loop:
            ldi r10, 0
            ldi r3, 0
        k_loop:
            ld  r6, r3, {a_row_base}   ; a[lane][k]
            mul r7, r3, r4
            add r7, r7, r2
            ld  r8, r7, {b_base}       ; b[k][j]
            mul r9, r6, r8
            add r10, r10, r9
            addi r3, r3, 1
            bne r3, r4, k_loop
            st  r2, r10, {out_base}
            addi r2, r2, 1
            bne r2, r4, j_loop
            halt
        """,
        name=f"simd-matmul-{n}",
    )


def simd_prefix_scan(n_lanes: int, *, value_addr: int = 0, out_addr: int = 1) -> Program:
    """Hillis-Steele inclusive scan across lanes via SHUF (IAP-II/IV).

    Each lane starts with dm[value_addr]; afterwards dm[out_addr] holds
    the inclusive prefix sum up to that lane. Branch-free: contributions
    from out-of-range partners are masked with SLT/MUL arithmetic so the
    single SIMD program counter never diverges.
    """
    if n_lanes < 2:
        raise ProgramError("scan needs at least two lanes")
    lines = [
        "    laneid r1",
        f"    ld  r3, r0, {value_addr}",
    ]
    stride = 1
    while stride < n_lanes:
        lines += [
            f"    ldi r4, {stride}",
            "    sub r5, r1, r4",      # partner = laneid - stride
            "    shuf r6, r3, r5",     # partner's value (wraps; masked below)
            "    slt r7, r1, r4",      # 1 when laneid < stride (no partner)
            "    ldi r8, 1",
            "    sub r8, r8, r7",      # mask = 1 - (laneid < stride)
            "    mul r6, r6, r8",      # zero the wrapped contribution
            "    add r3, r3, r6",
        ]
        stride *= 2
    lines += [f"    st r0, r3, {out_addr}", "    halt"]
    return Program(
        assemble("\n".join(lines)).instructions,
        name=f"simd-scan-{n_lanes}",
    )


# ---------------------------------------------------------------------------
# Dataflow kernels
# ---------------------------------------------------------------------------


def dataflow_matmul(n: int) -> DataflowGraph:
    """Fully unrolled n x n matmul graph (inputs aij, bij; outputs cij)."""
    if n <= 0:
        raise ProgramError("n must be positive")
    graph = DataflowGraph(name=f"df-matmul-{n}")
    for i in range(n):
        for j in range(n):
            graph.input(f"a{i}_{j}")
            graph.input(f"b{i}_{j}")
    for i in range(n):
        for j in range(n):
            terms = []
            for k in range(n):
                node = f"m{i}_{j}_{k}"
                graph.add(node, "mul", f"a{i}_{k}", f"b{k}_{j}")
                terms.append(node)
            acc = terms[0]
            for idx, term in enumerate(terms[1:], start=1):
                node = f"s{i}_{j}_{idx}"
                graph.add(node, "add", acc, term)
                acc = node
            graph.output(f"c{i}_{j}", acc)
    return graph


def dataflow_stencil3(length: int, weights: "tuple[int, int, int]") -> DataflowGraph:
    """Unrolled 3-point stencil with zero boundaries."""
    if length <= 0:
        raise ProgramError("length must be positive")
    graph = DataflowGraph(name=f"df-stencil3-{length}")
    for i in range(length):
        graph.input(f"x{i}")
    for position, weight in enumerate(weights):
        graph.const(f"w{position}", weight)
    for i in range(length):
        centre = f"c{i}"
        graph.add(centre, "mul", "w1", f"x{i}")
        acc = centre
        if i - 1 >= 0:
            left = f"l{i}"
            graph.add(left, "mul", "w0", f"x{i - 1}")
            node = f"al{i}"
            graph.add(node, "add", acc, left)
            acc = node
        if i + 1 < length:
            right = f"r{i}"
            graph.add(right, "mul", "w2", f"x{i + 1}")
            node = f"ar{i}"
            graph.add(node, "add", acc, right)
            acc = node
        graph.output(f"y{i}", acc)
    return graph


def dataflow_prefix_sum(length: int) -> DataflowGraph:
    """Serial-dependency inclusive scan (the scan's critical path)."""
    if length <= 0:
        raise ProgramError("length must be positive")
    graph = DataflowGraph(name=f"df-prefix-{length}")
    graph.input("x0")
    graph.output("y0", "x0")
    previous = "x0"
    for i in range(1, length):
        graph.input(f"x{i}")
        node = f"p{i}"
        graph.add(node, "add", previous, f"x{i}")
        graph.output(f"y{i}", node)
        previous = node
    return graph
