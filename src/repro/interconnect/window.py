"""Sliding-window connectivity — DRRA's 3-hop neighbourhood.

A linear array where every node reaches peers within ``hops`` columns on
either side in a single cycle; farther destinations relay through
intermediate nodes, each relay costing one hop/cycle. Single-cycle
reachability is window-limited (the taxonomy still marks it ``'x'``
because the association is programmable), while multi-hop relaying makes
the fabric globally connected — exactly the DRRA trade: near-crossbar
flexibility at limited-crossbar cost.
"""

from __future__ import annotations

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import LimitedCrossbarModel

__all__ = ["SlidingWindow"]


class SlidingWindow(Interconnect):
    """1-D array with ±``hops`` single-cycle reach and multi-hop relay."""

    def __init__(self, n_ports: int, *, hops: int = 3, width_bits: int = 32):
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        if hops <= 0:
            raise ValueError("hops must be positive")
        self.hops = hops
        # Each node's input mux sees itself plus `hops` on each side.
        self._model = LimitedCrossbarModel(
            window=min(2 * hops + 1, n_ports), width_bits=width_bits
        )

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    def window_of(self, node: int) -> range:
        """Single-cycle reachable peer indices of ``node``."""
        if not 0 <= node < self.n_inputs:
            raise RoutingError(f"node {node} out of range")
        lo = max(0, node - self.hops)
        hi = min(self.n_inputs - 1, node + self.hops)
        return range(lo, hi + 1)

    def in_window(self, source: int, destination: int) -> bool:
        """True when the pair communicates in a single cycle."""
        self._check_ports(source, destination)
        return abs(source - destination) <= self.hops

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return True  # always reachable via relays

    def relay_nodes(self, source: int, destination: int) -> list[int]:
        """The node sequence of the multi-hop route, endpoints included."""
        self._check_ports(source, destination)
        path = [source]
        here = source
        step = self.hops if destination > source else -self.hops
        while abs(destination - here) > self.hops:
            here += step
            path.append(here)
        if here != destination:
            path.append(destination)
        return path

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        nodes = self.relay_nodes(source, destination)
        labels = tuple(f"w{n}" for n in nodes)
        return Route(
            source=labels[0],
            destination=labels[-1],
            path=labels,
            cycles=max(len(labels) - 1, 1),
        )

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        graph.add_nodes_from(f"w{n}" for n in range(self.n_inputs))
        for node in range(self.n_inputs):
            for peer in self.window_of(node):
                if peer != node:
                    graph.add_edge(f"w{node}", f"w{peer}")
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return self._model.config_bits(self.n_inputs, self.n_outputs)
