"""Direct (fixed-wiring) connectivity structures — the ``'-'`` cells.

Two shapes occur in the taxonomy:

* :class:`PointToPoint` — the ``1-1`` / ``n-n`` pattern: port ``k`` is
  hard-wired to port ``k`` (each DP to its own DM, each IP to its own
  DP). Zero configuration, linear area, but only the identity pairing is
  reachable.
* :class:`Broadcast` — the ``1-n`` pattern of array processors: one
  source fans out to every destination (the IP broadcasting instructions
  to all DPs).
"""

from __future__ import annotations

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import DirectLinkModel

__all__ = ["PointToPoint", "Broadcast"]


class PointToPoint(Interconnect):
    """Identity wiring: input ``k`` connects to output ``k`` only."""

    def __init__(self, n_ports: int, *, width_bits: int = 32):
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        self._model = DirectLinkModel(width_bits=width_bits)

    @property
    def link_kind(self) -> LinkKind:
        return LinkKind.DIRECT

    def can_route(self, source: int, destination: int) -> bool:
        self._check_ports(source, destination)
        return source == destination

    def route(self, source: int, destination: int) -> Route:
        if not self.can_route(source, destination):
            raise RoutingError(
                f"point-to-point wiring connects port {source} only to "
                f"port {source}, not {destination}"
            )
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), self.output_label(destination)),
            cycles=1,
        )

    def as_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for k in range(self.n_inputs):
            graph.add_edge(self.input_label(k), self.output_label(k))
        return graph

    def area_ge(self) -> float:
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        return 0


class Broadcast(Interconnect):
    """One source fanned out to every destination (the IP-DP ``1-n`` cell)."""

    def __init__(self, n_destinations: int, *, width_bits: int = 32):
        super().__init__(1, n_destinations, width_bits=width_bits)
        self._model = DirectLinkModel(width_bits=width_bits)

    @property
    def link_kind(self) -> LinkKind:
        return LinkKind.DIRECT

    def can_route(self, source: int, destination: int) -> bool:
        self._check_ports(source, destination)
        return True

    def route(self, source: int, destination: int) -> Route:
        self._check_ports(source, destination)
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), self.output_label(destination)),
            cycles=1,
        )

    def as_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for k in range(self.n_outputs):
            graph.add_edge(self.input_label(0), self.output_label(k))
        return graph

    def area_ge(self) -> float:
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        return 0
