"""Direct (fixed-wiring) connectivity structures — the ``'-'`` cells.

Two shapes occur in the taxonomy:

* :class:`PointToPoint` — the ``1-1`` / ``n-n`` pattern: port ``k`` is
  hard-wired to port ``k`` (each DP to its own DM, each IP to its own
  DP). Zero configuration, linear area, but only the identity pairing is
  reachable.
* :class:`Broadcast` — the ``1-n`` pattern of array processors: one
  source fans out to every destination (the IP broadcasting instructions
  to all DPs).
"""

from __future__ import annotations

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import FaultError, RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import DirectLinkModel

__all__ = ["PointToPoint", "Broadcast"]


class PointToPoint(Interconnect):
    """Identity wiring: input ``k`` connects to output ``k`` only."""

    def __init__(self, n_ports: int, *, width_bits: int = 32):
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        self._model = DirectLinkModel(width_bits=width_bits)

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.DIRECT

    def _wire_dead(self, k: int) -> bool:
        return (
            self.input_failed(k)
            or self.output_failed(k)
            or self.link_failed(self.input_label(k), self.output_label(k))
        )

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return source == destination and not self._wire_dead(source)

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        if source != destination:
            raise RoutingError(
                f"point-to-point wiring connects port {source} only to "
                f"port {source}, not {destination}"
            )
        if self._wire_dead(source):
            # The taxonomy's '-' cell under failure: there is exactly one
            # wire between these endpoints and no switch to pick another.
            raise FaultError(
                f"direct link {source} has failed and a point-to-point "
                "connection cannot route around a dead wire"
            )
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), self.output_label(destination)),
            cycles=1,
        )

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for k in range(self.n_inputs):
            graph.add_edge(self.input_label(k), self.output_label(k))
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return 0


class Broadcast(Interconnect):
    """One source fanned out to every destination (the IP-DP ``1-n`` cell)."""

    def __init__(self, n_destinations: int, *, width_bits: int = 32):
        super().__init__(1, n_destinations, width_bits=width_bits)
        self._model = DirectLinkModel(width_bits=width_bits)

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.DIRECT

    def _branch_dead(self, destination: int) -> bool:
        return (
            self.input_failed(0)
            or self.output_failed(destination)
            or self.link_failed(self.input_label(0), self.output_label(destination))
        )

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return not self._branch_dead(destination)

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        if self._branch_dead(destination):
            raise FaultError(
                f"broadcast branch to output {destination} has failed; a "
                "fixed fan-out tree cannot route around a dead wire"
            )
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), self.output_label(destination)),
            cycles=1,
        )

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for k in range(self.n_outputs):
            graph.add_edge(self.input_label(0), self.output_label(k))
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return 0
