"""Two-level hierarchical interconnect — PADDI-2's network.

Nodes are grouped into clusters; a full crossbar joins nodes within a
cluster, and a second-level crossbar joins the clusters. Intra-cluster
transfers take one cycle, inter-cluster transfers three (egress, level-2,
ingress). Cheaper than a flat crossbar at the same node count, at the
price of extra latency across clusters — a measurable design point
between the ``n-n`` and flat ``nxn`` cells.
"""

from __future__ import annotations

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import FullCrossbarModel

__all__ = ["HierarchicalNetwork"]


class HierarchicalNetwork(Interconnect):
    """Clusters of ``cluster_size`` nodes under a level-2 crossbar."""

    def __init__(self, n_ports: int, *, cluster_size: int = 4, width_bits: int = 32):
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        if cluster_size <= 0:
            raise ValueError("cluster size must be positive")
        if n_ports % cluster_size != 0:
            raise ValueError(
                f"{n_ports} ports do not divide into clusters of {cluster_size}"
            )
        self.cluster_size = cluster_size
        self.n_clusters = n_ports // cluster_size
        self._model = FullCrossbarModel(width_bits=width_bits)

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    def cluster_of(self, node: int) -> int:
        """The index of the cluster that owns port ``node``."""
        if not 0 <= node < self.n_inputs:
            raise RoutingError(f"node {node} out of range")
        return node // self.cluster_size

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return True

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        src_cluster = self.cluster_of(source)
        dst_cluster = self.cluster_of(destination)
        src_label = f"p{source}"
        dst_label = f"p{destination}"
        if src_cluster == dst_cluster:
            path = (src_label, f"xc{src_cluster}", dst_label)
            cycles = 1
        else:
            path = (
                src_label,
                f"xc{src_cluster}",
                "x2",
                f"xc{dst_cluster}",
                dst_label,
            )
            cycles = 3
        return Route(source=src_label, destination=dst_label, path=path, cycles=cycles)

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for node in range(self.n_inputs):
            graph.add_edge(f"p{node}", f"xc{self.cluster_of(node)}")
        for cluster in range(self.n_clusters):
            graph.add_edge(f"xc{cluster}", "x2")
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        # Intra-cluster crossbars see cluster_size + 1 ports (the extra
        # one is the uplink); the level-2 crossbar joins the clusters.
        ports = self.cluster_size + 1
        intra = self.n_clusters * self._model.area_ge(ports, ports)
        inter = self._model.area_ge(self.n_clusters, self.n_clusters)
        return intra + inter

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        ports = self.cluster_size + 1
        intra = self.n_clusters * self._model.config_bits(ports, ports)
        inter = self._model.config_bits(self.n_clusters, self.n_clusters)
        return intra + inter
