"""Graph-level metrics for interconnect comparison.

Computes the standard network figures of merit — diameter, mean
distance, degree, bisection width — on a topology's
:meth:`~repro.interconnect.topology.Interconnect.as_graph` view, plus a
combined :class:`InterconnectProfile` used by the ablation benchmarks to
put the taxonomy's switch choices side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.interconnect.topology import Interconnect

__all__ = ["InterconnectProfile", "profile", "diameter", "mean_distance", "bisection_width"]


def diameter(graph: nx.Graph) -> int:
    """Longest shortest path; 0 for single nodes, per-component max if disconnected."""
    if graph.number_of_nodes() <= 1:
        return 0
    best = 0
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        if sub.number_of_nodes() > 1:
            best = max(best, nx.diameter(sub))
    return best


def mean_distance(graph: nx.Graph) -> float:
    """Average shortest-path length within components (0 for singletons)."""
    total = 0.0
    pairs = 0
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        n = sub.number_of_nodes()
        if n <= 1:
            continue
        total += nx.average_shortest_path_length(sub) * (n * (n - 1) / 2)
        pairs += n * (n - 1) // 2
    return total / pairs if pairs else 0.0


def _cut_size(graph: nx.Graph, order: "list[str]") -> int:
    left = set(order[: len(order) // 2])
    return sum(1 for a, b in graph.edges() if (a in left) != (b in left))


def bisection_width(graph: nx.Graph) -> int:
    """Edges cut when splitting the node set in half (heuristic).

    Exact minimum bisection is NP-hard; we take the best of three
    standard orderings — the Fiedler-vector split, label order and a BFS
    layering — which is exact on the regular structures used here
    (meshes, stars, chains). Graphs with symmetric spectra (a square
    mesh) defeat the spectral split alone, hence the ensemble.
    """
    n = graph.number_of_nodes()
    if n <= 1 or graph.number_of_edges() == 0:
        return 0
    if not nx.is_connected(graph):
        return 0
    ordering = sorted(graph.nodes())
    candidates = [ordering]
    try:
        # Seeded: the tracemin iteration starts from a random vector.
        fiedler = nx.fiedler_vector(graph, method="tracemin_lu", seed=0)
        candidates.append([node for _, node in sorted(zip(fiedler, ordering))])
    except (nx.NetworkXError, ValueError, ImportError):
        # tiny/degenerate graphs, or scipy unavailable — the remaining
        # orderings still give a (coarser) upper bound
        pass
    candidates.append(list(nx.bfs_tree(graph, ordering[0])))
    return min(_cut_size(graph, order) for order in candidates)


@dataclass(frozen=True, slots=True)
class InterconnectProfile:
    """Side-by-side comparison record for one topology instance."""

    name: str
    n_ports: int
    area_ge: float
    config_bits: int
    diameter: int
    mean_distance: float
    bisection_width: int
    reachability: float

    def row(self) -> tuple[str, ...]:
        """The record as a tuple of formatted table cells."""
        return (
            self.name,
            str(self.n_ports),
            f"{self.area_ge:,.0f}",
            str(self.config_bits),
            str(self.diameter),
            f"{self.mean_distance:.2f}",
            str(self.bisection_width),
            f"{self.reachability:.0%}",
        )


def profile(name: str, topology: Interconnect) -> InterconnectProfile:
    """Measure one topology into a comparison record."""
    graph = topology.as_graph()
    return InterconnectProfile(
        name=name,
        n_ports=topology.n_inputs,
        area_ge=topology.area_ge(),
        config_bits=topology.config_bits(),
        diameter=diameter(graph),
        mean_distance=mean_distance(graph),
        bisection_width=bisection_width(graph),
        reachability=topology.reachability_fraction(),
    )
